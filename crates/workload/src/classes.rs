//! Multi-class workloads (extension).
//!
//! The paper's workload is a single transaction class; its successors (and
//! the studies it reconciles) repeatedly found that *transaction-size
//! variance* matters enormously — large transactions starve under
//! restart-oriented concurrency control because their long lifetimes make
//! them perpetual validation/conflict victims. A [`TxnClass`] describes one
//! population of transactions; [`Params::extra_classes`] adds classes
//! beyond the Table-1 primary one, each drawn with probability
//! proportional to its weight.

use crate::params::{ParamError, Params};

/// One transaction class: a relative frequency plus its own size range and
/// write probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnClass {
    /// Relative frequency weight (> 0; normalized across all classes).
    pub weight: f64,
    /// Smallest readset size of this class.
    pub min_size: u64,
    /// Largest readset size of this class.
    pub max_size: u64,
    /// Probability a read is also written, for this class.
    pub write_prob: f64,
}

impl TxnClass {
    /// Validate the class against the database size.
    ///
    /// # Errors
    /// Returns [`ParamError`] on out-of-domain fields.
    pub fn validate(&self, db_size: u64) -> Result<(), ParamError> {
        if !(self.weight > 0.0 && self.weight.is_finite()) {
            return Err(ParamError(format!(
                "class weight ({}) must be positive and finite",
                self.weight
            )));
        }
        if self.min_size == 0 {
            return Err(ParamError("class min_size must be positive".into()));
        }
        if self.min_size > self.max_size {
            return Err(ParamError(format!(
                "class min_size ({}) exceeds max_size ({})",
                self.min_size, self.max_size
            )));
        }
        if self.max_size > db_size {
            return Err(ParamError(format!(
                "class max_size ({}) exceeds db_size ({db_size})",
                self.max_size
            )));
        }
        if !(0.0..=1.0).contains(&self.write_prob) {
            return Err(ParamError(format!(
                "class write_prob ({}) must lie in [0, 1]",
                self.write_prob
            )));
        }
        Ok(())
    }

    /// Mean readset size of the class.
    #[must_use]
    pub fn mean_size(&self) -> f64 {
        (self.min_size + self.max_size) as f64 / 2.0
    }
}

/// The class table of a parameter set: class 0 is the primary (Table 1)
/// class, followed by `extra_classes` in order.
#[must_use]
pub fn class_table(params: &Params) -> Vec<TxnClass> {
    let mut classes = vec![TxnClass {
        weight: params.primary_weight,
        min_size: params.min_size,
        max_size: params.max_size,
        write_prob: params.write_prob,
    }];
    classes.extend(params.extra_classes.iter().copied());
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_fields() {
        let ok = TxnClass {
            weight: 1.0,
            min_size: 2,
            max_size: 5,
            write_prob: 0.5,
        };
        assert!(ok.validate(100).is_ok());
        assert!(TxnClass { weight: 0.0, ..ok }.validate(100).is_err());
        assert!(TxnClass {
            weight: f64::NAN,
            ..ok
        }
        .validate(100)
        .is_err());
        assert!(TxnClass { min_size: 0, ..ok }.validate(100).is_err());
        assert!(TxnClass {
            min_size: 9,
            max_size: 5,
            ..ok
        }
        .validate(100)
        .is_err());
        assert!(TxnClass {
            max_size: 200,
            ..ok
        }
        .validate(100)
        .is_err());
        assert!(TxnClass {
            write_prob: 1.5,
            ..ok
        }
        .validate(100)
        .is_err());
    }

    #[test]
    fn class_table_starts_with_primary() {
        let mut p = Params::paper_baseline();
        p.extra_classes.push(TxnClass {
            weight: 0.1,
            min_size: 40,
            max_size: 60,
            write_prob: 0.25,
        });
        let table = class_table(&p);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].min_size, 4);
        assert_eq!(table[0].max_size, 12);
        assert_eq!(table[1].min_size, 40);
        assert!((table[1].mean_size() - 50.0).abs() < 1e-12);
    }
}
