//! Identifier types shared across the model.

use std::fmt;

/// A database object (the paper equates objects with pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u64);

/// A transaction. Identifiers are unique across the whole run (a restarted
/// transaction keeps its id; a *new* transaction from the same terminal gets
/// a fresh one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// A terminal (the source of transactions; `num_terms` of them exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "term{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ObjId(3).to_string(), "obj3");
        assert_eq!(TxnId(9).to_string(), "txn9");
        assert_eq!(TermId(1).to_string(), "term1");
    }

    #[test]
    fn ordering_and_hashing_work() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ObjId(1));
        s.insert(ObjId(1));
        assert_eq!(s.len(), 1);
        assert!(TxnId(1) < TxnId(2));
    }
}
