//! Simulation parameters (the paper's Table 1) and the baseline settings
//! used in its experiments (Table 2).

use ccsim_des::SimDuration;

/// Physical resource configuration (paper §3, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceSpec {
    /// The "infinite resources" assumption: transactions never queue for CPU
    /// or I/O; every service takes exactly its nominal time.
    Infinite,
    /// A finite machine: a pool of identical CPU servers with one global
    /// queue, and a partitioned database spread across `num_disks` disks,
    /// each with its own FCFS queue.
    Physical {
        /// Number of CPU servers.
        num_cpus: u32,
        /// Number of disks.
        num_disks: u32,
    },
}

impl ResourceSpec {
    /// The paper's base finite configuration (Experiments 1 and 3): 1 CPU
    /// and 2 disks.
    pub const ONE_CPU_TWO_DISKS: ResourceSpec = ResourceSpec::Physical {
        num_cpus: 1,
        num_disks: 2,
    };

    /// Experiment 4's small multiprocessor: 5 CPUs, 10 disks.
    pub const FIVE_CPUS_TEN_DISKS: ResourceSpec = ResourceSpec::Physical {
        num_cpus: 5,
        num_disks: 10,
    };

    /// Experiment 4's large multiprocessor: 25 CPUs, 50 disks.
    pub const TWENTY_FIVE_CPUS_FIFTY_DISKS: ResourceSpec = ResourceSpec::Physical {
        num_cpus: 25,
        num_disks: 50,
    };

    /// True for [`ResourceSpec::Infinite`].
    #[must_use]
    pub fn is_infinite(&self) -> bool {
        matches!(self, ResourceSpec::Infinite)
    }
}

/// How aborted transactions are delayed before re-entering the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartDelayPolicy {
    /// No delay: the transaction goes straight to the back of the ready
    /// queue (the paper's blocking and optimistic algorithms).
    #[default]
    None,
    /// Exponential delay with mean equal to the running average transaction
    /// response time (the paper's immediate-restart algorithm, §4.2).
    Adaptive,
    /// Exponential delay with a fixed mean (used in the paper's sensitivity
    /// analysis of the restart delay).
    Fixed(SimDuration),
}

/// Object access pattern. The paper samples uniformly without replacement;
/// the hotspot variant is an extension for skew studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniform without replacement over the whole database (the paper).
    Uniform,
    /// The classic "x% of accesses go to y% of the data" hotspot model.
    /// Each access independently targets the hot region with probability
    /// `access_frac`; objects are then drawn uniformly (without replacement
    /// per region) from that region.
    Hotspot {
        /// Fraction of the database that is hot, in `(0, 1)`.
        data_frac: f64,
        /// Fraction of accesses that hit the hot region, in `(0, 1)`.
        access_frac: f64,
    },
}

/// The full parameter set of the simulation model (paper Table 1, plus the
/// knobs the paper varies per experiment and two documented extensions).
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of objects (pages) in the database.
    pub db_size: u64,
    /// Smallest transaction readset size.
    pub min_size: u64,
    /// Largest transaction readset size.
    pub max_size: u64,
    /// Probability that an object read is also written.
    pub write_prob: f64,
    /// Number of terminals (users).
    pub num_terms: u32,
    /// Multiprogramming level: maximum concurrently *active* transactions.
    pub mpl: u32,
    /// Mean time between a transaction's completion and its terminal
    /// submitting the next one (exponential).
    pub ext_think_time: SimDuration,
    /// Mean intra-transaction think time between the read phase and the
    /// write phase (exponential); zero disables the think path.
    pub int_think_time: SimDuration,
    /// I/O time to access one object.
    pub obj_io: SimDuration,
    /// CPU time to access one object.
    pub obj_cpu: SimDuration,
    /// Physical resource configuration.
    pub resources: ResourceSpec,
    /// Restart delay policy for aborted transactions.
    pub restart_delay: RestartDelayPolicy,
    /// CPU cost of one concurrency-control request (extension; the paper's
    /// Table 2 implies zero — see DESIGN.md).
    pub cc_cpu: SimDuration,
    /// Object access pattern (extension; the paper is uniform).
    pub access: AccessPattern,
    /// Relative frequency weight of the primary (Table 1) transaction
    /// class when `extra_classes` is non-empty (extension).
    pub primary_weight: f64,
    /// Additional transaction classes (extension; empty = the paper's
    /// single-class workload).
    pub extra_classes: Vec<crate::classes::TxnClass>,
}

/// A parameter-validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub String);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid parameters: {}", self.0)
    }
}
impl std::error::Error for ParamError {}

impl Params {
    /// The paper's Table 2 baseline: `db_size=1000`, readset uniform on
    /// `[4, 12]` (mean 8), `write_prob=0.25`, 200 terminals, 1 s external
    /// think time, `obj_io=35 ms`, `obj_cpu=15 ms`, 1 CPU and 2 disks,
    /// `mpl=25`.
    #[must_use]
    pub fn paper_baseline() -> Params {
        Params {
            db_size: 1000,
            min_size: 4,
            max_size: 12,
            write_prob: 0.25,
            num_terms: 200,
            mpl: 25,
            ext_think_time: SimDuration::from_secs(1),
            int_think_time: SimDuration::ZERO,
            obj_io: SimDuration::from_millis(35),
            obj_cpu: SimDuration::from_millis(15),
            resources: ResourceSpec::ONE_CPU_TWO_DISKS,
            // The paper's immediate-restart algorithm always delays restarts
            // adaptively (§4.2); blocking and optimistic ignore this policy
            // unless the Figure 11 `restart_delay_for_all` flag is set.
            restart_delay: RestartDelayPolicy::Adaptive,
            cc_cpu: SimDuration::ZERO,
            access: AccessPattern::Uniform,
            primary_weight: 1.0,
            extra_classes: Vec::new(),
        }
    }

    /// Experiment 1's low-conflict setting: the baseline with a 10x larger
    /// database (10 000 objects).
    #[must_use]
    pub fn low_conflict() -> Params {
        Params {
            db_size: 10_000,
            ..Params::paper_baseline()
        }
    }

    /// The million-scale closed network: a 10^8-object database and 10^6
    /// terminals under infinite resources. The paper's per-object costs and
    /// think times are kept, so per-transaction behaviour matches the
    /// baseline; only the population and database are six/five orders of
    /// magnitude larger. Conflict is negligible at this density — the
    /// regime exists to exercise the engine's sparse lock table, arena
    /// transaction state, and streaming statistics at full scale, with
    /// `mpl` (typically 10^5–10^6) swept by the `exp-scale` experiment.
    #[must_use]
    pub fn exp_scale() -> Params {
        Params {
            db_size: 100_000_000,
            num_terms: 1_000_000,
            mpl: 100_000,
            resources: ResourceSpec::Infinite,
            ..Params::paper_baseline()
        }
    }

    /// The multiprogramming levels swept in every experiment.
    pub const PAPER_MPLS: [u32; 7] = [5, 10, 25, 50, 75, 100, 200];

    /// Mean readset size (`tran_size` in Table 1): midpoint of the uniform
    /// size distribution.
    #[must_use]
    pub fn tran_size(&self) -> f64 {
        (self.min_size + self.max_size) as f64 / 2.0
    }

    /// Expected total CPU demand of one transaction attempt (reads + write
    /// requests), excluding concurrency-control cost. For the baseline this
    /// is the paper's "150 milliseconds of CPU time".
    #[must_use]
    pub fn expected_cpu_demand(&self) -> SimDuration {
        let reads = self.tran_size();
        let writes = reads * self.write_prob;
        SimDuration::from_secs_f64((reads + writes) * self.obj_cpu.as_secs_f64())
    }

    /// Expected total disk demand of one transaction attempt (read I/O plus
    /// deferred-update I/O). For the baseline this is the paper's "350
    /// milliseconds of disk time".
    #[must_use]
    pub fn expected_io_demand(&self) -> SimDuration {
        let reads = self.tran_size();
        let writes = reads * self.write_prob;
        SimDuration::from_secs_f64((reads + writes) * self.obj_io.as_secs_f64())
    }

    /// A rough a-priori estimate of one transaction's no-contention service
    /// time, used to seed the adaptive restart delay before the first commit.
    #[must_use]
    pub fn expected_service_time(&self) -> SimDuration {
        self.expected_cpu_demand()
            .saturating_add(self.expected_io_demand())
            .saturating_add(self.int_think_time)
    }

    /// Validate the parameter set, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    /// Returns [`ParamError`] when any field is out of its legal domain or
    /// fields are mutually inconsistent (e.g. `max_size > db_size`).
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.db_size == 0 {
            return Err(ParamError("db_size must be positive".into()));
        }
        if self.min_size == 0 {
            return Err(ParamError("min_size must be positive".into()));
        }
        if self.min_size > self.max_size {
            return Err(ParamError(format!(
                "min_size ({}) exceeds max_size ({})",
                self.min_size, self.max_size
            )));
        }
        if self.max_size > self.db_size {
            return Err(ParamError(format!(
                "max_size ({}) exceeds db_size ({})",
                self.max_size, self.db_size
            )));
        }
        if !(0.0..=1.0).contains(&self.write_prob) {
            return Err(ParamError(format!(
                "write_prob ({}) must lie in [0, 1]",
                self.write_prob
            )));
        }
        if self.num_terms == 0 {
            return Err(ParamError("num_terms must be positive".into()));
        }
        if self.mpl == 0 {
            return Err(ParamError("mpl must be positive".into()));
        }
        if let ResourceSpec::Physical {
            num_cpus,
            num_disks,
        } = self.resources
        {
            if num_cpus == 0 {
                return Err(ParamError("num_cpus must be positive".into()));
            }
            if num_disks == 0 {
                return Err(ParamError("num_disks must be positive".into()));
            }
        }
        if !(self.primary_weight > 0.0 && self.primary_weight.is_finite()) {
            return Err(ParamError(format!(
                "primary_weight ({}) must be positive and finite",
                self.primary_weight
            )));
        }
        for class in &self.extra_classes {
            class.validate(self.db_size)?;
            if let AccessPattern::Hotspot { data_frac, .. } = self.access {
                let hot = (self.db_size as f64 * data_frac).floor() as u64;
                if hot < class.max_size || self.db_size - hot < class.max_size {
                    return Err(ParamError(format!(
                        "hotspot regions too small for class max_size {}",
                        class.max_size
                    )));
                }
            }
        }
        if let AccessPattern::Hotspot {
            data_frac,
            access_frac,
        } = self.access
        {
            if !(data_frac > 0.0 && data_frac < 1.0) {
                return Err(ParamError(format!(
                    "hotspot data_frac ({data_frac}) must lie in (0, 1)"
                )));
            }
            if !(access_frac > 0.0 && access_frac < 1.0) {
                return Err(ParamError(format!(
                    "hotspot access_frac ({access_frac}) must lie in (0, 1)"
                )));
            }
            let hot_objects = (self.db_size as f64 * data_frac).floor() as u64;
            if hot_objects < self.max_size {
                return Err(ParamError(format!(
                    "hot region ({hot_objects} objects) smaller than max_size ({})",
                    self.max_size
                )));
            }
            let cold_objects = self.db_size - hot_objects;
            if cold_objects < self.max_size {
                return Err(ParamError(format!(
                    "cold region ({cold_objects} objects) smaller than max_size ({})",
                    self.max_size
                )));
            }
        }
        Ok(())
    }

    /// Builder-style update of the multiprogramming level.
    #[must_use]
    pub fn with_mpl(mut self, mpl: u32) -> Params {
        self.mpl = mpl;
        self
    }

    /// Builder-style update of the resource configuration.
    #[must_use]
    pub fn with_resources(mut self, resources: ResourceSpec) -> Params {
        self.resources = resources;
        self
    }

    /// Builder-style update of the restart-delay policy.
    #[must_use]
    pub fn with_restart_delay(mut self, policy: RestartDelayPolicy) -> Params {
        self.restart_delay = policy;
        self
    }

    /// Builder-style update of the think times. `ext` and `int` are the
    /// external and internal mean think times.
    #[must_use]
    pub fn with_think_times(mut self, ext: SimDuration, int: SimDuration) -> Params {
        self.ext_think_time = ext;
        self.int_think_time = int;
        self
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_2() {
        let p = Params::paper_baseline();
        assert_eq!(p.db_size, 1000);
        assert_eq!((p.min_size, p.max_size), (4, 12));
        assert_eq!(p.tran_size(), 8.0);
        assert_eq!(p.write_prob, 0.25);
        assert_eq!(p.num_terms, 200);
        assert_eq!(p.ext_think_time, SimDuration::from_secs(1));
        assert_eq!(p.obj_io, SimDuration::from_millis(35));
        assert_eq!(p.obj_cpu, SimDuration::from_millis(15));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn paper_demand_arithmetic() {
        // §4.5: "a transaction requires 150 milliseconds of CPU time and
        // 350 milliseconds of disk time" on average.
        let p = Params::paper_baseline();
        assert_eq!(p.expected_cpu_demand(), SimDuration::from_millis(150));
        assert_eq!(p.expected_io_demand(), SimDuration::from_millis(350));
        assert_eq!(p.expected_service_time(), SimDuration::from_millis(500));
    }

    #[test]
    fn low_conflict_uses_larger_db() {
        let p = Params::low_conflict();
        assert_eq!(p.db_size, 10_000);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_sizes() {
        let mut p = Params::paper_baseline();
        p.db_size = 0;
        assert!(p.validate().is_err());

        let mut p = Params::paper_baseline();
        p.min_size = 13;
        assert!(p.validate().is_err());

        let mut p = Params::paper_baseline();
        p.max_size = 2000;
        assert!(p.validate().is_err());

        let mut p = Params::paper_baseline();
        p.min_size = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_probabilities() {
        let mut p = Params::paper_baseline();
        p.write_prob = 1.5;
        assert!(p.validate().is_err());
        p.write_prob = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_population() {
        let mut p = Params::paper_baseline();
        p.num_terms = 0;
        assert!(p.validate().is_err());
        let mut p = Params::paper_baseline();
        p.mpl = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_resources() {
        let mut p = Params::paper_baseline();
        p.resources = ResourceSpec::Physical {
            num_cpus: 0,
            num_disks: 2,
        };
        assert!(p.validate().is_err());
        p.resources = ResourceSpec::Physical {
            num_cpus: 1,
            num_disks: 0,
        };
        assert!(p.validate().is_err());
        p.resources = ResourceSpec::Infinite;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_checks_hotspot() {
        let mut p = Params::paper_baseline();
        p.access = AccessPattern::Hotspot {
            data_frac: 0.2,
            access_frac: 0.8,
        };
        assert!(p.validate().is_ok());
        p.access = AccessPattern::Hotspot {
            data_frac: 0.005, // 5 objects < max_size 12
            access_frac: 0.8,
        };
        assert!(p.validate().is_err());
        p.access = AccessPattern::Hotspot {
            data_frac: 1.2,
            access_frac: 0.8,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn builders_update_fields() {
        let p = Params::paper_baseline()
            .with_mpl(100)
            .with_resources(ResourceSpec::Infinite)
            .with_restart_delay(RestartDelayPolicy::Adaptive)
            .with_think_times(SimDuration::from_secs(3), SimDuration::from_secs(1));
        assert_eq!(p.mpl, 100);
        assert!(p.resources.is_infinite());
        assert_eq!(p.restart_delay, RestartDelayPolicy::Adaptive);
        assert_eq!(p.int_think_time, SimDuration::from_secs(1));
        assert_eq!(p.ext_think_time, SimDuration::from_secs(3));
    }

    #[test]
    fn resource_presets() {
        assert_eq!(
            ResourceSpec::ONE_CPU_TWO_DISKS,
            ResourceSpec::Physical {
                num_cpus: 1,
                num_disks: 2
            }
        );
        assert!(!ResourceSpec::FIVE_CPUS_TEN_DISKS.is_infinite());
        assert!(ResourceSpec::Infinite.is_infinite());
    }

    #[test]
    fn param_error_displays() {
        let e = ParamError("boom".into());
        assert_eq!(e.to_string(), "invalid parameters: boom");
    }
}
