//! A sparse, deterministic hash map keyed by [`ObjId`].
//!
//! The paper's experiments stop at `db_size = 10_000`, where dense
//! per-object vectors are fine. At `db_size = 10^8` a dense table costs
//! gigabytes while a run touches only the objects its transactions
//! actually access, so the lock manager and the optimistic validator key
//! their per-object state off this map instead.
//!
//! Design constraints, in order:
//!
//! * **Determinism.** No random hash state: the hash is a fixed Fibonacci
//!   multiply, so identical call sequences produce identical layouts and
//!   identical iteration order on every run. (Callers still must not let
//!   iteration order influence simulation behaviour; in this workspace it
//!   is only used for order-insensitive consistency checks and pruning.)
//! * **Compactness.** Open addressing with linear probing in two parallel
//!   arrays (keys, values) — no per-entry boxes, no chaining pointers.
//! * **No tombstones.** Removal backward-shifts the following probe
//!   cluster, so long-running simulations that acquire and release locks
//!   millions of times never degrade into tombstone scans.
//! * **Probe cost.** The hash shift is cached in a field (updated only on
//!   grow) rather than recomputed from the capacity on every probe, and
//!   [`ObjMap::prefetch`] lets callers that know the *next* key they will
//!   probe pull its home cache line in ahead of time. Both are invisible to
//!   behaviour: the hash function and probe order are unchanged, so layouts
//!   and iteration order stay byte-identical with or without prefetching.
//!
//! `ObjId(u64::MAX)` is reserved as the empty-slot sentinel; inserting it
//! panics (object ids are database indices, far below the sentinel).

use crate::types::ObjId;

const EMPTY: u64 = u64::MAX;
/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
const MIN_CAP: usize = 8;

/// Open-addressed `ObjId → V` map with backward-shift deletion.
///
/// `V` is constrained to `Copy + Default` so empty slots can hold a real
/// (ignored) value — every payload in this workspace is a small index or
/// timestamp, so the constraint costs nothing and keeps all slot accesses
/// safe code (the only `unsafe` is the effect-free [`Self::prefetch`] hint).
#[derive(Debug, Clone)]
pub struct ObjMap<V> {
    /// Slot keys; `EMPTY` marks a vacant slot. Length is a power of two.
    keys: Vec<u64>,
    /// Slot values, parallel to `keys` (default-filled where vacant).
    vals: Vec<V>,
    /// Number of occupied slots.
    len: usize,
    /// Cached hash shift: `64 - log2(capacity)`. Kept in sync with
    /// `keys.len()` by `with_capacity` and `grow` so `home()` needs no
    /// `trailing_zeros` on the hot probe path.
    shift: u32,
}

impl<V: Copy + Default> Default for ObjMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> ObjMap<V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty map pre-sized to hold `n` entries without rehashing.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let cap = Self::cap_for(n);
        ObjMap {
            keys: vec![EMPTY; cap],
            vals: vec![V::default(); cap],
            len: 0,
            shift: Self::shift_for(cap),
        }
    }

    /// Hash shift for a power-of-two capacity.
    fn shift_for(cap: usize) -> u32 {
        64 - cap.trailing_zeros()
    }

    /// Smallest power-of-two capacity that keeps `n` entries under the
    /// 3/4 load-factor ceiling.
    fn cap_for(n: usize) -> usize {
        let mut cap = MIN_CAP;
        while n * 4 >= cap * 3 {
            cap *= 2;
        }
        cap
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots currently allocated.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    /// Home slot of `key`: the top bits of a Fibonacci multiply, mapped
    /// onto the power-of-two table.
    #[inline]
    fn home(&self, key: u64) -> usize {
        debug_assert_eq!(self.shift, Self::shift_for(self.keys.len()));
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// The home slot index `key` hashes to — the shard identity used by
    /// speculative window partitioning: two keys with the same home slot
    /// contend for the same probe neighbourhood, so a conservative
    /// conflict predicate treats them as one shard. Pure (no probing, no
    /// state change); the value is only stable between rehashes, which is
    /// exactly the within-window horizon speculation needs.
    #[inline]
    #[must_use]
    pub fn home_slot(&self, key: ObjId) -> usize {
        self.home(key.0)
    }

    /// Hint the CPU to pull `key`'s home slot into cache ahead of an
    /// upcoming `get`/`insert`/`remove` for the same key.
    ///
    /// Purely a performance hint: it reads nothing, writes nothing, and has
    /// no effect on layout, probe order, or any observable behaviour. On
    /// non-x86_64 targets it compiles to nothing.
    #[inline]
    pub fn prefetch(&self, key: ObjId) {
        #[cfg(target_arch = "x86_64")]
        {
            let i = self.home(key.0);
            // SAFETY: `i` is in-bounds for both parallel arrays, and
            // prefetch is a pure hint with no memory effects — it cannot
            // fault even on a dangling pointer, let alone a valid one.
            unsafe {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(self.keys.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(self.vals.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = key;
        }
    }

    /// Find the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Look up `key`, copying out the value.
    #[inline]
    #[must_use]
    pub fn get(&self, key: ObjId) -> Option<V> {
        self.find(key.0).map(|i| self.vals[i])
    }

    /// Look up `key`, returning a mutable reference to the value.
    #[inline]
    pub fn get_mut(&mut self, key: ObjId) -> Option<&mut V> {
        self.find(key.0).map(|i| &mut self.vals[i])
    }

    /// True if `key` is present.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: ObjId) -> bool {
        self.find(key.0).is_some()
    }

    /// Insert or overwrite `key`, returning the previous value if any.
    ///
    /// # Panics
    /// Panics if `key` is the reserved sentinel `ObjId(u64::MAX)`.
    pub fn insert(&mut self, key: ObjId, val: V) -> Option<V> {
        assert_ne!(key.0, EMPTY, "ObjId(u64::MAX) is reserved");
        if (self.len + 1) * 4 >= self.capacity() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.home(key.0);
        loop {
            let k = self.keys[i];
            if k == key.0 {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            if k == EMPTY {
                self.keys[i] = key.0;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: ObjId) -> Option<V> {
        let i = self.find(key.0)?;
        let val = self.vals[i];
        self.shift_out(i);
        self.len -= 1;
        Some(val)
    }

    /// Vacate slot `i` by backward-shifting the probe cluster after it,
    /// so lookups never need tombstones.
    fn shift_out(&mut self, mut i: usize) {
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let kj = self.keys[j];
            if kj == EMPTY {
                break;
            }
            // Element at `j` may fill the hole at `i` only if its probe
            // path passes through `i` (cyclic distance from its home slot
            // to `j` covers the distance from `i` to `j`).
            let from_home = j.wrapping_sub(self.home(kj)) & mask;
            let from_hole = j.wrapping_sub(i) & mask;
            if from_home >= from_hole {
                self.keys[i] = kj;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
        self.vals[i] = V::default();
    }

    fn grow(&mut self) {
        let new_cap = (self.capacity() * 2).max(MIN_CAP);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_cap]);
        self.shift = Self::shift_for(new_cap);
        let mask = self.mask();
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = self.home(k);
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }

    /// Iterate over `(key, value)` pairs in slot order.
    ///
    /// The order is deterministic (it depends only on the call history)
    /// but otherwise meaningless; use it only where order cannot matter.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, V)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (ObjId(k), v))
    }

    /// Keep only the entries for which `f` returns true.
    ///
    /// Implemented as collect-then-remove: a naive in-place slot scan can
    /// skip entries when a backward shift pulls an unvisited element into
    /// an already-visited slot across the array wrap.
    pub fn retain(&mut self, mut f: impl FnMut(ObjId, V) -> bool) {
        let doomed: Vec<ObjId> = self
            .iter()
            .filter(|&(k, v)| !f(k, v))
            .map(|(k, _)| k)
            .collect();
        for k in doomed {
            self.remove(k);
        }
    }

    /// Drop all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.vals.fill(V::default());
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: ObjMap<u32> = ObjMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(ObjId(42), 7), None);
        assert_eq!(m.insert(ObjId(42), 8), Some(7));
        assert_eq!(m.get(ObjId(42)), Some(8));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(ObjId(42)), Some(8));
        assert_eq!(m.remove(ObjId(42)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m: ObjMap<u64> = ObjMap::new();
        m.insert(ObjId(3), 10);
        *m.get_mut(ObjId(3)).unwrap() += 5;
        assert_eq!(m.get(ObjId(3)), Some(15));
        assert!(m.get_mut(ObjId(4)).is_none());
    }

    #[test]
    fn grows_past_load_factor() {
        let mut m: ObjMap<usize> = ObjMap::with_capacity(4);
        for i in 0..1000 {
            m.insert(ObjId(i * 1_000_003), i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(ObjId(i * 1_000_003)), Some(i as usize));
        }
    }

    #[test]
    fn sparse_huge_keys_stay_compact() {
        // Keys near the top of a 10^8-object database must not allocate
        // proportional to the key value.
        let mut m: ObjMap<u32> = ObjMap::new();
        for i in 0..100u64 {
            m.insert(ObjId(99_999_999 - i), i as u32);
        }
        assert_eq!(m.len(), 100);
        assert!(m.capacity() <= 256, "capacity {}", m.capacity());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_key_rejected() {
        let mut m: ObjMap<u32> = ObjMap::new();
        m.insert(ObjId(u64::MAX), 0);
    }

    #[test]
    fn backward_shift_preserves_probe_clusters() {
        // Exercise removal inside long collision clusters: interleave
        // inserts and removes, then verify every survivor is findable.
        let mut m: ObjMap<u64> = ObjMap::with_capacity(16);
        let keys: Vec<u64> = (0..200).map(|i| i * 7 + 1).collect();
        for &k in &keys {
            m.insert(ObjId(k), k * 2);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(ObjId(k)), Some(k * 2));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(ObjId(k)), None);
            } else {
                assert_eq!(m.get(ObjId(k)), Some(k * 2), "lost key {k}");
            }
        }
    }

    #[test]
    fn matches_std_hashmap_on_mixed_workload() {
        use std::collections::HashMap;
        // Deterministic pseudo-random workload cross-checked against the
        // standard library map.
        let mut m: ObjMap<u64> = ObjMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x12345u64;
        for step in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512; // small key space forces collisions
            match step % 3 {
                0 | 1 => {
                    assert_eq!(m.insert(ObjId(key), step), reference.insert(key, step));
                }
                _ => {
                    assert_eq!(m.remove(ObjId(key)), reference.remove(&key));
                }
            }
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(ObjId(k)), Some(v));
        }
        let mut seen: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k.0, v)).collect();
        seen.sort_unstable();
        let mut expect: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn retain_is_exact_under_wraparound() {
        let mut m: ObjMap<u64> = ObjMap::with_capacity(8);
        for i in 0..64u64 {
            m.insert(ObjId(i), i);
        }
        m.retain(|_, v| v % 2 == 0);
        assert_eq!(m.len(), 32);
        for i in 0..64u64 {
            assert_eq!(m.get(ObjId(i)), (i % 2 == 0).then_some(i));
        }
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m: ObjMap<u8> = ObjMap::new();
        for i in 0..100 {
            m.insert(ObjId(i), 1);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(ObjId(5)), None);
        m.insert(ObjId(5), 2);
        assert_eq!(m.get(ObjId(5)), Some(2));
    }

    #[test]
    fn cached_shift_tracks_capacity_across_growth() {
        let mut m: ObjMap<u64> = ObjMap::new();
        for i in 0..5_000u64 {
            // Prefetching before the probe must never change behaviour.
            m.prefetch(ObjId(i * 17));
            m.insert(ObjId(i * 17), i);
            assert_eq!(m.shift, ObjMap::<u64>::shift_for(m.capacity()));
        }
        for i in 0..5_000u64 {
            m.prefetch(ObjId(i * 17));
            assert_eq!(m.get(ObjId(i * 17)), Some(i));
        }
        // Prefetch of absent keys (and keys past any cluster) is a no-op.
        m.prefetch(ObjId(u64::MAX - 1));
        assert_eq!(m.get(ObjId(u64::MAX - 1)), None);
    }

    #[test]
    fn iteration_is_deterministic() {
        let build = || {
            let mut m: ObjMap<u64> = ObjMap::new();
            for i in 0..500u64 {
                m.insert(ObjId(i * 31), i);
            }
            for i in (0..500u64).step_by(4) {
                m.remove(ObjId(i * 31));
            }
            m.iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
