//! Transaction specifications.
//!
//! A transaction is modeled by the objects it reads and the subset of those
//! it also writes (paper §3): `tran_size` objects drawn without replacement,
//! each written with probability `write_prob`. All reads happen before any
//! writes, and updates are deferred to commit time.

use crate::types::ObjId;

/// The immutable "program" of one transaction: its readset (in access order)
/// and which of those reads are upgraded to writes.
///
/// A restarted transaction re-executes the *same* spec (the simulator keeps
/// backup copies of read and write sets — paper footnote 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    reads: Vec<ObjId>,
    writes: Vec<bool>,
}

impl TxnSpec {
    /// Build a spec from a readset and a parallel write-flag vector.
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths, the readset is
    /// empty, or the readset contains duplicates.
    #[must_use]
    pub fn new(reads: Vec<ObjId>, writes: Vec<bool>) -> Self {
        assert_eq!(
            reads.len(),
            writes.len(),
            "readset and write flags must be parallel"
        );
        assert!(!reads.is_empty(), "transactions access at least one object");
        debug_assert!(
            {
                let mut sorted = reads.clone();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "readset must not contain duplicates"
        );
        TxnSpec { reads, writes }
    }

    /// A read-only spec over the given objects.
    #[must_use]
    pub fn read_only(reads: Vec<ObjId>) -> Self {
        let n = reads.len();
        TxnSpec::new(reads, vec![false; n])
    }

    /// Number of objects read.
    #[must_use]
    pub fn num_reads(&self) -> usize {
        self.reads.len()
    }

    /// Number of objects written.
    #[must_use]
    pub fn num_writes(&self) -> usize {
        self.writes.iter().filter(|&&w| w).count()
    }

    /// The readset in access order.
    #[must_use]
    pub fn reads(&self) -> &[ObjId] {
        &self.reads
    }

    /// The `i`-th object read.
    #[must_use]
    pub fn read_at(&self, i: usize) -> ObjId {
        self.reads[i]
    }

    /// Whether the `i`-th object read is also written.
    #[must_use]
    pub fn writes_at(&self, i: usize) -> bool {
        self.writes[i]
    }

    /// The written objects, in the order they are written (which follows the
    /// read order, as the model performs all reads before any writes).
    pub fn write_objs(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.reads
            .iter()
            .zip(self.writes.iter())
            .filter_map(|(&o, &w)| if w { Some(o) } else { None })
    }

    /// True if the transaction performs no writes.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.num_writes() == 0
    }

    /// Decompose the spec into its backing buffers so a retired
    /// transaction's allocations can be recycled into the next spec.
    #[must_use]
    pub fn into_parts(self) -> (Vec<ObjId>, Vec<bool>) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: u64) -> ObjId {
        ObjId(v)
    }

    #[test]
    fn basic_accessors() {
        let s = TxnSpec::new(vec![obj(3), obj(1), obj(7)], vec![true, false, true]);
        assert_eq!(s.num_reads(), 3);
        assert_eq!(s.num_writes(), 2);
        assert_eq!(s.read_at(1), obj(1));
        assert!(s.writes_at(0));
        assert!(!s.writes_at(1));
        assert_eq!(s.write_objs().collect::<Vec<_>>(), vec![obj(3), obj(7)]);
        assert!(!s.is_read_only());
    }

    #[test]
    fn read_only_constructor() {
        let s = TxnSpec::read_only(vec![obj(1), obj(2)]);
        assert!(s.is_read_only());
        assert_eq!(s.num_writes(), 0);
        assert_eq!(s.reads(), &[obj(1), obj(2)]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        let _ = TxnSpec::new(vec![obj(1)], vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_readset_panics() {
        let _ = TxnSpec::new(vec![], vec![]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicates")]
    fn duplicate_reads_panic_in_debug() {
        let _ = TxnSpec::new(vec![obj(1), obj(1)], vec![false, false]);
    }
}
