//! `ccsim-workload` — the database and workload model of the paper.
//!
//! Defines the identifier types of the simulated database ([`ObjId`],
//! [`TxnId`], [`TermId`]), the full simulation parameter set of the paper's
//! Table 1 ([`Params`], with [`Params::paper_baseline`] matching Table 2),
//! and the transaction [`Generator`] that draws [`TxnSpec`]s: readset sizes
//! uniform on `[min_size, max_size]`, objects sampled without replacement,
//! and writes chosen per read with probability `write_prob`.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod classes;
mod gen;
mod objmap;
mod params;
mod spec;
mod types;

pub use classes::{class_table, TxnClass};
pub use gen::Generator;
pub use objmap::ObjMap;
pub use params::{AccessPattern, ParamError, Params, ResourceSpec, RestartDelayPolicy};
pub use spec::TxnSpec;
pub use types::{ObjId, TermId, TxnId};
