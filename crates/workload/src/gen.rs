//! The transaction generator.
//!
//! Draws transaction specs according to [`Params`]: readset size uniform on
//! `[min_size, max_size]`, objects uniform without replacement over the
//! database, and each read written with probability `write_prob`.

use ccsim_des::{
    sample_distinct, sample_distinct_into, BufferedRng, RandomSource, UniformInclusive,
    Xoshiro256StarStar,
};

use crate::classes::{class_table, TxnClass};
use crate::params::{AccessPattern, Params};
use crate::spec::TxnSpec;
use crate::types::ObjId;

/// Generates [`TxnSpec`]s from a dedicated random stream.
#[derive(Debug, Clone)]
pub struct Generator {
    db_size: u64,
    classes: Vec<(TxnClass, UniformInclusive)>,
    /// Cumulative weight boundaries, normalized to sum 1.
    cum_weights: Vec<f64>,
    access: AccessPattern,
    /// The workload stream behind a refill buffer: class, size, access,
    /// and write draws interleave on this one stream, so buffering raw
    /// words (rather than per-distribution variates) is what keeps the
    /// draw order — and thus every spec — bit-identical to the unbuffered
    /// generator.
    rng: BufferedRng,
    /// Reused by every uniform draw so steady-state generation is
    /// allocation-free.
    scratch: Vec<u64>,
    /// Raw-word buffer for batched Bernoulli draws (write flags, hotspot
    /// routing), reused across specs.
    word_scratch: Vec<u64>,
}

impl Generator {
    /// Create a generator for the given parameters, drawing from `rng`.
    ///
    /// # Panics
    /// Panics if the parameters fail [`Params::validate`] — construct from
    /// validated parameters.
    #[must_use]
    pub fn new(params: &Params, rng: Xoshiro256StarStar) -> Self {
        params
            .validate()
            .expect("Generator requires validated parameters");
        let table = class_table(params);
        let total: f64 = table.iter().map(|c| c.weight).sum();
        let mut acc = 0.0;
        let cum_weights: Vec<f64> = table
            .iter()
            .map(|c| {
                acc += c.weight / total;
                acc
            })
            .collect();
        let classes = table
            .into_iter()
            .map(|c| {
                let dist = UniformInclusive::new(c.min_size, c.max_size);
                (c, dist)
            })
            .collect();
        Generator {
            db_size: params.db_size,
            classes,
            cum_weights,
            access: params.access,
            rng: BufferedRng::new(rng),
            scratch: Vec::new(),
            word_scratch: Vec::new(),
        }
    }

    /// Draw `n` raw words into the word buffer and return them.
    ///
    /// The batched-Bernoulli primitive: `n` calls to
    /// [`RandomSource::next_bool`] with `p ∈ (0, 1)` consume exactly one
    /// word each, so pulling the words in one [`RandomSource::fill_u64`]
    /// and comparing afterwards yields bit-identical flags without a
    /// buffer-position check per draw.
    fn draw_words(&mut self, n: usize) -> &[u64] {
        self.word_scratch.resize(n, 0);
        self.rng.fill_u64(&mut self.word_scratch);
        &self.word_scratch
    }

    /// The `u64 → [0,1)` mapping of [`RandomSource::next_f64`], applied to
    /// an already-drawn word.
    #[inline]
    fn word_to_f64(w: u64) -> f64 {
        (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draw the next transaction spec.
    pub fn next_spec(&mut self) -> TxnSpec {
        self.next_spec_with_class().1
    }

    /// Draw the next transaction spec with its class index (0 = the
    /// primary Table-1 class). Single-class workloads consume no extra
    /// randomness, so the paper's runs are unaffected by this extension.
    pub fn next_spec_with_class(&mut self) -> (usize, TxnSpec) {
        self.next_spec_with_class_reusing(Vec::new(), Vec::new())
    }

    /// As [`Generator::next_spec_with_class`], rebuilding the spec inside
    /// the passed buffers (cleared first) so a caller that retires one
    /// transaction per draw can recycle its allocations. Consumes identical
    /// randomness.
    pub fn next_spec_with_class_reusing(
        &mut self,
        mut reads: Vec<ObjId>,
        mut writes: Vec<bool>,
    ) -> (usize, TxnSpec) {
        let class_ix = if self.classes.len() == 1 {
            0
        } else {
            let u = self.rng.next_f64();
            self.cum_weights
                .iter()
                .position(|&c| u < c)
                .unwrap_or(self.classes.len() - 1)
        };
        let (class, size_dist) = self.classes[class_ix];
        let size = size_dist.sample(&mut self.rng) as usize;
        reads.clear();
        match self.access {
            AccessPattern::Uniform => {
                sample_distinct_into(self.db_size, size, &mut self.rng, &mut self.scratch);
                reads.extend(self.scratch.iter().copied().map(ObjId));
            }
            AccessPattern::Hotspot {
                data_frac,
                access_frac,
            } => reads = self.sample_hotspot(size, data_frac, access_frac),
        }
        writes.clear();
        // Batched Bernoulli write flags: degenerate probabilities consume
        // no randomness (matching `next_bool`); otherwise one word per
        // access, drawn in a single refill and compared branchlessly.
        let p = class.write_prob;
        if p <= 0.0 {
            writes.resize(size, false);
        } else if p >= 1.0 {
            writes.resize(size, true);
        } else {
            let words = self.draw_words(size);
            writes.extend(words.iter().map(|&w| Self::word_to_f64(w) < p));
        }
        (class_ix, TxnSpec::new(reads, writes))
    }

    /// Number of transaction classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hotspot sampling: each access independently targets the hot region
    /// with probability `access_frac`; within a region, objects are distinct.
    fn sample_hotspot(&mut self, size: usize, data_frac: f64, access_frac: f64) -> Vec<ObjId> {
        let hot_size = (self.db_size as f64 * data_frac).floor() as u64;
        let cold_size = self.db_size - hot_size;
        // Batched hot/cold routing, word-compatible with the scalar
        // `next_bool` loop (degenerate fractions draw nothing, like it).
        let n_hot = if access_frac <= 0.0 {
            0
        } else if access_frac >= 1.0 {
            size
        } else {
            self.draw_words(size)
                .iter()
                .filter(|&&w| Self::word_to_f64(w) < access_frac)
                .count()
        };
        let n_cold = size - n_hot;
        // Hot region is objects [0, hot_size); cold is [hot_size, db_size).
        let mut hot: Vec<u64> = sample_distinct(hot_size, n_hot, &mut self.rng);
        let cold: Vec<u64> = sample_distinct(cold_size, n_cold, &mut self.rng)
            .into_iter()
            .map(|o| o + hot_size)
            .collect();
        hot.extend(cold);
        // Shuffle so hot and cold accesses interleave in access order.
        for i in (1..hot.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            hot.swap(i, j);
        }
        hot.into_iter().map(ObjId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_des::RngStreams;

    fn gen_with(params: &Params, seed: u64) -> Generator {
        Generator::new(params, RngStreams::new(seed).stream(1))
    }

    #[test]
    fn sizes_respect_bounds() {
        let p = Params::paper_baseline();
        let mut g = gen_with(&p, 1);
        for _ in 0..1000 {
            let s = g.next_spec();
            assert!((4..=12).contains(&s.num_reads()));
            assert!(s.num_writes() <= s.num_reads());
        }
    }

    #[test]
    fn mean_size_matches_tran_size() {
        let p = Params::paper_baseline();
        let mut g = gen_with(&p, 2);
        let n = 20_000;
        let total: usize = (0..n).map(|_| g.next_spec().num_reads()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.1, "mean readset size {mean}");
    }

    #[test]
    fn write_fraction_matches_write_prob() {
        let p = Params::paper_baseline();
        let mut g = gen_with(&p, 3);
        let mut reads = 0usize;
        let mut writes = 0usize;
        for _ in 0..20_000 {
            let s = g.next_spec();
            reads += s.num_reads();
            writes += s.num_writes();
        }
        let frac = writes as f64 / reads as f64;
        assert!((frac - 0.25).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn objects_are_distinct_and_in_range() {
        let p = Params::paper_baseline();
        let mut g = gen_with(&p, 4);
        for _ in 0..1000 {
            let s = g.next_spec();
            let mut ids: Vec<u64> = s.reads().iter().map(|o| o.0).collect();
            ids.sort_unstable();
            let len = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), len);
            assert!(ids.iter().all(|&o| o < 1000));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let p = Params::paper_baseline();
        let mut a = gen_with(&p, 42);
        let mut b = gen_with(&p, 42);
        for _ in 0..100 {
            assert_eq!(a.next_spec(), b.next_spec());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = Params::paper_baseline();
        let mut a = gen_with(&p, 1);
        let mut b = gen_with(&p, 2);
        let identical = (0..100).filter(|_| a.next_spec() == b.next_spec()).count();
        assert!(identical < 5);
    }

    #[test]
    fn hotspot_skews_accesses() {
        let mut p = Params::paper_baseline();
        p.access = AccessPattern::Hotspot {
            data_frac: 0.1, // hot region: objects [0, 100)
            access_frac: 0.9,
        };
        let mut g = gen_with(&p, 5);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..5_000 {
            let s = g.next_spec();
            total += s.num_reads();
            hot += s.reads().iter().filter(|o| o.0 < 100).count();
        }
        let frac = hot as f64 / total as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot access fraction {frac}");
    }

    #[test]
    fn hotspot_objects_remain_distinct() {
        let mut p = Params::paper_baseline();
        p.access = AccessPattern::Hotspot {
            data_frac: 0.2,
            access_frac: 0.5,
        };
        let mut g = gen_with(&p, 6);
        for _ in 0..500 {
            let s = g.next_spec();
            let mut ids: Vec<u64> = s.reads().iter().map(|o| o.0).collect();
            let len = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), len);
        }
    }

    #[test]
    fn class_frequencies_match_weights() {
        use crate::classes::TxnClass;
        let mut p = Params::paper_baseline();
        p.primary_weight = 3.0;
        p.extra_classes.push(TxnClass {
            weight: 1.0,
            min_size: 40,
            max_size: 60,
            write_prob: 0.5,
        });
        let mut g = gen_with(&p, 9);
        assert_eq!(g.num_classes(), 2);
        let n = 20_000;
        let mut large = 0usize;
        for _ in 0..n {
            let (class, spec) = g.next_spec_with_class();
            match class {
                0 => assert!((4..=12).contains(&spec.num_reads())),
                1 => {
                    large += 1;
                    assert!((40..=60).contains(&spec.num_reads()));
                }
                other => panic!("unknown class {other}"),
            }
        }
        let frac = large as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "large fraction {frac}");
    }

    #[test]
    fn class_write_probs_are_per_class() {
        use crate::classes::TxnClass;
        let mut p = Params::paper_baseline();
        p.write_prob = 0.0; // primary class read-only
        p.extra_classes.push(TxnClass {
            weight: 1.0,
            min_size: 4,
            max_size: 12,
            write_prob: 1.0, // second class all-write
        });
        let mut g = gen_with(&p, 10);
        for _ in 0..2_000 {
            let (class, spec) = g.next_spec_with_class();
            if class == 0 {
                assert!(spec.is_read_only());
            } else {
                assert_eq!(spec.num_writes(), spec.num_reads());
            }
        }
    }

    #[test]
    fn single_class_consumes_no_class_randomness() {
        // The class-selection draw is skipped for single-class workloads,
        // so specs are identical with or without the classes machinery.
        let p = Params::paper_baseline();
        let mut a = gen_with(&p, 42);
        let mut b = gen_with(&p, 42);
        for _ in 0..100 {
            let (class, spec) = a.next_spec_with_class();
            assert_eq!(class, 0);
            assert_eq!(spec, b.next_spec());
        }
    }

    #[test]
    #[should_panic(expected = "validated parameters")]
    fn rejects_invalid_params() {
        let mut p = Params::paper_baseline();
        p.write_prob = 2.0;
        let _ = gen_with(&p, 1);
    }
}
