//! Golden-trace regression harness.
//!
//! Small seeded runs of the paper's algorithms are serialized into a
//! stable, line-oriented text form and compared against checked-in
//! references under `tests/golden/`. Any engine change that alters the
//! event stream — a reordered emit, a different lock-grant cascade, an RNG
//! stream split — shows up as a readable line diff instead of a silent
//! behavioural drift.
//!
//! To regenerate after an *intentional* change, rerun the golden tests
//! with `UPDATE_GOLDEN=1` and review the diff in version control.

use std::fmt::Write as _;
use std::path::Path;

use ccsim_core::{Report, SimConfig, Trace};

/// Serialize a run's full event trace (plus a config header and an
/// aggregate footer) into the stable golden text form.
///
/// The caller must use a trace capacity large enough that nothing was
/// dropped; a truncated trace would produce an unstable serialization, so
/// it is reported in the header to make the mistake visible.
#[must_use]
pub fn serialize_trace(cfg: &SimConfig, trace: &Trace, report: &Report) -> String {
    let mut out = String::new();
    let p = &cfg.params;
    let _ = writeln!(out, "# ccsim golden trace v1");
    let _ = writeln!(
        out,
        "# algorithm={} seed={} terms={} mpl={} db={} sizes={}..{} wp={}",
        cfg.algorithm.label(),
        cfg.seed,
        p.num_terms,
        p.mpl,
        p.db_size,
        p.min_size,
        p.max_size,
        p.write_prob,
    );
    let _ = writeln!(out, "# events={} dropped={}", trace.len(), trace.dropped());
    for (at, e) in trace.events() {
        let _ = writeln!(out, "[{at}] {e}");
    }
    let _ = writeln!(
        out,
        "# commits={} blocks={} restarts={} deadlocks={}",
        report.commits, report.blocks, report.restarts, report.deadlocks
    );
    out
}

/// Line-by-line comparison. Returns `None` when the texts are identical,
/// otherwise a readable report of the first divergence with surrounding
/// context.
#[must_use]
pub fn diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let first = exp
        .iter()
        .zip(act.iter())
        .position(|(e, a)| e != a)
        .unwrap_or(exp.len().min(act.len()));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "traces diverge at line {} (expected {} lines, actual {}):",
        first + 1,
        exp.len(),
        act.len()
    );
    let from = first.saturating_sub(2);
    let to = (first + 3).min(exp.len().max(act.len()));
    for i in from..to {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {
                let _ = writeln!(out, "   {e}");
            }
            (e, a) => {
                if let Some(e) = e {
                    let _ = writeln!(out, " - {e}");
                }
                if let Some(a) = a {
                    let _ = writeln!(out, " + {a}");
                }
            }
        }
    }
    Some(out)
}

/// Compare `actual` against the golden file at `path`.
///
/// With the environment variable `UPDATE_GOLDEN=1`, the file is
/// (re)written instead and the check passes — the standard workflow after
/// an intentional behaviour change.
///
/// # Errors
/// Returns a human-readable message when the file is missing (and
/// `UPDATE_GOLDEN` is unset), unreadable, or differs from `actual`.
pub fn check_or_update(path: &Path, actual: &str) -> Result<(), String> {
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        return std::fs::write(path, actual)
            .map_err(|e| format!("cannot write {}: {e}", path.display()));
    }
    let expected = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read golden file {}: {e}\n(run with UPDATE_GOLDEN=1 to create it)",
            path.display()
        )
    })?;
    match diff(&expected, actual) {
        None => Ok(()),
        Some(d) => Err(format!(
            "{} does not match the current run.\n{d}\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1.",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_no_diff() {
        assert!(diff("a\nb\nc\n", "a\nb\nc\n").is_none());
    }

    #[test]
    fn diff_pinpoints_first_divergence() {
        let d = diff("a\nb\nc\nd\n", "a\nb\nX\nd\n").expect("texts differ");
        assert!(d.contains("line 3"), "{d}");
        assert!(d.contains(" - c"), "{d}");
        assert!(d.contains(" + X"), "{d}");
    }

    #[test]
    fn diff_handles_length_mismatch() {
        let d = diff("a\nb\n", "a\nb\nc\n").expect("texts differ");
        assert!(d.contains("line 3"), "{d}");
        assert!(d.contains(" + c"), "{d}");
    }

    #[test]
    fn serialization_is_deterministic() {
        use ccsim_core::{run_with_trace, CcAlgorithm, MetricsConfig, SimConfig};
        let cfg = || {
            let mut c = SimConfig::new(CcAlgorithm::Blocking).with_metrics(MetricsConfig::quick());
            c.params.num_terms = 10;
            c.params.mpl = 4;
            c.seed = 7;
            c
        };
        let (r1, t1) = run_with_trace(cfg(), 1_000_000).expect("valid");
        let (r2, t2) = run_with_trace(cfg(), 1_000_000).expect("valid");
        assert_eq!(t1.dropped(), 0);
        let s1 = serialize_trace(&cfg(), &t1, &r1);
        let s2 = serialize_trace(&cfg(), &t2, &r2);
        assert_eq!(s1, s2);
        assert!(s1.contains("# ccsim golden trace v1"));
        assert!(s1.contains("algorithm=blocking"));
    }
}
