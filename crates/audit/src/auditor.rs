//! The online invariant auditor.
//!
//! [`Auditor`] subscribes to the engine's event stream (via
//! [`EventSink`]) and continuously re-derives the simulation's state
//! machine from events alone: which transaction occupies each terminal,
//! which phase it is in, which locks it holds. Any event that contradicts
//! the derived state — an admission beyond the multiprogramming level, a
//! commit while blocked, two writers on one object, a restart no rule
//! permits for the configured algorithm — is recorded as a [`Violation`]
//! carrying the simulated time, the transaction, and the last few trace
//! events for context.
//!
//! At end of run the auditor additionally checks global conservation laws:
//! every arrival is accounted for (committed or still in the closed loop),
//! no lock survives its owner, useful utilization cannot exceed total, and
//! the physical queues satisfy the operational form of Little's law
//! *exactly* (see [`ccsim_core::CenterFlow::flow_balanced`]).

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use ccsim_core::{CcAlgorithm, EventSink, FlowStats, LockMode, Report, SimConfig, TraceEvent};
use ccsim_des::SimTime;
use ccsim_workload::{ObjId, TxnId};

/// How many preceding events each violation report includes.
const CONTEXT_EVENTS: usize = 16;
/// Violations recorded in full; beyond this only the count grows.
const MAX_RECORDED: usize = 50;
/// Slack allowed between mean useful and mean total utilization. Useful
/// work is attributed to the batch a transaction *commits* in, while busy
/// time accrues when the work happens, so batch edges can skew the means
/// slightly in either direction.
const UTIL_TOLERANCE: f64 = 0.02;

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulated instant of the offending event (end of run for the
    /// global checks).
    pub at: SimTime,
    /// The transaction involved, when one is.
    pub txn: Option<TxnId>,
    /// What was violated.
    pub message: String,
    /// The last few trace events before (and including) the offender.
    pub context: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.txn {
            Some(t) => write!(f, "[{}] {}: {}", self.at, t, self.message),
            None => write!(f, "[{}] {}", self.at, self.message),
        }
    }
}

/// The auditor's findings over one run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Recorded violations, in detection order (capped at [`MAX_RECORDED`]).
    pub violations: Vec<Violation>,
    /// Total violations detected, including any beyond the recording cap.
    pub total: u64,
    /// Events observed over the run.
    pub events_seen: u64,
    /// Whether the end-of-run checks have run (false if the report was
    /// taken from a simulation that is still in progress).
    pub run_ended: bool,
}

impl AuditReport {
    /// True if no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// One line per violation (no context), for compact display.
    #[must_use]
    pub fn summaries(&self) -> Vec<String> {
        self.violations.iter().map(Violation::to_string).collect()
    }

    /// Full human-readable report including per-violation event context.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!("audit clean ({} events checked)", self.events_seen);
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit found {} violation(s) over {} events:",
            self.total, self.events_seen
        );
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
            for line in v.context.lines() {
                let _ = writeln!(out, "    | {line}");
            }
        }
        if self.total > self.violations.len() as u64 {
            let _ = writeln!(
                out,
                "  ... {} further violation(s) not recorded",
                self.total - self.violations.len() as u64
            );
        }
        out
    }
}

/// Where a transaction is in its lifecycle, as derivable from events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Arrived (or restarted) and waiting in the ready queue.
    Queued,
    /// In the active set, running.
    Active,
    /// In the active set, waiting for the given object.
    Blocked(ObjId),
    /// Committed; its `LocksReleased` event is still outstanding.
    Committed,
}

/// The adjacency obligations the event stream creates: some events must be
/// followed *immediately* by a specific other event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// A `LocksReleased` for this transaction (after `Commit`/`Restart`
    /// under a lock-using algorithm).
    Release(TxnId),
    /// A `Restart` for this transaction (after `Deadlock`,
    /// `ValidationFailure` or `TsRejected`).
    Restart(TxnId),
    /// A `VersionInstalled` for this transaction (after `Commit` under
    /// multiversion CC: every MVCC commit must account for its versions).
    Install(TxnId),
}

impl Expect {
    fn satisfied_by(self, event: &TraceEvent) -> bool {
        match (self, event) {
            (Expect::Release(t), TraceEvent::LocksReleased(u, _)) => t == *u,
            (Expect::Restart(t), TraceEvent::Restart(u)) => t == *u,
            (Expect::Install(t), TraceEvent::VersionInstalled(u, _)) => t == *u,
            _ => false,
        }
    }

    fn describe(self) -> String {
        match self {
            Expect::Release(t) => format!("LocksReleased for {t}"),
            Expect::Restart(t) => format!("Restart for {t}"),
            Expect::Install(t) => format!("VersionInstalled for {t}"),
        }
    }
}

/// Per-terminal derived state.
#[derive(Debug)]
struct TermState {
    id: TxnId,
    phase: Phase,
    /// Locks this transaction holds, per the event stream.
    holdings: HashMap<ObjId, LockMode>,
}

/// The online auditor. Implements [`EventSink`]; attach with
/// [`crate::attach`] or run a whole configuration with
/// [`crate::run_with_audit`].
#[derive(Debug)]
pub struct Auditor {
    algo: CcAlgorithm,
    mpl: usize,
    num_terms: usize,
    slots: Vec<Option<TermState>>,
    /// Object → holders, rebuilt from grant events; used for the
    /// mutual-exclusion and leaked-lock checks.
    lock_table: HashMap<ObjId, HashMap<TxnId, LockMode>>,
    active: usize,
    arrivals: u64,
    commits: u64,
    events_seen: u64,
    expect: Option<Expect>,
    recent: VecDeque<(SimTime, TraceEvent)>,
    violations: Vec<Violation>,
    total_violations: u64,
    run_ended: bool,
}

impl Auditor {
    /// Build an auditor for runs of `cfg`.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        let num_terms = cfg.params.num_terms as usize;
        Auditor {
            algo: cfg.algorithm,
            mpl: cfg.params.mpl as usize,
            num_terms,
            slots: (0..num_terms).map(|_| None).collect(),
            lock_table: HashMap::new(),
            active: 0,
            arrivals: 0,
            commits: 0,
            events_seen: 0,
            expect: None,
            recent: VecDeque::with_capacity(CONTEXT_EVENTS),
            violations: Vec::new(),
            total_violations: 0,
            run_ended: false,
        }
    }

    /// The findings so far (complete once the run has ended).
    #[must_use]
    pub fn report(&self) -> AuditReport {
        AuditReport {
            violations: self.violations.clone(),
            total: self.total_violations,
            events_seen: self.events_seen,
            run_ended: self.run_ended,
        }
    }

    /// True once `on_run_end` has been observed.
    #[must_use]
    pub fn run_ended(&self) -> bool {
        self.run_ended
    }

    fn violate(&mut self, at: SimTime, txn: Option<TxnId>, message: String) {
        self.total_violations += 1;
        if self.violations.len() >= MAX_RECORDED {
            return;
        }
        let mut context = String::new();
        for (t, e) in &self.recent {
            let _ = writeln!(context, "[{t}] {e}");
        }
        self.violations.push(Violation {
            at,
            txn,
            message,
            context,
        });
    }

    fn term_of(&self, t: TxnId) -> usize {
        (t.0 % self.num_terms as u64) as usize
    }

    /// The slot for `t` if it currently hosts `t`.
    fn slot_mut(&mut self, t: TxnId) -> Option<&mut TermState> {
        let term = self.term_of(t);
        match self.slots[term].as_mut() {
            Some(s) if s.id == t => Some(s),
            _ => None,
        }
    }

    /// Check that `t` exists and is in one of `phases` (`Blocked(_)` in the
    /// list matches any blocked object). Returns an error message otherwise.
    fn check_phase(&mut self, t: TxnId, phases: &[Phase]) -> Result<Phase, String> {
        let term = self.term_of(t);
        let s = match self.slots[term].as_ref() {
            Some(s) if s.id == t => s,
            Some(s) => {
                return Err(format!(
                    "event addresses {t} but terminal {term} hosts {}",
                    s.id
                ))
            }
            None => {
                return Err(format!(
                    "event addresses {t} but terminal {term} has no transaction"
                ))
            }
        };
        let ok = phases.iter().any(|p| match (p, s.phase) {
            (Phase::Blocked(_), Phase::Blocked(_)) => true,
            (p, q) => *p == q,
        });
        if ok {
            Ok(s.phase)
        } else {
            Err(format!("{t} is {:?}, expected one of {phases:?}", s.phase))
        }
    }

    /// Would granting `mode` on `obj` to `t` violate mutual exclusion,
    /// given the holders the event stream implies?
    fn conflict_with(&self, t: TxnId, obj: ObjId, mode: LockMode) -> Option<String> {
        let holders = self.lock_table.get(&obj)?;
        for (&h, &hm) in holders {
            if h == t {
                continue; // in-place upgrade
            }
            if mode == LockMode::Write || hm == LockMode::Write {
                return Some(format!(
                    "grant of {obj} ({mode:?}) to {t} conflicts with holder {h} ({hm:?})"
                ));
            }
        }
        None
    }

    /// Record that `t` now holds `obj` in `mode` (write dominates on
    /// upgrade).
    fn record_holding(&mut self, t: TxnId, obj: ObjId, mode: LockMode) {
        if let Some(s) = self.slot_mut(t) {
            let e = s.holdings.entry(obj).or_insert(mode);
            if mode == LockMode::Write {
                *e = LockMode::Write;
            }
        }
        let e = self
            .lock_table
            .entry(obj)
            .or_default()
            .entry(t)
            .or_insert(mode);
        if mode == LockMode::Write {
            *e = LockMode::Write;
        }
    }

    /// Is `event` ever legal under the configured algorithm?
    fn legality_error(&self, event: &TraceEvent) -> Option<String> {
        use CcAlgorithm as A;
        let algo = self.algo;
        let ok = match event {
            TraceEvent::Arrive(_) | TraceEvent::Admit(_) | TraceEvent::Commit(_) => true,
            TraceEvent::Acquire(..) | TraceEvent::LocksReleased(..) => algo.uses_locks(),
            // Only algorithms that can wait ever block or receive queued
            // grants: the blocking family, wait-die/wound-wait, and basic
            // T/O readers parked on a pending prewrite.
            TraceEvent::Block(..) | TraceEvent::Grant(..) => matches!(
                algo,
                A::Blocking | A::StaticLocking | A::WaitDie | A::WoundWait | A::BasicTO
            ),
            // Deadlock prevention (wait-die, wound-wait), no-waiting,
            // static locking's canonical acquisition order, and the
            // non-locking algorithms all make deadlock impossible.
            TraceEvent::Deadlock { .. } => algo == A::Blocking,
            // Static locking cannot deadlock and never has a lock denied;
            // the unsafe no-CC baseline never conflicts at all.
            TraceEvent::Restart(_) => !matches!(algo, A::StaticLocking | A::NoCc),
            // Every certification-at-commit protocol can fail validation;
            // snapshot isolation's first-committer-wins check, Silo's
            // read-set re-check, and TicToc's superseded-version check all
            // announce their aborts this way.
            TraceEvent::ValidationFailure(..) => {
                matches!(algo, A::Optimistic | A::MvccSi | A::SiloOcc | A::TicToc)
            }
            TraceEvent::TsRejected(..) => algo == A::BasicTO,
            // Only multiversion CC installs versions.
            TraceEvent::VersionInstalled(..) => algo == A::MvccSi,
        };
        (!ok).then(|| format!("event `{event}` is illegal under {algo}"))
    }

    fn handle(&mut self, at: SimTime, event: &TraceEvent, restart_expected: bool) {
        match *event {
            TraceEvent::Arrive(t) => {
                let term = self.term_of(t);
                if let Some(s) = self.slots[term].as_ref() {
                    self.violate(
                        at,
                        Some(t),
                        format!("arrival at terminal {term} which still hosts {}", s.id),
                    );
                }
                self.slots[term] = Some(TermState {
                    id: t,
                    phase: Phase::Queued,
                    holdings: HashMap::new(),
                });
                self.arrivals += 1;
            }
            TraceEvent::Admit(t) => {
                if let Err(m) = self.check_phase(t, &[Phase::Queued]) {
                    self.violate(at, Some(t), m);
                }
                if let Some(s) = self.slot_mut(t) {
                    s.phase = Phase::Active;
                }
                self.active += 1;
                if self.active > self.mpl {
                    self.violate(
                        at,
                        Some(t),
                        format!(
                            "active set grew to {} which exceeds mpl {}",
                            self.active, self.mpl
                        ),
                    );
                }
            }
            TraceEvent::Acquire(t, obj, mode) => {
                if let Err(m) = self.check_phase(t, &[Phase::Active]) {
                    self.violate(at, Some(t), m);
                }
                if let Some(m) = self.conflict_with(t, obj, mode) {
                    self.violate(at, Some(t), m);
                }
                self.record_holding(t, obj, mode);
            }
            TraceEvent::Block(t, obj) => {
                if let Err(m) = self.check_phase(t, &[Phase::Active]) {
                    self.violate(at, Some(t), m);
                }
                if let Some(s) = self.slot_mut(t) {
                    s.phase = Phase::Blocked(obj);
                }
            }
            TraceEvent::Grant(t, obj, mode) => {
                match self.check_phase(t, &[Phase::Blocked(obj)]) {
                    Ok(Phase::Blocked(b)) if b != obj => {
                        self.violate(at, Some(t), format!("granted {obj} but was blocked on {b}"))
                    }
                    Ok(_) => {}
                    Err(m) => self.violate(at, Some(t), m),
                }
                if let Some(s) = self.slot_mut(t) {
                    s.phase = Phase::Active;
                }
                // A lock grant hands the object over; a basic-T/O "grant"
                // only resumes a parked read (no lock exists to record).
                if self.algo.uses_locks() {
                    if let Some(m) = self.conflict_with(t, obj, mode) {
                        self.violate(at, Some(t), m);
                    }
                    self.record_holding(t, obj, mode);
                }
            }
            TraceEvent::Deadlock { detector, victim } => {
                if let Err(m) = self.check_phase(detector, &[Phase::Blocked(ObjId(0))]) {
                    self.violate(at, Some(detector), m);
                }
                if self.slot_mut(victim).is_none() {
                    self.violate(
                        at,
                        Some(victim),
                        format!("deadlock victim {victim} is not a live transaction"),
                    );
                }
                self.expect = Some(Expect::Restart(victim));
            }
            TraceEvent::Restart(t) => {
                // Under these algorithms every restart has an announcing
                // event (deadlock victim selection, validation failure,
                // timestamp rejection) immediately before it.
                let announced = matches!(
                    self.algo,
                    CcAlgorithm::Blocking | CcAlgorithm::Optimistic | CcAlgorithm::BasicTO
                );
                if announced && !restart_expected {
                    self.violate(
                        at,
                        Some(t),
                        format!(
                            "spontaneous restart: no preceding cause under {}",
                            self.algo
                        ),
                    );
                }
                if let Err(m) = self.check_phase(t, &[Phase::Active, Phase::Blocked(ObjId(0))]) {
                    self.violate(at, Some(t), m);
                }
                if let Some(s) = self.slot_mut(t) {
                    s.phase = Phase::Queued;
                }
                if self.active == 0 {
                    self.violate(at, Some(t), "active set underflow on restart".into());
                } else {
                    self.active -= 1;
                }
                if self.algo.uses_locks() {
                    self.expect = Some(Expect::Release(t));
                }
            }
            TraceEvent::ValidationFailure(t, _) | TraceEvent::TsRejected(t, _) => {
                if let Err(m) = self.check_phase(t, &[Phase::Active]) {
                    self.violate(at, Some(t), m);
                }
                self.expect = Some(Expect::Restart(t));
            }
            TraceEvent::Commit(t) => {
                // Committing while blocked (or queued) is a serious engine
                // bug; the phase must be exactly Active.
                if let Err(m) = self.check_phase(t, &[Phase::Active]) {
                    self.violate(at, Some(t), m);
                }
                self.commits += 1;
                if self.active == 0 {
                    self.violate(at, Some(t), "active set underflow on commit".into());
                } else {
                    self.active -= 1;
                }
                if self.algo.uses_locks() {
                    if let Some(s) = self.slot_mut(t) {
                        s.phase = Phase::Committed;
                    }
                    self.expect = Some(Expect::Release(t));
                } else if self.algo == CcAlgorithm::MvccSi {
                    // The slot clears at the obligated VersionInstalled.
                    if let Some(s) = self.slot_mut(t) {
                        s.phase = Phase::Committed;
                    }
                    self.expect = Some(Expect::Install(t));
                } else {
                    let term = self.term_of(t);
                    self.slots[term] = None;
                }
            }
            TraceEvent::VersionInstalled(t, _) => {
                // Adjacency is enforced by the expectation mechanism; an
                // out-of-the-blue installation is caught here.
                let expected = self
                    .recent
                    .iter()
                    .rev()
                    .nth(1)
                    .is_some_and(|(_, prev)| matches!(*prev, TraceEvent::Commit(u) if u == t));
                if !expected {
                    self.violate(
                        at,
                        Some(t),
                        "VersionInstalled without an immediately preceding Commit".into(),
                    );
                }
                if let Err(m) = self.check_phase(t, &[Phase::Committed]) {
                    self.violate(at, Some(t), m);
                }
                let term = self.term_of(t);
                if self.slots[term]
                    .as_ref()
                    .is_some_and(|s| s.id == t && s.phase == Phase::Committed)
                {
                    self.slots[term] = None;
                }
            }
            TraceEvent::LocksReleased(t, n) => {
                // Adjacency is enforced by the expectation mechanism; an
                // out-of-the-blue release is caught here.
                let expected = self
                    .recent
                    .iter()
                    .rev()
                    .nth(1)
                    .is_some_and(|(_, prev)| {
                        matches!(*prev, TraceEvent::Commit(u) | TraceEvent::Restart(u) if u == t)
                    });
                if !expected {
                    self.violate(
                        at,
                        Some(t),
                        "LocksReleased without an immediately preceding Commit/Restart".into(),
                    );
                }
                let held = self.slot_mut(t).map(|s| s.holdings.len() as u32);
                match held {
                    Some(held) if held != n => self.violate(
                        at,
                        Some(t),
                        format!(
                            "lock manager released {n} lock(s) but the event stream \
                             shows {held} held"
                        ),
                    ),
                    Some(_) => {}
                    None => self.violate(
                        at,
                        Some(t),
                        "LocksReleased for a transaction that is not live".into(),
                    ),
                }
                let term = self.term_of(t);
                if let Some(s) = self.slots[term].as_mut().filter(|s| s.id == t) {
                    let objs: Vec<ObjId> = s.holdings.drain().map(|(o, _)| o).collect();
                    let committed = s.phase == Phase::Committed;
                    for obj in objs {
                        if let Some(holders) = self.lock_table.get_mut(&obj) {
                            holders.remove(&t);
                            if holders.is_empty() {
                                self.lock_table.remove(&obj);
                            }
                        }
                    }
                    if committed {
                        self.slots[term] = None;
                    }
                }
            }
        }
    }

    fn end_of_run_checks(&mut self, now: SimTime, report: &Report, flow: &FlowStats) {
        if let Some(exp) = self.expect.take() {
            self.violate(
                now,
                None,
                format!("run ended with a pending obligation: {}", exp.describe()),
            );
        }

        // The closed loop conserves transactions: every arrival either
        // committed (slot cleared) or is still somewhere in the loop.
        let live = self.slots.iter().flatten().count() as u64;
        if self.arrivals != self.commits + live {
            self.violate(
                now,
                None,
                format!(
                    "transaction conservation broken: {} arrivals != {} commits + {live} live",
                    self.arrivals, self.commits
                ),
            );
        }

        // The running active counter must agree with a fresh census.
        let census = self
            .slots
            .iter()
            .flatten()
            .filter(|s| matches!(s.phase, Phase::Active | Phase::Blocked(_)))
            .count();
        if census != self.active {
            self.violate(
                now,
                None,
                format!(
                    "active-set accounting drifted: counter {} vs census {census}",
                    self.active
                ),
            );
        }

        // Measured commits are a subset of observed commit events (the
        // report excludes warmup).
        if report.commits > self.commits {
            self.violate(
                now,
                None,
                format!(
                    "report counts {} commits but only {} commit events were seen",
                    report.commits, self.commits
                ),
            );
        }

        // No lock may survive its owner.
        let leaked: Vec<(ObjId, TxnId)> = self
            .lock_table
            .iter()
            .flat_map(|(&obj, holders)| holders.keys().map(move |&t| (obj, t)))
            .filter(|&(_, t)| {
                let term = (t.0 % self.num_terms as u64) as usize;
                !matches!(self.slots[term].as_ref(), Some(s) if s.id == t)
            })
            .collect();
        for (obj, t) in leaked {
            self.violate(
                now,
                Some(t),
                format!("leaked lock: {obj} still held by departed {t}"),
            );
        }

        // Useful utilization (work belonging to committed transactions)
        // can never exceed total utilization.
        for (name, useful, total) in [
            ("cpu", &report.cpu_util_useful, &report.cpu_util_total),
            ("disk", &report.disk_util_useful, &report.disk_util_total),
        ] {
            if useful.mean > total.mean + UTIL_TOLERANCE {
                self.violate(
                    now,
                    None,
                    format!(
                        "{name} useful utilization {:.4} exceeds total {:.4}",
                        useful.mean, total.mean
                    ),
                );
            }
        }

        // Little's law, operational form, as an exact integer identity.
        for (name, center) in [("cpu", flow.cpu), ("disk", flow.disk)] {
            let Some(c) = center else { continue };
            if !c.flow_balanced() {
                self.violate(
                    now,
                    None,
                    format!(
                        "{name} flow imbalance: ∫queue dt = {} µs but waits sum to {} µs \
                         ({} completed + {} pending)",
                        c.queue_integral_us,
                        c.total_wait_us + c.pending_wait_us,
                        c.total_wait_us,
                        c.pending_wait_us
                    ),
                );
            }
        }
    }
}

impl EventSink for Auditor {
    fn on_event(&mut self, now: SimTime, event: &TraceEvent) {
        self.events_seen += 1;
        if self.recent.len() == CONTEXT_EVENTS {
            self.recent.pop_front();
        }
        self.recent.push_back((now, *event));

        if let Some(m) = self.legality_error(event) {
            self.violate(now, Some(event.txn()), m);
        }

        // Settle any adjacency obligation from the previous event.
        let mut restart_expected = false;
        if let Some(exp) = self.expect.take() {
            if exp.satisfied_by(event) {
                restart_expected = matches!(exp, Expect::Restart(_));
            } else {
                self.violate(
                    now,
                    Some(event.txn()),
                    format!(
                        "expected {} immediately, saw `{event}` instead",
                        exp.describe()
                    ),
                );
            }
        }

        self.handle(now, event, restart_expected);
    }

    fn on_run_end(&mut self, now: SimTime, report: &Report, flow: &FlowStats) {
        self.run_ended = true;
        self.end_of_run_checks(now, report, flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::MetricsConfig;

    fn cfg(algo: CcAlgorithm) -> SimConfig {
        let mut c = SimConfig::new(algo).with_metrics(MetricsConfig::quick());
        c.params.num_terms = 10;
        c.params.mpl = 3;
        c
    }

    fn feed(a: &mut Auditor, at_s: u64, e: TraceEvent) {
        a.on_event(SimTime::from_secs(at_s), &e);
    }

    fn t(v: u64) -> TxnId {
        TxnId(v)
    }
    fn o(v: u64) -> ObjId {
        ObjId(v)
    }

    #[test]
    fn clean_lifecycle_is_clean() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Acquire(t(1), o(5), LockMode::Read));
        feed(&mut a, 3, TraceEvent::Commit(t(1)));
        feed(&mut a, 3, TraceEvent::LocksReleased(t(1), 1));
        assert!(a.report().is_clean(), "{}", a.report().render());
    }

    #[test]
    fn admission_beyond_mpl_is_flagged() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        for i in 1..=4 {
            feed(&mut a, i, TraceEvent::Arrive(t(i)));
            feed(&mut a, i, TraceEvent::Admit(t(i)));
        }
        let r = a.report();
        assert_eq!(r.total, 1);
        assert!(r.violations[0].message.contains("exceeds mpl"));
    }

    #[test]
    fn commit_while_blocked_is_flagged() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Block(t(1), o(7)));
        feed(&mut a, 3, TraceEvent::Commit(t(1)));
        let r = a.report();
        assert!(!r.is_clean());
        assert!(r.violations[0].message.contains("Blocked"));
    }

    #[test]
    fn two_writers_on_one_object_is_flagged() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        for i in 1..=2 {
            feed(&mut a, i, TraceEvent::Arrive(t(i)));
            feed(&mut a, i, TraceEvent::Admit(t(i)));
        }
        feed(&mut a, 3, TraceEvent::Acquire(t(1), o(9), LockMode::Write));
        feed(&mut a, 4, TraceEvent::Acquire(t(2), o(9), LockMode::Write));
        let r = a.report();
        assert_eq!(r.total, 1);
        assert!(r.violations[0].message.contains("conflicts with holder"));
    }

    #[test]
    fn shared_readers_are_fine_but_writer_on_read_is_not() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        for i in 1..=3 {
            feed(&mut a, i, TraceEvent::Arrive(t(i)));
            feed(&mut a, i, TraceEvent::Admit(t(i)));
        }
        feed(&mut a, 4, TraceEvent::Acquire(t(1), o(9), LockMode::Read));
        feed(&mut a, 4, TraceEvent::Acquire(t(2), o(9), LockMode::Read));
        assert!(a.report().is_clean());
        feed(&mut a, 5, TraceEvent::Acquire(t(3), o(9), LockMode::Write));
        assert_eq!(a.report().total, 1);
    }

    #[test]
    fn missing_lock_release_after_commit_is_flagged() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Acquire(t(1), o(5), LockMode::Write));
        feed(&mut a, 3, TraceEvent::Commit(t(1)));
        // Next event is NOT the obligated LocksReleased.
        feed(&mut a, 4, TraceEvent::Arrive(t(11)));
        let r = a.report();
        assert!(!r.is_clean());
        assert!(r.violations[0].message.contains("expected LocksReleased"));
    }

    #[test]
    fn release_count_mismatch_is_flagged() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Acquire(t(1), o(5), LockMode::Write));
        feed(&mut a, 2, TraceEvent::Acquire(t(1), o(6), LockMode::Read));
        feed(&mut a, 3, TraceEvent::Commit(t(1)));
        feed(&mut a, 3, TraceEvent::LocksReleased(t(1), 1));
        let r = a.report();
        assert_eq!(r.total, 1);
        assert!(r.violations[0].message.contains("shows 2 held"));
    }

    #[test]
    fn upgrade_counts_one_lock() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Acquire(t(1), o(5), LockMode::Read));
        feed(&mut a, 2, TraceEvent::Acquire(t(1), o(5), LockMode::Write));
        feed(&mut a, 3, TraceEvent::Commit(t(1)));
        feed(&mut a, 3, TraceEvent::LocksReleased(t(1), 1));
        assert!(a.report().is_clean(), "{}", a.report().render());
    }

    #[test]
    fn deadlock_under_immediate_restart_is_illegal() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::ImmediateRestart));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(
            &mut a,
            2,
            TraceEvent::Deadlock {
                detector: t(1),
                victim: t(1),
            },
        );
        let r = a.report();
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("illegal under immediate-restart")));
    }

    #[test]
    fn validation_failure_under_blocking_is_illegal() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::ValidationFailure(t(1), o(3)));
        let r = a.report();
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("illegal under blocking")));
    }

    #[test]
    fn spontaneous_restart_under_optimistic_is_flagged() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Optimistic));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Restart(t(1)));
        let r = a.report();
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("spontaneous restart")));
    }

    #[test]
    fn mvcc_commit_lifecycle_is_clean_and_installation_is_obligatory() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::MvccSi));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Commit(t(1)));
        feed(&mut a, 2, TraceEvent::VersionInstalled(t(1), 2));
        assert!(a.report().is_clean(), "{}", a.report().render());

        // A commit whose installation never arrives breaks the obligation.
        let mut b = Auditor::new(&cfg(CcAlgorithm::MvccSi));
        feed(&mut b, 1, TraceEvent::Arrive(t(1)));
        feed(&mut b, 1, TraceEvent::Admit(t(1)));
        feed(&mut b, 2, TraceEvent::Commit(t(1)));
        feed(&mut b, 3, TraceEvent::Arrive(t(11)));
        assert!(b
            .report()
            .violations
            .iter()
            .any(|v| v.message.contains("expected VersionInstalled")));
    }

    #[test]
    fn version_installed_outside_mvcc_is_illegal() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::SiloOcc));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Commit(t(1)));
        feed(&mut a, 2, TraceEvent::VersionInstalled(t(1), 1));
        assert!(a
            .report()
            .violations
            .iter()
            .any(|v| v.message.contains("illegal under silo-occ")));
    }

    #[test]
    fn validation_failure_is_legal_for_the_modern_trio() {
        for algo in CcAlgorithm::MODERN_TRIO {
            let mut a = Auditor::new(&cfg(algo));
            feed(&mut a, 1, TraceEvent::Arrive(t(1)));
            feed(&mut a, 1, TraceEvent::Admit(t(1)));
            feed(&mut a, 2, TraceEvent::ValidationFailure(t(1), o(3)));
            feed(&mut a, 2, TraceEvent::Restart(t(1)));
            assert!(a.report().is_clean(), "{algo}: {}", a.report().render());
        }
    }

    #[test]
    fn blocking_events_are_illegal_for_the_modern_trio() {
        for algo in CcAlgorithm::MODERN_TRIO {
            let mut a = Auditor::new(&cfg(algo));
            feed(&mut a, 1, TraceEvent::Arrive(t(1)));
            feed(&mut a, 1, TraceEvent::Admit(t(1)));
            feed(&mut a, 2, TraceEvent::Block(t(1), o(7)));
            assert!(a
                .report()
                .violations
                .iter()
                .any(|v| v.message.contains("illegal under")));
        }
    }

    #[test]
    fn violation_context_carries_recent_events() {
        let mut a = Auditor::new(&cfg(CcAlgorithm::Blocking));
        feed(&mut a, 1, TraceEvent::Arrive(t(1)));
        feed(&mut a, 1, TraceEvent::Admit(t(1)));
        feed(&mut a, 2, TraceEvent::Block(t(1), o(7)));
        feed(&mut a, 3, TraceEvent::Commit(t(1)));
        let r = a.report();
        let v = &r.violations[0];
        assert!(v.context.contains("txn1 blocks on obj7"));
        assert!(v.context.contains("txn1 commits"));
        assert!(r.render().contains("txn1 blocks on obj7"));
    }
}
