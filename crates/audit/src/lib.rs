//! `ccsim-audit` — an online invariant auditor and golden-trace regression
//! harness for the simulation engine.
//!
//! The simulator emits a typed event per state transition (see
//! [`ccsim_core::TraceEvent`]). This crate consumes that stream through
//! the [`ccsim_core::EventSink`] observer interface and *re-derives* the
//! model's state machine independently, flagging any event the paper's
//! model rules out:
//!
//! - the active set exceeding the multiprogramming level,
//! - commits from blocked transactions, blocks without a later grant or
//!   restart, grants for objects a transaction never blocked on,
//! - mutual-exclusion breaches (two writers, writer alongside readers),
//! - lock-count mismatches between the engine's lock manager and the
//!   event-derived holdings, and locks that outlive their owner,
//! - events that are illegal for the configured algorithm (a deadlock
//!   under immediate-restart, a validation failure under blocking, ...),
//! - end-of-run conservation laws: arrivals = commits + in-flight,
//!   useful ≤ total utilization, and exact Little's-law flow balance at
//!   the physical CPU/disk queues.
//!
//! # Quick start
//!
//! ```
//! use ccsim_core::{CcAlgorithm, MetricsConfig, SimConfig};
//!
//! let cfg = SimConfig::new(CcAlgorithm::Blocking)
//!     .with_metrics(MetricsConfig::quick())
//!     .with_seed(7);
//! let (report, audit) = ccsim_audit::run_with_audit(cfg).expect("valid configuration");
//! assert!(report.throughput.mean > 0.0);
//! assert!(audit.is_clean(), "{}", audit.render());
//! ```
//!
//! The [`golden`] module adds a complementary regression net: full event
//! traces of small seeded runs serialized to a stable text form and
//! compared against checked-in references (regenerate intentionally with
//! `UPDATE_GOLDEN=1`).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod auditor;
pub mod golden;

use std::cell::RefCell;
use std::rc::Rc;

use ccsim_core::{EventSink, FlowStats, Report, RunError, SimConfig, Simulator, TraceEvent};
use ccsim_des::SimTime;

pub use auditor::{AuditReport, Auditor, Violation};

/// A handle onto an auditor attached to a running simulator, usable after
/// the simulator has been consumed by `run_to_completion`.
pub struct AuditorHandle(Rc<RefCell<Auditor>>);

impl AuditorHandle {
    /// The findings so far (complete once the run has ended).
    #[must_use]
    pub fn report(&self) -> AuditReport {
        self.0.borrow().report()
    }
}

/// Adapter so the shared auditor can be handed to the engine as a boxed
/// sink while the caller keeps an [`AuditorHandle`].
struct SharedSink(Rc<RefCell<Auditor>>);

impl EventSink for SharedSink {
    fn on_event(&mut self, now: SimTime, event: &TraceEvent) {
        self.0.borrow_mut().on_event(now, event);
    }

    fn on_run_end(&mut self, now: SimTime, report: &Report, flow: &FlowStats) {
        self.0.borrow_mut().on_run_end(now, report, flow);
    }
}

/// Attach a fresh auditor to `sim` and return a handle for reading its
/// findings after the run.
pub fn attach(sim: &mut Simulator) -> AuditorHandle {
    let auditor = Rc::new(RefCell::new(Auditor::new(sim.config())));
    sim.add_sink(Box::new(SharedSink(Rc::clone(&auditor))));
    AuditorHandle(auditor)
}

/// Run `cfg` to completion with an auditor attached; returns the normal
/// simulation [`Report`] together with the [`AuditReport`].
///
/// # Errors
/// Returns [`RunError`] if the configuration is invalid or the run exceeds
/// its budget.
pub fn run_with_audit(cfg: SimConfig) -> Result<(Report, AuditReport), RunError> {
    let mut sim = Simulator::new(cfg)?;
    let handle = attach(&mut sim);
    let report = sim.run_to_completion()?;
    Ok((report, handle.report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::{CcAlgorithm, MetricsConfig};

    #[test]
    fn paper_trio_quick_runs_audit_clean() {
        for algo in CcAlgorithm::PAPER_TRIO {
            let cfg = SimConfig::new(algo)
                .with_metrics(MetricsConfig::quick())
                .with_seed(42);
            let (report, audit) = run_with_audit(cfg).expect("valid config");
            assert!(report.commits > 0);
            assert!(audit.run_ended, "run end must reach the sink");
            assert!(audit.is_clean(), "{algo}: {}", audit.render());
            assert!(audit.events_seen > 0);
        }
    }
}
