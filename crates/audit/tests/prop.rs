//! Property-based auditor coverage for the modern in-memory protocols
//! (MVCC-SI, Silo OCC, TicToc): random contended workloads at low, medium
//! and saturated multiprogramming levels must audit clean, and each
//! protocol's event stream must stay inside its legal vocabulary — no
//! blocking-family events ever, no deadlocks, no timestamp rejections, and
//! version installations from the multiversion protocol only.

use ccsim_audit::run_with_audit;
use ccsim_core::{
    run_with_trace, CcAlgorithm, Confidence, MetricsConfig, Params, SimConfig, TraceEvent,
};
use ccsim_des::SimDuration;
use proptest::prelude::*;

/// The load levels under test: lightly loaded, busy, and far past the
/// paper's thrashing point.
const MPLS: [u32; 3] = [5, 50, 200];

fn contended(algo: CcAlgorithm, mpl: u32, db_size: u64, write_prob: f64, seed: u64) -> SimConfig {
    let mut params = Params::paper_baseline();
    params.db_size = db_size;
    params.min_size = 2;
    params.max_size = 8;
    params.write_prob = write_prob;
    // Enough terminals that the active-set cap actually binds.
    params.num_terms = mpl + mpl / 2 + 5;
    params.mpl = mpl;
    params.ext_think_time = SimDuration::from_millis(500);
    SimConfig::new(algo)
        .with_params(params)
        .with_metrics(MetricsConfig {
            warmup_batches: 0,
            batches: 2,
            batch_time: SimDuration::from_secs(10),
            confidence: Confidence::Ninety,
        })
        .with_seed(seed)
}

/// True if `event` may appear in a certification-at-commit protocol's
/// stream; `installs` additionally admits `VersionInstalled` (MVCC only).
fn legal_modern_event(event: &TraceEvent, installs: bool) -> bool {
    match event {
        TraceEvent::Arrive(_)
        | TraceEvent::Admit(_)
        | TraceEvent::Commit(_)
        | TraceEvent::Restart(_)
        | TraceEvent::ValidationFailure(..) => true,
        TraceEvent::VersionInstalled(..) => installs,
        TraceEvent::Acquire(..)
        | TraceEvent::Block(..)
        | TraceEvent::Grant(..)
        | TraceEvent::Deadlock { .. }
        | TraceEvent::LocksReleased(..)
        | TraceEvent::TsRejected(..) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every modern protocol audits clean on random contended workloads at
    /// each load level, and commits something at the low and medium ones
    /// (at mpl 200 a protocol may legitimately spend the whole short run
    /// restarting).
    #[test]
    fn modern_trio_audits_clean_across_load_levels(
        seed in any::<u64>(),
        db_size in 50u64..400,
        write_prob in 0.1f64..0.9,
    ) {
        for algo in CcAlgorithm::MODERN_TRIO {
            for mpl in MPLS {
                let cfg = contended(algo, mpl, db_size, write_prob, seed);
                let (report, audit) = run_with_audit(cfg).expect("valid config");
                prop_assert!(
                    audit.run_ended,
                    "{}@{}: auditor missed the end of the run", algo, mpl
                );
                prop_assert!(
                    audit.is_clean(),
                    "{}@{}: {}", algo, mpl, audit.render()
                );
                if mpl < 200 {
                    prop_assert!(
                        report.commits > 0,
                        "{}@{}: committed nothing", algo, mpl
                    );
                }
            }
        }
    }

    /// The forbidden-event vocabulary, checked against the raw trace: the
    /// modern protocols never block, never deadlock, never touch the lock
    /// manager, never reject on basic-T/O timestamps — and only MVCC-SI
    /// installs versions.
    #[test]
    fn modern_trio_stays_inside_its_event_vocabulary(
        seed in any::<u64>(),
        db_size in 50u64..400,
        write_prob in 0.1f64..0.9,
    ) {
        for algo in CcAlgorithm::MODERN_TRIO {
            let installs = algo == CcAlgorithm::MvccSi;
            for mpl in MPLS {
                let cfg = contended(algo, mpl, db_size, write_prob, seed);
                let (_, trace) = run_with_trace(cfg, 4_000_000).expect("valid config");
                prop_assert_eq!(trace.dropped(), 0, "{}@{} trace overflowed", algo, mpl);
                let mut installed = 0u64;
                for (at, e) in trace.events() {
                    prop_assert!(
                        legal_modern_event(e, installs),
                        "{}@{} emitted a forbidden event at {}: {}", algo, mpl, at, e
                    );
                    if matches!(e, TraceEvent::VersionInstalled(..)) {
                        installed += 1;
                    }
                }
                if installs {
                    let commits = trace
                        .events()
                        .filter(|(_, e)| matches!(e, TraceEvent::Commit(_)))
                        .count() as u64;
                    prop_assert_eq!(
                        installed, commits,
                        "{}@{}: every MVCC commit installs exactly once", algo, mpl
                    );
                }
            }
        }
    }
}
