//! End-to-end tests for the sweep service: a real daemon on a real
//! socket, driven through the line-delimited JSON protocol.
//!
//! The claims under test are the service's headline guarantees:
//! durable-before-ack submission, crash/drain recovery to byte-identical
//! output, cache hits that cost zero simulated events, typed budget
//! holes instead of wedged jobs, and load shedding with a retry hint.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use ccsim_experiments::json::{self, Value};
use ccsim_experiments::{run_experiment, RetryPolicy};
use ccsim_serve::{start, JobSpec, ServerConfig};

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsim-serve-e2e-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec(mpls: &[u32]) -> JobSpec {
    JobSpec {
        mpls: Some(mpls.to_vec()),
        ..JobSpec::quick("exp3")
    }
}

/// What an uninterrupted local run of the same spec archives.
fn reference_json(spec: &JobSpec) -> String {
    let (espec, opts) = spec.resolve().expect("valid spec");
    let result = run_experiment(&espec, &opts).expect("reference run");
    json::to_json(&result)
}

/// Send one request line and collect every response line until the
/// server closes the connection.
fn request(addr: SocketAddr, req: &str) -> Vec<String> {
    stream_request(addr, req, |_| {})
}

/// Like [`request`], invoking `on_line` as each line arrives (used to
/// trigger a drain mid-stream).
fn stream_request(addr: SocketAddr, req: &str, mut on_line: impl FnMut(&str)) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(req.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    let reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        on_line(&line);
        lines.push(line);
    }
    lines
}

fn event_of(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("event").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_default()
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    json::parse(line).ok()?.get(key)?.as_u64()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    json::parse(line).ok()?.get(key)?.as_bool()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get(key)?
        .as_str()
        .map(str::to_string)
}

fn submit_line(spec: &JobSpec) -> String {
    format!("{{\"op\":\"submit\",\"spec\":{}}}", spec.to_json())
}

#[test]
fn submit_runs_caches_and_serves_repeats_for_free() {
    let dir = state_dir("cache-hit");
    let mut cfg = ServerConfig::new(&dir);
    cfg.threads = 1;
    let handle = start(cfg).expect("daemon starts");
    let spec = small_spec(&[5, 10]);

    let lines = request(handle.addr(), &submit_line(&spec));
    assert_eq!(event_of(&lines[0]), "ack");
    assert_eq!(field_bool(&lines[0], "deduped"), Some(false));
    let points: Vec<&String> = lines.iter().filter(|l| event_of(l) == "point").collect();
    assert_eq!(points.len(), 6, "3 series x 2 mpls: {lines:#?}");
    assert!(points
        .iter()
        .all(|l| field_bool(l, "replayed") == Some(false)));
    let done = lines.last().expect("terminal line");
    assert_eq!(event_of(done), "done");
    assert_eq!(field_bool(done, "cached"), Some(false));
    assert_eq!(field_bool(done, "fully_measured"), Some(true));
    assert!(field_u64(done, "events_charged").expect("charged") > 0);

    // The archived result is exactly what a local uninterrupted
    // `run_experiment` produces.
    let result_path = field_str(done, "result").expect("result path");
    let archived = std::fs::read_to_string(&result_path).expect("result file");
    assert_eq!(archived, reference_json(&spec));

    // A repeated identical what-if is served from disk: no point events,
    // zero simulated events charged.
    let again = request(handle.addr(), &submit_line(&spec));
    assert_eq!(event_of(&again[0]), "ack");
    let done = again.last().expect("terminal line");
    assert_eq!(event_of(done), "done", "{again:#?}");
    assert_eq!(field_bool(done, "cached"), Some(true));
    assert_eq!(field_u64(done, "events_charged"), Some(0));
    assert!(!again.iter().any(|l| event_of(l) == "point"));
    let cached = std::fs::read_to_string(field_str(done, "result").expect("path")).expect("cache");
    assert_eq!(cached, reference_json(&spec));

    handle.drain();
}

#[test]
fn drain_checkpoints_and_restart_resumes_byte_identical() {
    let dir = state_dir("drain-resume");
    let mut cfg = ServerConfig::new(&dir);
    cfg.threads = 1;
    let handle = start(cfg.clone()).expect("daemon starts");
    let spec = small_spec(&[1, 2, 5]);
    let hash = spec.hash().expect("hash");

    // Request a drain the moment the first point lands: the in-flight
    // point finishes and checkpoints, the rest of the grid is abandoned.
    let lines = stream_request(handle.addr(), &submit_line(&spec), |line| {
        if event_of(line) == "point" {
            handle.request_drain();
        }
    });
    let last = lines.last().expect("terminal line");
    assert_eq!(event_of(last), "paused", "{lines:#?}");
    let drained_points = lines.iter().filter(|l| event_of(l) == "point").count();
    assert!(drained_points < 9, "drain must interrupt the sweep");
    handle.drain();

    // Restart on the same state: the journal re-enqueues the job and the
    // checkpoint manifest replays the drained points instead of
    // re-simulating them.
    let handle = start(cfg).expect("daemon restarts");
    let lines = request(
        handle.addr(),
        &format!("{{\"op\":\"watch\",\"hash\":\"{hash:016x}\"}}"),
    );
    let done = lines.last().expect("terminal line");
    assert_eq!(event_of(done), "done", "{lines:#?}");
    assert_eq!(field_bool(done, "fully_measured"), Some(true));
    assert!(
        lines
            .iter()
            .any(|l| event_of(l) == "point" && field_bool(l, "replayed") == Some(true)),
        "resume must replay checkpointed points: {lines:#?}"
    );
    let archived =
        std::fs::read_to_string(field_str(done, "result").expect("path")).expect("result file");
    assert_eq!(
        archived,
        reference_json(&spec),
        "resumed output must be byte-identical to an uninterrupted run"
    );
    handle.drain();
}

#[test]
fn spent_budget_punches_typed_holes_then_rejects() {
    let dir = state_dir("budget");
    let mut cfg = ServerConfig::new(&dir);
    cfg.threads = 1;
    cfg.client_events = Some(8192); // one charge block for the whole tenant
    cfg.retry = RetryPolicy::none(); // holes, not slow retry loops
    let handle = start(cfg).expect("daemon starts");
    let spec = small_spec(&[5]);
    let hash = spec.hash().expect("hash");

    let lines = request(handle.addr(), &submit_line(&spec));
    let done = lines.last().expect("terminal line");
    assert_eq!(event_of(done), "done", "{lines:#?}");
    assert_eq!(
        field_bool(done, "fully_measured"),
        Some(false),
        "budget exhaustion must degrade, not fully measure"
    );
    assert!(field_u64(done, "failures").expect("failures") > 0);
    // Untrustworthy results never become cache entries.
    assert!(!dir.join("cache").join(format!("{hash:016x}.json")).exists());

    // The tenant's pool is spent: further submissions are refused at the
    // door instead of queued for guaranteed failure.
    let again = request(handle.addr(), &submit_line(&spec));
    assert_eq!(event_of(&again[0]), "rejected", "{again:#?}");
    assert_eq!(field_str(&again[0], "reason").as_deref(), Some("budget"));

    // A different tenant has its own pool and is unaffected.
    let mut other = small_spec(&[5]);
    other.client = "fresh-tenant".to_string();
    let lines = request(handle.addr(), &submit_line(&other));
    assert_eq!(event_of(&lines[0]), "ack", "{lines:#?}");

    handle.drain();
}

#[test]
fn deep_queue_sheds_load_with_retry_hint() {
    let dir = state_dir("shed");
    let mut cfg = ServerConfig::new(&dir);
    cfg.max_queue = 0;
    let handle = start(cfg).expect("daemon starts");
    let lines = request(handle.addr(), &submit_line(&small_spec(&[5])));
    assert_eq!(event_of(&lines[0]), "rejected", "{lines:#?}");
    assert_eq!(field_str(&lines[0], "reason").as_deref(), Some("overload"));
    assert!(field_u64(&lines[0], "retry_after_ms").is_some());
    handle.drain();
}

#[test]
fn concurrent_identical_submissions_share_one_job() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dir = state_dir("dedupe");
    let mut cfg = ServerConfig::new(&dir);
    cfg.threads = 1;
    // Pause the scheduler so the first job is provably still active
    // (journaled, acked, not started) when the duplicate arrives —
    // without this the race is timing-dependent: a quick sweep can
    // finish inside the accept loop's poll interval on a fast build.
    let gate = Arc::new(AtomicBool::new(true));
    cfg.hold_jobs = Some(Arc::clone(&gate));
    let handle = start(cfg).expect("daemon starts");
    let spec = small_spec(&[1, 2, 5]);

    // First submission on its own connection; don't read it to completion
    // yet, so the job is still active when the duplicate arrives.
    let mut first = TcpStream::connect(handle.addr()).expect("connect");
    first
        .write_all(submit_line(&spec).as_bytes())
        .expect("send");
    first.write_all(b"\n").expect("send");
    let mut first_reader = BufReader::new(first);
    let mut ack = String::new();
    first_reader.read_line(&mut ack).expect("ack");
    assert_eq!(event_of(&ack), "ack");
    let first_job = field_u64(&ack, "job").expect("job id");

    // The duplicate joins the held job rather than creating a second one.
    let mut dup_conn = TcpStream::connect(handle.addr()).expect("connect");
    dup_conn
        .write_all(submit_line(&spec).as_bytes())
        .expect("send");
    dup_conn.write_all(b"\n").expect("send");
    let mut dup_reader = BufReader::new(dup_conn);
    let mut dup_ack = String::new();
    dup_reader.read_line(&mut dup_ack).expect("dup ack");
    assert_eq!(event_of(&dup_ack), "ack");
    assert_eq!(field_bool(&dup_ack, "deduped"), Some(true));
    assert_eq!(field_u64(&dup_ack, "job"), Some(first_job));

    // Release the scheduler; both connections see the same completion.
    gate.store(false, Ordering::SeqCst);
    let dup: Vec<String> = dup_reader.lines().map_while(Result::ok).collect();
    assert_eq!(event_of(dup.last().expect("terminal")), "done");
    let rest: Vec<String> = first_reader.lines().map_while(Result::ok).collect();
    assert_eq!(event_of(rest.last().expect("terminal")), "done");
    handle.drain();
}

#[test]
fn status_reports_the_job_table() {
    let dir = state_dir("status");
    let mut cfg = ServerConfig::new(&dir);
    cfg.threads = 1;
    let handle = start(cfg).expect("daemon starts");
    let spec = small_spec(&[5]);
    let lines = request(handle.addr(), &submit_line(&spec));
    assert_eq!(event_of(lines.last().expect("terminal")), "done");

    let status = request(handle.addr(), "{\"op\":\"status\"}");
    assert_eq!(status.len(), 1);
    let v = json::parse(&status[0]).expect("status json");
    let jobs = v.get("jobs").and_then(Value::as_arr).expect("jobs array");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(
        jobs[0].get("experiment").and_then(Value::as_str),
        Some("exp3")
    );
    assert_eq!(v.get("queued").and_then(Value::as_u64), Some(0));
    handle.drain();
}

#[test]
fn malformed_requests_get_typed_errors() {
    let dir = state_dir("errors");
    let handle = start(ServerConfig::new(&dir)).expect("daemon starts");
    for (req, needle) in [
        ("not json", "bad request"),
        ("{\"op\":\"frobnicate\"}", "op must be"),
        ("{\"op\":\"submit\"}", "needs a \\\"spec\\\""),
        (
            "{\"op\":\"submit\",\"spec\":{\"experiment\":\"nope\"}}",
            "unknown experiment",
        ),
        ("{\"op\":\"watch\",\"hash\":\"zz\"}", "hex"),
        ("{\"op\":\"watch\",\"hash\":\"00000000000000aa\"}", "no job"),
    ] {
        let lines = request(handle.addr(), req);
        assert_eq!(event_of(&lines[0]), "error", "{req} -> {lines:#?}");
        assert!(lines[0].contains(needle), "{req} -> {lines:#?}");
    }
    handle.drain();
}

/// The headline crash-safety claim, against the real binary: SIGKILL the
/// daemon mid-sweep (deterministically, via the chaos hook), restart it,
/// and the resumed job completes byte-identical to an uninterrupted run.
#[cfg(all(unix, feature = "chaos"))]
#[test]
fn kill_nine_mid_sweep_then_restart_resumes_byte_identical() {
    use std::process::{Child, Command, Stdio};

    fn spawn_daemon(dir: &std::path::Path, chaos: Option<&str>) -> (Child, SocketAddr) {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ccsim-serve"));
        cmd.args(["serve", "--state"])
            .arg(dir)
            .args(["--addr", "127.0.0.1:0", "--threads", "1"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .env_remove(ccsim_serve::CHAOS_ENV);
        if let Some(mode) = chaos {
            cmd.env(ccsim_serve::CHAOS_ENV, mode);
        }
        let mut child = cmd.spawn().expect("spawn daemon");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("stdout"))
            .read_line(&mut line)
            .expect("listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .expect("listening line")
            .parse()
            .expect("addr");
        (child, addr)
    }

    let dir = state_dir("kill9");
    let spec = small_spec(&[1, 2, 5]);
    let hash = spec.hash().expect("hash");

    // Daemon armed to abort (kill -9 semantics: no drain, no cleanup)
    // after two freshly simulated points.
    let (mut child, addr) = spawn_daemon(&dir, Some("die-after-points:2"));
    let lines = request(addr, &submit_line(&spec));
    assert_eq!(event_of(&lines[0]), "ack", "{lines:#?}");
    assert!(
        !lines.iter().any(|l| event_of(l) == "done"),
        "daemon must die before finishing: {lines:#?}"
    );
    let status = child.wait().expect("daemon exit");
    assert!(!status.success(), "daemon must have aborted");

    // Restart without chaos: the journaled job is re-enqueued, the
    // checkpoint manifest replays what survived, and the sweep finishes.
    let (mut child, addr) = spawn_daemon(&dir, None);
    let lines = request(
        addr,
        &format!("{{\"op\":\"watch\",\"hash\":\"{hash:016x}\"}}"),
    );
    let done = lines.last().expect("terminal line");
    assert_eq!(event_of(done), "done", "{lines:#?}");
    assert_eq!(field_bool(done, "fully_measured"), Some(true));
    assert!(
        lines
            .iter()
            .any(|l| event_of(l) == "point" && field_bool(l, "replayed") == Some(true)),
        "restart must replay the checkpointed points: {lines:#?}"
    );
    let archived =
        std::fs::read_to_string(field_str(done, "result").expect("path")).expect("result file");
    assert_eq!(
        archived,
        reference_json(&spec),
        "kill -9 -> restart -> resume must be byte-identical"
    );
    child.kill().expect("stop daemon");
    let _ = child.wait();
}
