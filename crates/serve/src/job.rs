//! Job specifications: what a client asks the daemon to sweep, in a
//! canonical form that hashes stably.
//!
//! Two submissions that describe the same measurement — same experiment,
//! grid, fidelity, seed, replications, audit flag — must collide on the
//! same [`JobSpec::hash`] no matter how they were phrased (field order,
//! defaulted vs. explicit grid), because that hash keys the result cache
//! and the checkpoint manifest. The client name is deliberately *not*
//! part of the hash: a result is a pure function of the configuration, so
//! tenants share the cache; the name only scopes budgets.

use std::fmt::Write as _;

use ccsim_experiments::json::{self, Value};
use ccsim_experiments::{catalog, ExperimentSpec, Fidelity, RunOptions};

/// One sweep request, as journaled and hashed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant name; scopes the event-pool budget, not the cache.
    pub client: String,
    /// Catalog experiment id (e.g. `exp3`).
    pub experiment: String,
    /// Sweep fidelity.
    pub fidelity: Fidelity,
    /// Base seed for the sweep.
    pub base_seed: u64,
    /// Replications per grid point.
    pub replications: u32,
    /// Attach the invariant auditor to every run.
    pub audit: bool,
    /// Multiprogramming levels; `None` uses the experiment's own grid.
    pub mpls: Option<Vec<u32>>,
}

impl JobSpec {
    /// A quick-fidelity spec with defaults for everything optional.
    #[must_use]
    pub fn quick(experiment: &str) -> JobSpec {
        JobSpec {
            client: "anon".to_string(),
            experiment: experiment.to_string(),
            fidelity: Fidelity::Quick,
            base_seed: RunOptions::default().base_seed,
            replications: 1,
            audit: false,
            mpls: None,
        }
    }

    /// Resolve against the experiment catalog into the spec/options pair
    /// the runner consumes (no event pool attached; the daemon adds the
    /// tenant's pool).
    ///
    /// # Errors
    /// Returns a description when the experiment id is unknown or the mpl
    /// override is empty.
    pub fn resolve(&self) -> Result<(ExperimentSpec, RunOptions), String> {
        let mut spec = catalog::by_id(&self.experiment)
            .ok_or_else(|| format!("unknown experiment {:?}", self.experiment))?;
        if let Some(mpls) = &self.mpls {
            if mpls.is_empty() {
                return Err("mpls override must not be empty".to_string());
            }
            spec.mpls.clone_from(mpls);
        }
        let opts = RunOptions {
            fidelity: self.fidelity,
            base_seed: self.base_seed,
            replications: self.replications.max(1),
            audit: self.audit,
            ..RunOptions::default()
        };
        Ok((spec, opts))
    }

    /// The canonical serialized form: fixed key order, grid always
    /// materialized from the catalog so a defaulted grid and an explicit
    /// identical one canonicalize the same. Excludes the client (see the
    /// module docs).
    ///
    /// # Errors
    /// Propagates [`JobSpec::resolve`] errors — an unresolvable spec has
    /// no canonical form.
    pub fn canonical(&self) -> Result<String, String> {
        let (spec, _) = self.resolve()?;
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"audit\":{},\"experiment\":", self.audit);
        json::escape(&self.experiment, &mut out);
        let _ = write!(
            out,
            ",\"fidelity\":\"{}\",\"mpls\":[",
            self.fidelity.token()
        );
        for (i, m) in spec.mpls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{m}");
        }
        let _ = write!(
            out,
            "],\"replications\":{},\"seed\":{}}}",
            self.replications.max(1),
            self.base_seed
        );
        Ok(out)
    }

    /// FNV-1a hash of the canonical form — the cache and manifest key.
    ///
    /// # Errors
    /// Propagates [`JobSpec::canonical`] errors.
    pub fn hash(&self) -> Result<u64, String> {
        Ok(fnv1a(self.canonical()?.as_bytes()))
    }

    /// Serialize for the job journal and the wire (includes the client).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"client\":");
        json::escape(&self.client, &mut out);
        out.push_str(",\"experiment\":");
        json::escape(&self.experiment, &mut out);
        let _ = write!(
            out,
            ",\"fidelity\":\"{}\",\"seed\":{},\"replications\":{},\"audit\":{}",
            self.fidelity.token(),
            self.base_seed,
            self.replications,
            self.audit
        );
        if let Some(mpls) = &self.mpls {
            out.push_str(",\"mpls\":[");
            for (i, m) in mpls.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{m}");
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Parse a spec from a wire/journal JSON object. Unknown fields are
    /// ignored; only `experiment` is required.
    ///
    /// # Errors
    /// Returns a description of the missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let experiment = v
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("spec needs an \"experiment\" id")?
            .to_string();
        let mut spec = JobSpec::quick(&experiment);
        if let Some(c) = v.get("client") {
            spec.client = c.as_str().ok_or("client must be a string")?.to_string();
        }
        if let Some(f) = v.get("fidelity") {
            spec.fidelity = match f.as_str() {
                Some("quick") => Fidelity::Quick,
                Some("paper") => Fidelity::Paper,
                _ => return Err("fidelity must be \"quick\" or \"paper\"".to_string()),
            };
        }
        if let Some(s) = v.get("seed") {
            spec.base_seed = s.as_u64().ok_or("seed must be a u64")?;
        }
        if let Some(r) = v.get("replications") {
            spec.replications = u32::try_from(r.as_u64().ok_or("replications must be a u32")?)
                .map_err(|e| e.to_string())?;
        }
        if let Some(a) = v.get("audit") {
            spec.audit = a.as_bool().ok_or("audit must be a bool")?;
        }
        if let Some(m) = v.get("mpls") {
            let arr = m.as_arr().ok_or("mpls must be an array")?;
            let mut mpls = Vec::with_capacity(arr.len());
            for x in arr {
                mpls.push(
                    u32::try_from(x.as_u64().ok_or("mpl must be a u32")?)
                        .map_err(|e| e.to_string())?,
                );
            }
            spec.mpls = Some(mpls);
        }
        Ok(spec)
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a persistent cache key needs (this is not a defense
/// against adversarial collisions; the cache validates by re-parsing).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaulted_grid_hashes_like_the_explicit_identical_grid() {
        let defaulted = JobSpec::quick("exp3");
        let explicit = JobSpec {
            mpls: Some(catalog::by_id("exp3").unwrap().mpls),
            ..JobSpec::quick("exp3")
        };
        assert_eq!(defaulted.hash().unwrap(), explicit.hash().unwrap());
        assert_eq!(
            defaulted.canonical().unwrap(),
            explicit.canonical().unwrap()
        );
    }

    #[test]
    fn hash_tracks_every_measurement_field_but_not_the_client() {
        let base = JobSpec {
            mpls: Some(vec![5, 25]),
            ..JobSpec::quick("exp3")
        };
        let h = base.hash().unwrap();
        let mut other = base.clone();
        other.client = "someone-else".to_string();
        assert_eq!(other.hash().unwrap(), h, "client must not affect the hash");
        for f in [
            &mut |s: &mut JobSpec| s.base_seed += 1,
            &mut |s: &mut JobSpec| s.replications = 2,
            &mut |s: &mut JobSpec| s.audit = true,
            &mut |s: &mut JobSpec| s.fidelity = Fidelity::Paper,
            &mut |s: &mut JobSpec| s.mpls = Some(vec![5]),
        ] as [&mut dyn FnMut(&mut JobSpec); 5]
        {
            let mut changed = base.clone();
            f(&mut changed);
            assert_ne!(changed.hash().unwrap(), h, "{changed:?} should differ");
        }
    }

    #[test]
    fn wire_round_trip_preserves_the_spec() {
        let spec = JobSpec {
            client: "ci \"bot\"".to_string(),
            experiment: "exp3".to_string(),
            fidelity: Fidelity::Paper,
            base_seed: 77,
            replications: 3,
            audit: true,
            mpls: Some(vec![10, 50]),
        };
        let v = json::parse(&spec.to_json()).expect("parses");
        assert_eq!(JobSpec::from_value(&v).expect("valid"), spec);
        // Defaults apply when fields are absent.
        let v = json::parse("{\"experiment\":\"exp3\"}").expect("parses");
        assert_eq!(
            JobSpec::from_value(&v).expect("valid"),
            JobSpec::quick("exp3")
        );
    }

    #[test]
    fn bogus_specs_are_rejected() {
        assert!(JobSpec::quick("nope").resolve().is_err());
        assert!(JobSpec::quick("nope").hash().is_err());
        let empty = JobSpec {
            mpls: Some(vec![]),
            ..JobSpec::quick("exp3")
        };
        assert!(empty.resolve().is_err());
        let v = json::parse("{\"client\":\"x\"}").expect("parses");
        assert!(JobSpec::from_value(&v).is_err(), "experiment is required");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
