//! Daemon-level fault injection, compiled only with the `chaos` feature
//! and armed only when `CCSIM_SERVE_CHAOS` is set. Production builds
//! compile every hook to an empty inline stub.
//!
//! Modes (the env var holds exactly one):
//!
//! - `die-after-points:N` — abort the whole process after `N` freshly
//!   simulated points have been streamed. The deterministic `kill -9
//!   mid-sweep` used by the resume tests and the `serve-chaos` CI job.
//! - `truncate-journal` — on the next job-journal persist, write the
//!   first half of the snapshot *directly* (bypassing temp-then-rename)
//!   and abort: a torn journal tail for the recovery path to discard.
//! - `torn-cache-write` — likewise for the next result-cache store: a
//!   half-written cache entry the validating read must evict.

#![allow(dead_code)]

#[cfg(feature = "chaos")]
use std::path::Path;
#[cfg(feature = "chaos")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable naming the armed fault.
pub const ENV: &str = "CCSIM_SERVE_CHAOS";

#[cfg(feature = "chaos")]
fn mode() -> Option<String> {
    std::env::var(ENV).ok().filter(|s| !s.is_empty())
}

/// `die-after-points:N` budget: how many fresh points may stream before
/// the process aborts. `None` when unarmed.
#[cfg(feature = "chaos")]
#[must_use]
pub fn die_after_points() -> Option<u64> {
    let m = mode()?;
    let n = m.strip_prefix("die-after-points:")?;
    n.parse().ok()
}

/// See [`die_after_points`] (chaos feature disabled: always unarmed).
#[cfg(not(feature = "chaos"))]
#[must_use]
#[inline]
pub fn die_after_points() -> Option<u64> {
    None
}

/// Count a freshly simulated point against the `die-after-points`
/// budget, aborting the process when it is spent.
#[cfg(feature = "chaos")]
pub fn count_point(counter: &AtomicU64, budget: u64) {
    let seen = counter.fetch_add(1, Ordering::SeqCst) + 1;
    if seen >= budget {
        eprintln!("chaos: aborting after {seen} streamed points");
        std::process::abort();
    }
}

/// If `truncate-journal` is armed, tear the journal write in half and
/// abort. Called just before the atomic persist.
#[cfg(feature = "chaos")]
pub fn maybe_tear_journal(path: &Path, contents: &str) {
    if mode().as_deref() == Some("truncate-journal") {
        let _ = std::fs::write(path, &contents.as_bytes()[..contents.len() / 2]);
        eprintln!("chaos: tore journal write at {}", path.display());
        std::process::abort();
    }
}

/// See [`maybe_tear_journal`] (chaos feature disabled: no-op).
#[cfg(not(feature = "chaos"))]
#[inline]
pub fn maybe_tear_journal(_path: &std::path::Path, _contents: &str) {}

/// If `torn-cache-write` is armed, tear the cache store in half and
/// abort. Called just before the atomic persist.
#[cfg(feature = "chaos")]
pub fn maybe_tear_cache_write(path: &Path, contents: &str) {
    if mode().as_deref() == Some("torn-cache-write") {
        let _ = std::fs::write(path, &contents.as_bytes()[..contents.len() / 2]);
        eprintln!("chaos: tore cache write at {}", path.display());
        std::process::abort();
    }
}

/// See [`maybe_tear_cache_write`] (chaos feature disabled: no-op).
#[cfg(not(feature = "chaos"))]
#[inline]
pub fn maybe_tear_cache_write(_path: &std::path::Path, _contents: &str) {}
