//! `ccsim-serve` — the sweep-as-a-service daemon and its client modes.
//!
//! ```text
//! ccsim-serve serve  --state DIR [--addr HOST:PORT] [--threads N]
//!                    [--max-queue N] [--client-events N] [--retries N]
//! ccsim-serve submit --addr HOST:PORT --experiment ID [--client NAME]
//!                    [--quick] [--seed N] [--replications N] [--audit]
//!                    [--mpls A,B,C]
//! ccsim-serve watch  --addr HOST:PORT --hash HEX
//! ccsim-serve status --addr HOST:PORT
//! ```
//!
//! `serve` prints `listening on ADDR` once bound (useful with port 0),
//! runs until SIGTERM/SIGINT, then drains: in-flight grid points finish
//! and are checkpointed, watchers get `paused`, and a restart with the
//! same `--state` resumes every unfinished job to byte-identical output.
//!
//! The client modes speak the daemon's line-delimited JSON protocol and
//! relay each event line to stdout. `submit` exits 0 on `done`, 3 on
//! `rejected` (retryable), 4 on `paused` (re-`watch` after the daemon
//! restarts), 1 on `error`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use ccsim_experiments::RetryPolicy;
use ccsim_serve::{start, JobSpec, ServerConfig};

mod shutdown {
    use std::sync::atomic::AtomicBool;

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    pub fn install() {
        use std::sync::atomic::Ordering;
        extern "C" fn on_signal(_sig: i32) {
            REQUESTED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: ccsim-serve <serve|submit|watch|status> [flags]  (--help for details)");
        return ExitCode::from(2);
    }
    let mode = args.remove(0);
    let run = match mode.as_str() {
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "watch" => cmd_watch(&args),
        "status" => cmd_status(&args),
        "--help" | "-h" | "help" => {
            println!("{}", HELP.trim());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown mode {other:?} (--help for usage)")),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ccsim-serve: {e}");
            ExitCode::from(2)
        }
    }
}

const HELP: &str = r#"
ccsim-serve — sweep-as-a-service daemon for the ccsim reproduction

  serve  --state DIR [--addr HOST:PORT] [--threads N] [--max-queue N]
         [--client-events N] [--retries N]
         Run the daemon. Prints "listening on ADDR" once bound; SIGTERM
         or SIGINT drains (checkpoints in-flight points) and exits.

  submit --addr HOST:PORT --experiment ID [--client NAME] [--quick]
         [--seed N] [--replications N] [--audit] [--mpls A,B,C]
         Submit a sweep and stream its events until done.

  watch  --addr HOST:PORT --hash HEX
         Re-attach to a job's event stream by config hash.

  status --addr HOST:PORT
         Print the job table.
"#;

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut state: Option<PathBuf> = None;
    let mut cfg_addr: Option<String> = None;
    let mut threads = 0usize;
    let mut max_queue = 16usize;
    let mut client_events = None;
    let mut retries = 3u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--state" => state = Some(PathBuf::from(take_value(args, &mut i, "--state")?)),
            "--addr" => cfg_addr = Some(take_value(args, &mut i, "--addr")?),
            "--threads" => {
                threads = take_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--max-queue" => {
                max_queue = take_value(args, &mut i, "--max-queue")?
                    .parse()
                    .map_err(|e| format!("bad --max-queue: {e}"))?;
            }
            "--client-events" => {
                client_events = Some(
                    take_value(args, &mut i, "--client-events")?
                        .parse()
                        .map_err(|e| format!("bad --client-events: {e}"))?,
                );
            }
            "--retries" => {
                retries = take_value(args, &mut i, "--retries")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?;
                if retries == 0 {
                    return Err("--retries must be at least 1".to_string());
                }
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
        i += 1;
    }
    let state = state.ok_or("serve needs --state DIR")?;
    let mut cfg = ServerConfig::new(&state);
    if let Some(addr) = cfg_addr {
        cfg.addr = addr;
    }
    cfg.threads = threads;
    cfg.max_queue = max_queue;
    cfg.client_events = client_events;
    cfg.retry = RetryPolicy::retries(retries);

    shutdown::install();
    let handle = start(cfg)?;
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    while !shutdown::REQUESTED.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("ccsim-serve: draining (in-flight points will be checkpointed)");
    handle.drain();
    eprintln!("ccsim-serve: drained; restart with the same --state to resume");
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut experiment = None;
    let mut spec_overrides: Vec<(&str, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--experiment" => experiment = Some(take_value(args, &mut i, "--experiment")?),
            "--client" => spec_overrides.push(("client", take_value(args, &mut i, "--client")?)),
            "--quick" => spec_overrides.push(("fidelity", "quick".to_string())),
            "--paper" => spec_overrides.push(("fidelity", "paper".to_string())),
            "--seed" => spec_overrides.push(("seed", take_value(args, &mut i, "--seed")?)),
            "--replications" => {
                spec_overrides.push(("replications", take_value(args, &mut i, "--replications")?));
            }
            "--audit" => spec_overrides.push(("audit", "true".to_string())),
            "--mpls" => spec_overrides.push(("mpls", take_value(args, &mut i, "--mpls")?)),
            other => return Err(format!("unknown submit flag {other:?}")),
        }
        i += 1;
    }
    let addr = addr.ok_or("submit needs --addr HOST:PORT")?;
    let experiment = experiment.ok_or("submit needs --experiment ID")?;
    let mut spec = JobSpec::quick(&experiment);
    spec.fidelity = ccsim_experiments::Fidelity::Quick;
    for (key, value) in spec_overrides {
        match key {
            "client" => spec.client = value,
            "fidelity" => {
                spec.fidelity = if value == "paper" {
                    ccsim_experiments::Fidelity::Paper
                } else {
                    ccsim_experiments::Fidelity::Quick
                };
            }
            "seed" => spec.base_seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "replications" => {
                spec.replications = value
                    .parse()
                    .map_err(|e| format!("bad --replications: {e}"))?;
            }
            "audit" => spec.audit = true,
            "mpls" => {
                let mut mpls = Vec::new();
                for part in value.split(',') {
                    mpls.push(
                        part.trim()
                            .parse()
                            .map_err(|e| format!("bad --mpls: {e}"))?,
                    );
                }
                spec.mpls = Some(mpls);
            }
            _ => unreachable!(),
        }
    }
    let request = format!("{{\"op\":\"submit\",\"spec\":{}}}", spec.to_json());
    relay(&addr, &request)
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut hash = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--hash" => hash = Some(take_value(args, &mut i, "--hash")?),
            other => return Err(format!("unknown watch flag {other:?}")),
        }
        i += 1;
    }
    let addr = addr.ok_or("watch needs --addr HOST:PORT")?;
    let hash = hash.ok_or("watch needs --hash HEX")?;
    relay(&addr, &format!("{{\"op\":\"watch\",\"hash\":\"{hash}\"}}"))
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            other => return Err(format!("unknown status flag {other:?}")),
        }
        i += 1;
    }
    let addr = addr.ok_or("status needs --addr HOST:PORT")?;
    relay(&addr, "{\"op\":\"status\"}")
}

/// Send one request line, relay every response line to stdout, and map
/// the terminal event to an exit code.
fn relay(addr: &str, request: &str) -> Result<ExitCode, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut code = ExitCode::SUCCESS;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("connection lost: {e}"))?;
        println!("{line}");
        if line.starts_with("{\"event\":\"error\"") {
            code = ExitCode::from(1);
        } else if line.starts_with("{\"event\":\"rejected\"") {
            code = ExitCode::from(3);
        } else if line.starts_with("{\"event\":\"paused\"") {
            code = ExitCode::from(4);
        }
    }
    Ok(code)
}
