//! `ccsim-serve` — sweep-as-a-service over the reproduction harness.
//!
//! A capacity-planning study is a pile of what-if sweeps: vary mpl,
//! resources, algorithm; re-ask last week's question with one parameter
//! changed. This crate turns the resilient supervised runner in
//! `ccsim-experiments` into a long-running, multi-tenant daemon for
//! exactly that traffic:
//!
//! - **Protocol** — line-delimited JSON over plain TCP (no external
//!   deps; the same hand-rolled `json` module that archives results
//!   parses the wire). One request per connection: `submit` streams
//!   `ack`, per-point `point` events, and a terminal `done` / `paused` /
//!   `error`; `watch` re-attaches to a job by hash; `status` lists the
//!   queue.
//! - **Durability** — jobs are journaled atomically *before* the ack
//!   ([`journal`]), every grid point lands in a checkpoint manifest as
//!   it completes, and restart-after-`kill -9` resumes every unfinished
//!   job to byte-identical output.
//! - **Graceful degradation** — per-client [`ccsim_core::EventPool`]
//!   budgets, queue-depth load shedding with a retry-after hint, and a
//!   drain path (SIGTERM) that checkpoints in-flight points before exit.
//! - **Economy** — a result cache ([`cache`]) keyed by the canonical
//!   config hash ([`job`]): a repeated what-if costs zero simulated
//!   events.
//!
//! See `EXPERIMENTS.md` § "Sweep service" for the protocol reference.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
mod chaos;
pub mod job;
pub mod journal;
pub mod server;

pub use cache::ResultCache;
pub use job::JobSpec;
pub use journal::{JobJournal, JobRecord, JobState};
pub use server::{start, ServerConfig, ServerHandle};

/// Re-exported name of the chaos env var (always defined; the hooks it
/// arms are compiled only with the `chaos` feature).
pub use chaos::ENV as CHAOS_ENV;
