//! The result cache: finished, fully-measured, audit-clean sweep results
//! keyed by the canonical config hash.
//!
//! A cache hit means a repeated what-if costs zero simulated events — the
//! daemon streams the archived JSON straight back. Only *trustworthy*
//! results are admitted (no holes, no degraded fills, no audit failures,
//! not interrupted); anything less is written to the results directory
//! but never served as a hit, so a tenant whose budget punched holes in a
//! sweep does not poison the answer for everyone else.
//!
//! Reads validate: a file that no longer parses as JSON (torn write,
//! disk corruption) is deleted and treated as a miss, so the worst case
//! is re-simulation, never a corrupt answer.

use std::path::{Path, PathBuf};

use ccsim_experiments::json;
use ccsim_experiments::write_atomic;

/// On-disk result cache, one `<hash>.json` per entry.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating) the cache directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The path an entry for `hash` lives at (whether or not it exists).
    #[must_use]
    pub fn path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Fetch a cached result, validating it parses. A corrupt entry is
    /// removed and reported as a miss.
    #[must_use]
    pub fn get(&self, hash: u64) -> Option<String> {
        let path = self.path(hash);
        let text = std::fs::read_to_string(&path).ok()?;
        if json::parse(&text).is_ok() {
            Some(text)
        } else {
            // Torn or corrupted entry: evict so the job re-simulates.
            let _ = std::fs::remove_file(&path);
            None
        }
    }

    /// Store a result atomically.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn put(&self, hash: u64, json_text: &str) -> std::io::Result<()> {
        let path = self.path(hash);
        crate::chaos::maybe_tear_cache_write(&path, json_text);
        write_atomic(&path, json_text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim-serve-cache-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_get_round_trips() {
        let cache = ResultCache::open(&tmp("roundtrip")).unwrap();
        assert!(cache.get(7).is_none());
        cache.put(7, "{\"a\":1}").unwrap();
        assert_eq!(cache.get(7).as_deref(), Some("{\"a\":1}"));
    }

    #[test]
    fn corrupt_entries_are_evicted_not_served() {
        let cache = ResultCache::open(&tmp("corrupt")).unwrap();
        cache.put(9, "{\"a\":1}").unwrap();
        std::fs::write(cache.path(9), "{\"a\":1").unwrap();
        assert!(cache.get(9).is_none(), "torn entry must miss");
        assert!(!cache.path(9).exists(), "torn entry must be evicted");
    }
}
