//! The daemon: a `TcpListener` accept loop, a serial scheduler over the
//! supervised runner, and the durable state that ties them together.
//!
//! # Lifecycle of a job
//!
//! ```text
//! submit ──journal (atomic, BEFORE ack)──► queued ──► running ──► done
//!                                             ▲           │
//!                                             └──restart──┘  (crash / drain:
//!                                                             checkpoint manifest
//!                                                             makes the re-run a
//!                                                             byte-identical resume)
//! ```
//!
//! Durability is the invariant everything else hangs off: a job is only
//! acknowledged after its record is on disk, every completed grid point
//! is journaled to the job's checkpoint manifest by the supervised
//! runner, and the scheduler always opens manifests with `resume: true` —
//! so a `kill -9` at any instant costs at most the points in flight, and
//! the restarted job's output is byte-identical to an uninterrupted run
//! (seeds derive from grid coordinates, never from wall time or attempt
//! number).
//!
//! Graceful degradation has three levels: per-client [`EventPool`]s bound
//! a tenant's total simulated work (exhaustion punches typed `Budget`
//! holes, it never wedges the daemon); submissions beyond `max_queue` are
//! shed with a `retry_after_ms` hint instead of growing the queue
//! unboundedly; and SIGTERM/`drain` stops the accept loop, lets in-flight
//! points finish and journal, emits `paused` to watchers, and exits —
//! restart picks every non-done job back up.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ccsim_core::EventPool;
use ccsim_experiments::json::{self, Value};
use ccsim_experiments::{
    run_experiment_supervised, write_atomic, PointProgress, RetryPolicy, SweepControl,
};

use crate::cache::ResultCache;
use crate::job::JobSpec;
use crate::journal::{JobJournal, JobState};

/// Poll granularity for the accept loop, socket reads, and the scheduler
/// idle wait — the latency bound on noticing a shutdown request.
const POLL: Duration = Duration::from_millis(50);

/// How the daemon is set up. `ServerConfig::new` picks conservative
/// defaults; the binary maps CLI flags onto the fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Root of the durable state: `jobs.jsonl`, `manifests/`, `results/`,
    /// `cache/`.
    pub state_dir: PathBuf,
    /// Worker threads per sweep (0 = one per core).
    pub threads: usize,
    /// Load-shedding threshold: submissions arriving while this many jobs
    /// are queued are rejected with a `retry_after_ms` hint.
    pub max_queue: usize,
    /// Per-client event allowance (`None` = effectively unlimited; a
    /// metering pool is attached either way so `events_charged` is exact).
    pub client_events: Option<u64>,
    /// Retry discipline applied to every job's grid points.
    pub retry: RetryPolicy,
    /// While this flag is `true` the scheduler accepts, journals, and
    /// acks jobs but does not start them — a pause switch for operators
    /// and the deterministic hook the dedupe tests use to keep a job
    /// active while a duplicate arrives. `None` (the default) never
    /// pauses.
    pub hold_jobs: Option<Arc<AtomicBool>>,
}

impl ServerConfig {
    /// Defaults: ephemeral localhost port, 16-deep queue, unlimited
    /// client budgets, three full-fidelity attempts per point.
    #[must_use]
    pub fn new(state_dir: &Path) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: state_dir.to_path_buf(),
            threads: 0,
            max_queue: 16,
            client_events: None,
            retry: RetryPolicy::retries(3),
            hold_jobs: None,
        }
    }
}

/// Metering pool size when no per-client limit is configured: large
/// enough to never exhaust, small enough to never overflow on refund.
const UNLIMITED_EVENTS: u64 = u64::MAX / 4;

/// Per-job fan-out state: every event line broadcast so far (so a late
/// subscriber replays the full history in order) plus live subscribers.
#[derive(Default)]
struct JobRuntime {
    /// `(line, terminal)` — terminal lines (`done` / `paused` / `error`)
    /// end a watching connection.
    lines: Vec<(String, bool)>,
    /// A terminal line has been broadcast.
    settled: bool,
    subscribers: Vec<mpsc::Sender<(String, bool)>>,
}

struct Inner {
    cfg: ServerConfig,
    journal: Mutex<JobJournal>,
    runtimes: Mutex<HashMap<u64, JobRuntime>>,
    pools: Mutex<HashMap<String, EventPool>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    cache: ResultCache,
    results_dir: PathBuf,
    manifests_dir: PathBuf,
}

impl Inner {
    fn broadcast(&self, id: u64, line: String, terminal: bool) {
        let mut rts = self.runtimes.lock().unwrap();
        let rt = rts.entry(id).or_default();
        rt.subscribers
            .retain(|s| s.send((line.clone(), terminal)).is_ok());
        if terminal {
            rt.settled = true;
            rt.subscribers.clear();
        }
        rt.lines.push((line, terminal));
    }

    /// Attach a subscriber: replays history, then streams. The channel
    /// closes after a terminal line.
    fn subscribe(&self, id: u64) -> mpsc::Receiver<(String, bool)> {
        let (tx, rx) = mpsc::channel();
        let mut rts = self.runtimes.lock().unwrap();
        let rt = rts.entry(id).or_default();
        for item in &rt.lines {
            let _ = tx.send(item.clone());
        }
        if !rt.settled {
            rt.subscribers.push(tx);
        }
        rx
    }

    fn pool_for(&self, client: &str) -> EventPool {
        let size = self.cfg.client_events.unwrap_or(UNLIMITED_EVENTS);
        self.pools
            .lock()
            .unwrap()
            .entry(client.to_string())
            .or_insert_with(|| EventPool::new(size))
            .clone()
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`ServerHandle::drain`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait: the accept loop stops, the in-flight
    /// sweep checkpoints its current points and reports `paused`, and all
    /// daemon threads join. Durable state is left ready for a restart.
    pub fn drain(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// True once a shutdown has been requested (e.g. by a signal handler
    /// sharing the flag through [`ServerHandle::shutdown_flag`]).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from another thread/handler without consuming the
    /// handle.
    pub fn request_drain(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }
}

/// Start the daemon: recover the journal (re-enqueueing every non-done
/// job), bind the listener, and spawn the accept + scheduler threads.
///
/// # Errors
/// Returns a description when the state directory, journal, or listener
/// cannot be set up. Journal recovery warnings go to stderr; they never
/// block startup.
pub fn start(cfg: ServerConfig) -> Result<ServerHandle, String> {
    let manifests_dir = cfg.state_dir.join("manifests");
    let results_dir = cfg.state_dir.join("results");
    for d in [&cfg.state_dir, &manifests_dir, &results_dir] {
        std::fs::create_dir_all(d).map_err(|e| format!("cannot create {}: {e}", d.display()))?;
    }
    let cache = ResultCache::open(&cfg.state_dir.join("cache"))
        .map_err(|e| format!("cannot open result cache: {e}"))?;
    let journal = JobJournal::open(&cfg.state_dir.join("jobs.jsonl"))?;
    for w in journal.warnings() {
        eprintln!("ccsim-serve: warning: {w}");
    }
    let recovered: VecDeque<u64> = journal
        .records()
        .iter()
        .filter(|r| r.state != JobState::Done)
        .map(|r| r.id)
        .collect();
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set listener nonblocking: {e}"))?;

    let inner = Arc::new(Inner {
        cfg,
        journal: Mutex::new(journal),
        runtimes: Mutex::new(HashMap::new()),
        pools: Mutex::new(HashMap::new()),
        queue: Mutex::new(recovered),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        cache,
        results_dir,
        manifests_dir,
    });

    let accept_inner = Arc::clone(&inner);
    let accept = std::thread::spawn(move || accept_loop(&accept_inner, &listener));
    let sched_inner = Arc::clone(&inner);
    let sched = std::thread::spawn(move || scheduler(&sched_inner));

    Ok(ServerHandle {
        addr,
        inner,
        threads: vec![accept, sched],
    })
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                std::thread::spawn(move || handle_conn(&conn_inner, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Read one request line, tolerating read timeouts so a shutdown is
/// noticed even while a client dawdles.
fn read_request(inner: &Inner, reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return None,
            Ok(_) => return Some(line),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn error_line(detail: &str) -> String {
    let mut out = String::from("{\"event\":\"error\",\"detail\":");
    json::escape(detail, &mut out);
    out.push('}');
    out
}

fn handle_conn(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let Some(line) = read_request(inner, &mut reader) else {
        return;
    };
    let req = match json::parse(&line) {
        Ok(v) => v,
        Err(e) => {
            send_line(&mut writer, &error_line(&format!("bad request: {e}")));
            return;
        }
    };
    match req.get("op").and_then(Value::as_str) {
        Some("submit") => handle_submit(inner, &mut writer, &req),
        Some("watch") => handle_watch(inner, &mut writer, &req),
        Some("status") => {
            let line = status_line(inner);
            send_line(&mut writer, &line);
        }
        _ => {
            send_line(
                &mut writer,
                &error_line("op must be \"submit\", \"watch\", or \"status\""),
            );
        }
    }
}

fn handle_submit(inner: &Arc<Inner>, writer: &mut TcpStream, req: &Value) {
    if inner.shutdown.load(Ordering::SeqCst) {
        send_line(
            writer,
            "{\"event\":\"rejected\",\"reason\":\"draining\",\"retry_after_ms\":1000}",
        );
        return;
    }
    let spec = match req.get("spec").ok_or("submit needs a \"spec\" object") {
        Ok(v) => match JobSpec::from_value(v) {
            Ok(s) => s,
            Err(e) => {
                send_line(writer, &error_line(&e));
                return;
            }
        },
        Err(e) => {
            send_line(writer, &error_line(e));
            return;
        }
    };
    let hash = match spec.hash() {
        Ok(h) => h,
        Err(e) => {
            send_line(writer, &error_line(&e));
            return;
        }
    };
    // Budget check: a tenant whose pool is spent is refused outright
    // rather than queued for guaranteed holes.
    if inner.pool_for(&spec.client).depleted() {
        send_line(writer, "{\"event\":\"rejected\",\"reason\":\"budget\"}");
        return;
    }
    // Dedupe + shed + journal under one journal lock so two identical
    // concurrent submissions cannot both append.
    let (id, fresh) = {
        let mut journal = inner.journal.lock().unwrap();
        if let Some(active) = journal.find_active(hash) {
            (active.id, false)
        } else {
            let depth = journal.queued_depth();
            if depth >= inner.cfg.max_queue {
                // Deterministic hint proportional to the backlog.
                let line = format!(
                    "{{\"event\":\"rejected\",\"reason\":\"overload\",\"retry_after_ms\":{}}}",
                    (depth as u64) * 250
                );
                drop(journal);
                send_line(writer, &line);
                return;
            }
            // Durability before ack: if this append fails, the client
            // gets an error, not a promise we might forget.
            match journal.append(spec, hash) {
                Ok(id) => (id, true),
                Err(e) => {
                    drop(journal);
                    send_line(writer, &error_line(&e));
                    return;
                }
            }
        }
    };
    if fresh {
        inner.queue.lock().unwrap().push_back(id);
        inner.queue_cv.notify_one();
    }
    let ack = format!(
        "{{\"event\":\"ack\",\"job\":{id},\"hash\":\"{hash:016x}\",\"deduped\":{}}}",
        !fresh
    );
    if !send_line(writer, &ack) {
        return;
    }
    stream_job(inner, writer, id);
}

fn handle_watch(inner: &Arc<Inner>, writer: &mut TcpStream, req: &Value) {
    let Some(hash) = req
        .get("hash")
        .and_then(Value::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
    else {
        send_line(writer, &error_line("watch needs a hex \"hash\""));
        return;
    };
    let rec = {
        let journal = inner.journal.lock().unwrap();
        journal
            .records()
            .iter()
            .rev()
            .find(|r| r.hash == hash)
            .cloned()
    };
    let Some(rec) = rec else {
        send_line(writer, &error_line("no job with that hash"));
        return;
    };
    // A job finished in an earlier daemon life has no runtime; synthesize
    // its terminal line from the durable result.
    let has_runtime = inner.runtimes.lock().unwrap().contains_key(&rec.id);
    if rec.state == JobState::Done && !has_runtime {
        let line = done_line(inner, hash, true, 0, 0, true);
        send_line(writer, &line);
        return;
    }
    stream_job(inner, writer, rec.id);
}

/// Relay a job's event stream until a terminal line, the client hangs
/// up, or (bounded by the poll interval) nothing more will ever come.
fn stream_job(inner: &Inner, writer: &mut TcpStream, id: u64) {
    let rx = inner.subscribe(id);
    loop {
        match rx.recv_timeout(POLL) {
            Ok((line, terminal)) => {
                if !send_line(writer, &line) || terminal {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn status_line(inner: &Inner) -> String {
    let journal = inner.journal.lock().unwrap();
    let mut out = String::from("{\"event\":\"status\",\"jobs\":[");
    for (i, r) in journal.records().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let state = match r.state {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        };
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "{{\"job\":{},\"hash\":\"{:016x}\",\"state\":\"{state}\",\"client\":",
                r.id, r.hash
            ),
        );
        json::escape(&r.spec.client, &mut out);
        out.push_str(",\"experiment\":");
        json::escape(&r.spec.experiment, &mut out);
        out.push('}');
    }
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("],\"queued\":{}}}", journal.queued_depth()),
    );
    out
}

fn done_line(
    inner: &Inner,
    hash: u64,
    cached: bool,
    events_charged: u64,
    failures: usize,
    fully_measured: bool,
) -> String {
    let result = if cached && inner.cache.path(hash).exists() {
        inner.cache.path(hash)
    } else {
        inner.results_dir.join(format!("{hash:016x}.json"))
    };
    let mut out = format!(
        "{{\"event\":\"done\",\"hash\":\"{hash:016x}\",\"cached\":{cached},\
         \"events_charged\":{events_charged},\"failures\":{failures},\
         \"fully_measured\":{fully_measured},\"result\":"
    );
    json::escape(&result.display().to_string(), &mut out);
    out.push('}');
    out
}

fn scheduler(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let held = inner
                    .cfg
                    .hold_jobs
                    .as_ref()
                    .is_some_and(|g| g.load(Ordering::SeqCst));
                if !held {
                    if let Some(id) = queue.pop_front() {
                        break id;
                    }
                }
                let (q, _) = inner.queue_cv.wait_timeout(queue, POLL).unwrap();
                queue = q;
            }
        };
        run_job(inner, id);
    }
}

fn run_job(inner: &Arc<Inner>, id: u64) {
    let rec = { inner.journal.lock().unwrap().get(id).cloned() };
    let Some(rec) = rec else { return };
    if rec.state == JobState::Done {
        return;
    }
    if let Err(e) = inner
        .journal
        .lock()
        .unwrap()
        .set_state(id, JobState::Running)
    {
        inner.broadcast(id, error_line(&e), true);
        return;
    }
    let hash = rec.hash;
    // A repeated what-if is served from disk for free.
    if inner.cache.get(hash).is_some() {
        let line = done_line(inner, hash, true, 0, 0, true);
        finish(inner, id, line);
        return;
    }
    let (spec, mut opts) = match rec.spec.resolve() {
        Ok(x) => x,
        Err(e) => {
            finish(inner, id, error_line(&e));
            return;
        }
    };
    opts.threads = inner.cfg.threads;
    opts.retry = inner.cfg.retry;
    let pool = inner.pool_for(&rec.spec.client);
    let consumed_before = pool.consumed();
    opts.event_pool = Some(pool.clone());

    let hex = format!("{hash:016x}");
    let manifest_path = inner.manifests_dir.join(format!("{hex}.manifest.jsonl"));
    #[cfg(feature = "chaos")]
    let chaos_budget = crate::chaos::die_after_points();
    #[cfg(feature = "chaos")]
    let fresh_points = std::sync::atomic::AtomicU64::new(0);
    let progress = |p: PointProgress<'_>| {
        let line = format!(
            "{{\"event\":\"point\",\"hash\":\"{hex}\",\"series\":{},\"mpl\":{},\"rep\":{},\
             \"replayed\":{},\"ok\":{}}}",
            p.series_ix,
            p.mpl,
            p.rep,
            p.replayed,
            p.report.is_some()
        );
        inner.broadcast(id, line, false);
        #[cfg(feature = "chaos")]
        if let Some(budget) = chaos_budget {
            if !p.replayed {
                crate::chaos::count_point(&fresh_points, budget);
            }
        }
    };
    let ctl = SweepControl {
        checkpoint: Some(manifest_path.as_path()),
        resume: true,
        interrupt: Some(&inner.shutdown),
        progress: Some(&progress),
        ..SweepControl::default()
    };
    match run_experiment_supervised(&spec, &opts, &ctl) {
        Err(e) => {
            finish(inner, id, error_line(&e.to_string()));
        }
        Ok(result) => {
            if result.interrupted {
                // Drain: completed points are in the checkpoint manifest,
                // the journal still says running, and a restart resumes.
                inner.broadcast(
                    id,
                    format!("{{\"event\":\"paused\",\"hash\":\"{hex}\"}}"),
                    true,
                );
                return;
            }
            for w in &result.warnings {
                let mut line = format!("{{\"event\":\"warning\",\"hash\":\"{hex}\",\"detail\":");
                json::escape(w, &mut line);
                line.push('}');
                inner.broadcast(id, line, false);
            }
            let text = json::to_json(&result);
            let result_path = inner.results_dir.join(format!("{hex}.json"));
            if let Err(e) = write_atomic(&result_path, text.as_bytes()) {
                finish(
                    inner,
                    id,
                    error_line(&format!("cannot archive result: {e}")),
                );
                return;
            }
            // Only trustworthy results become cache hits: fully measured
            // (no holes, no degraded fills, not interrupted) and clean
            // under the auditor.
            let trusted = result.fully_measured() && result.audit_failures.is_empty();
            if trusted {
                if let Err(e) = inner.cache.put(hash, &text) {
                    eprintln!("ccsim-serve: warning: cache store failed for {hex}: {e}");
                }
            }
            let charged = pool.consumed().saturating_sub(consumed_before);
            let line = done_line(inner, hash, false, charged, result.failures.len(), trusted);
            finish(inner, id, line);
        }
    }
}

fn finish(inner: &Inner, id: u64, terminal_line: String) {
    if let Err(e) = inner.journal.lock().unwrap().set_state(id, JobState::Done) {
        eprintln!("ccsim-serve: warning: cannot journal completion of job {id}: {e}");
    }
    inner.broadcast(id, terminal_line, true);
}
