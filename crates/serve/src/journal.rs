//! The durable job journal: every accepted job is persisted *before* the
//! daemon acknowledges it, so a `kill -9` at any instant loses nothing
//! that was acked.
//!
//! The journal is a JSONL file (`jobs.jsonl`): a header line followed by
//! one record per job. Every mutation rewrites the whole file through
//! [`write_atomic`] (temp-then-rename) — job counts are small (this is a
//! capacity-planning queue, not an OLTP log), and full rewrite keeps the
//! invariant trivial: the file on disk is always a complete, valid
//! snapshot. A *truncated final line* can therefore only appear when
//! something tore a write out from under us (chaos does this
//! deliberately); like the checkpoint manifest, recovery discards the
//! partial record with a warning instead of refusing to start. Interior
//! corruption is not a crash signature and stays a hard error.

use std::path::{Path, PathBuf};

use ccsim_experiments::json::{self, Value};
use ccsim_experiments::write_atomic;

use crate::job::JobSpec;

/// Journal format version, written in the header line.
const VERSION: u64 = 1;

/// Lifecycle of a journaled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for the scheduler.
    Queued,
    /// Picked up by the scheduler. A job found in this state at startup
    /// was interrupted (crash or drain) and is re-enqueued; its checkpoint
    /// manifest makes the re-run resume instead of restart.
    Running,
    /// Finished — result (or terminal error) recorded on disk.
    Done,
}

impl JobState {
    fn token(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    fn from_token(s: &str) -> Result<JobState, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            other => Err(format!("unknown job state {other:?}")),
        }
    }
}

/// One journaled job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Monotonic id, unique within one journal.
    pub id: u64,
    /// Canonical config hash (cache and manifest key).
    pub hash: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The submitted spec.
    pub spec: JobSpec,
}

impl JobRecord {
    fn to_line(&self) -> String {
        format!(
            "{{\"id\":{},\"hash\":\"{:016x}\",\"state\":\"{}\",\"spec\":{}}}",
            self.id,
            self.hash,
            self.state.token(),
            self.spec.to_json()
        )
    }

    fn from_line(line: &str) -> Result<JobRecord, String> {
        let v = json::parse(line)?;
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("record needs an id")?;
        let hash = v
            .get("hash")
            .and_then(Value::as_str)
            .ok_or("record needs a hash")
            .and_then(|h| u64::from_str_radix(h, 16).map_err(|_| "bad hash hex"))?;
        let state = JobState::from_token(
            v.get("state")
                .and_then(Value::as_str)
                .ok_or("record needs a state")?,
        )?;
        let spec = JobSpec::from_value(v.get("spec").ok_or("record needs a spec")?)?;
        Ok(JobRecord {
            id,
            hash,
            state,
            spec,
        })
    }
}

/// The durable queue. All mutators persist before returning.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    records: Vec<JobRecord>,
    warnings: Vec<String>,
}

impl JobJournal {
    /// Open (or create) the journal at `path`. A missing file is an empty
    /// journal; a truncated final record is discarded with a warning.
    ///
    /// # Errors
    /// Returns a description when the header is wrong or an interior
    /// record is corrupt.
    pub fn open(path: &Path) -> Result<JobJournal, String> {
        let mut journal = JobJournal {
            path: path.to_path_buf(),
            records: Vec::new(),
            warnings: Vec::new(),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(journal),
            Err(e) => return Err(format!("cannot read job journal {}: {e}", path.display())),
        };
        let mut lines = text.lines().enumerate();
        let Some((_, header)) = lines.next() else {
            return Ok(journal);
        };
        let hv = json::parse(header).map_err(|e| format!("bad journal header: {e}"))?;
        match hv.get("ccsim_serve_journal").and_then(Value::as_u64) {
            Some(VERSION) => {}
            Some(v) => return Err(format!("unsupported journal version {v}")),
            None => return Err("not a ccsim-serve job journal".to_string()),
        }
        let body: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
        for (i, (lineno, line)) in body.iter().enumerate() {
            match JobRecord::from_line(line) {
                Ok(rec) => journal.records.push(rec),
                Err(e) if i + 1 == body.len() => {
                    // Torn final write: recover what was complete.
                    journal.warnings.push(format!(
                        "discarded truncated final journal record at line {} ({e})",
                        lineno + 1
                    ));
                }
                Err(e) => {
                    return Err(format!(
                        "corrupt job journal {} line {}: {e}",
                        path.display(),
                        lineno + 1
                    ))
                }
            }
        }
        Ok(journal)
    }

    /// All records, in submission order.
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Recovery warnings from [`JobJournal::open`].
    #[must_use]
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The id the next appended job will get.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.records.iter().map(|r| r.id + 1).max().unwrap_or(1)
    }

    /// A queued or running record with this hash, if any (used to dedupe
    /// concurrent identical submissions).
    #[must_use]
    pub fn find_active(&self, hash: u64) -> Option<&JobRecord> {
        self.records
            .iter()
            .find(|r| r.hash == hash && r.state != JobState::Done)
    }

    /// Look up a record by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Jobs queued ahead of the scheduler (used for load shedding).
    #[must_use]
    pub fn queued_depth(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.state == JobState::Queued)
            .count()
    }

    /// Append a new queued job and persist. Returns the assigned id.
    ///
    /// # Errors
    /// Returns a description when the journal cannot be written — the job
    /// is **not** recorded in memory either (no ack without durability).
    pub fn append(&mut self, spec: JobSpec, hash: u64) -> Result<u64, String> {
        let id = self.next_id();
        self.records.push(JobRecord {
            id,
            hash,
            state: JobState::Queued,
            spec,
        });
        if let Err(e) = self.persist() {
            self.records.pop();
            return Err(e);
        }
        Ok(id)
    }

    /// Move a job to `state` and persist.
    ///
    /// # Errors
    /// Returns a description for an unknown id or a failed write.
    pub fn set_state(&mut self, id: u64, state: JobState) -> Result<(), String> {
        let rec = self
            .records
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or_else(|| format!("no journaled job {id}"))?;
        let prev = rec.state;
        rec.state = state;
        if let Err(e) = self.persist() {
            if let Some(r) = self.records.iter_mut().find(|r| r.id == id) {
                r.state = prev;
            }
            return Err(e);
        }
        Ok(())
    }

    fn persist(&self) -> Result<(), String> {
        let mut out = format!("{{\"ccsim_serve_journal\":{VERSION}}}\n");
        for rec in &self.records {
            out.push_str(&rec.to_line());
            out.push('\n');
        }
        crate::chaos::maybe_tear_journal(&self.path, &out);
        write_atomic(&self.path, out.as_bytes())
            .map_err(|e| format!("cannot write job journal {}: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim-serve-journal-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("jobs.jsonl")
    }

    #[test]
    fn append_and_state_changes_survive_reopen() {
        let path = tmp("roundtrip");
        let mut j = JobJournal::open(&path).unwrap();
        assert_eq!(j.next_id(), 1);
        let spec = JobSpec::quick("exp3");
        let hash = spec.hash().unwrap();
        let id = j.append(spec.clone(), hash).unwrap();
        assert_eq!(id, 1);
        j.set_state(id, JobState::Running).unwrap();
        let j2 = JobJournal::open(&path).unwrap();
        assert!(j2.warnings().is_empty());
        assert_eq!(j2.records().len(), 1);
        assert_eq!(j2.records()[0].state, JobState::Running);
        assert_eq!(j2.records()[0].spec, spec);
        assert_eq!(j2.records()[0].hash, hash);
        assert_eq!(j2.next_id(), 2);
    }

    #[test]
    fn truncated_final_record_is_discarded_with_a_warning() {
        let path = tmp("torn");
        let mut j = JobJournal::open(&path).unwrap();
        let spec = JobSpec::quick("exp3");
        let hash = spec.hash().unwrap();
        j.append(spec.clone(), hash).unwrap();
        let mut other = JobSpec::quick("exp3");
        other.base_seed = 9;
        let h2 = other.hash().unwrap();
        j.append(other, h2).unwrap();
        // Tear the tail off the final record, as a mid-write crash would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();
        let j2 = JobJournal::open(&path).unwrap();
        assert_eq!(j2.records().len(), 1, "complete record survives");
        assert_eq!(j2.records()[0].hash, hash);
        assert_eq!(j2.warnings().len(), 1);
        assert!(j2.warnings()[0].contains("truncated final journal record"));
        // The discarded id is reused — the job was never acked as durable.
        assert_eq!(j2.next_id(), 2);
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = tmp("interior");
        let mut j = JobJournal::open(&path).unwrap();
        let spec = JobSpec::quick("exp3");
        let hash = spec.hash().unwrap();
        j.append(spec.clone(), hash).unwrap();
        let mut other = JobSpec::quick("exp3");
        other.base_seed = 9;
        let h2 = other.hash().unwrap();
        j.append(other, h2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{\"id\":not json";
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = JobJournal::open(&path).unwrap_err();
        assert!(err.contains("corrupt job journal"), "{err}");
    }

    #[test]
    fn dedupe_finds_active_but_not_done_jobs() {
        let path = tmp("dedupe");
        let mut j = JobJournal::open(&path).unwrap();
        let spec = JobSpec::quick("exp3");
        let hash = spec.hash().unwrap();
        let id = j.append(spec.clone(), hash).unwrap();
        assert_eq!(j.find_active(hash).map(|r| r.id), Some(id));
        assert_eq!(j.queued_depth(), 1);
        j.set_state(id, JobState::Done).unwrap();
        assert!(j.find_active(hash).is_none());
        assert_eq!(j.queued_depth(), 0);
    }
}
