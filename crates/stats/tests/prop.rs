//! Property tests for the statistics toolkit against naive reference
//! implementations.

use ccsim_des::{SimDuration, SimTime};
use ccsim_stats::{
    paired_t, BatchMeans, Confidence, LogHistogram, P2Quantile, Replications, TimeWeighted, Welford,
};
use proptest::prelude::*;

fn finite_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)
}

/// Adversarial streaming-stats inputs: constant runs, far-apart bimodal
/// mixes, and monotone ramps (both directions) — the sequences that break
/// naive one-pass estimators.
fn adversarial_values() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        // Constant.
        (-1.0e3f64..1.0e3, 5usize..400).prop_map(|(c, n)| vec![c; n]),
        // Bimodal: two centers, deterministic interleave by modulus.
        (0.0f64..10.0, 1.0e3f64..1.0e6, 2usize..10, 10usize..400).prop_map(
            |(lo, hi, period, n)| (0..n)
                .map(|i| if i % period == 0 { lo } else { hi })
                .collect()
        ),
        // Monotone ramps.
        (1usize..400, any::<bool>()).prop_map(|(n, up)| {
            let ramp: Vec<f64> = (0..n).map(|i| i as f64).collect();
            if up {
                ramp
            } else {
                ramp.into_iter().rev().collect()
            }
        }),
    ]
}

/// Exact nearest-rank quantile of a buffered sample.
fn exact_quantile(xs: &[f64], q: f64) -> f64 {
    let mut s = xs.to_vec();
    s.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

proptest! {
    /// Welford matches the two-pass reference for mean and variance.
    #[test]
    fn welford_matches_two_pass(xs in finite_values()) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!(
                (w.sample_variance() - var).abs() <= 1e-5 * (1.0 + var.abs()),
                "welford {} vs reference {}",
                w.sample_variance(),
                var
            );
        }
        prop_assert_eq!(w.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(w.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Welford merge equals sequential accumulation for any split point.
    #[test]
    fn welford_merge_any_split(xs in finite_values(), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let (left, right) = xs.split_at(split.min(xs.len()));
        let mut a = Welford::new();
        for &x in left {
            a.add(x);
        }
        let mut b = Welford::new();
        for &x in right {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
    }

    /// Batch-means intervals contain the batch mean of means by
    /// construction, and widen with confidence level.
    #[test]
    fn batch_means_interval_properties(xs in proptest::collection::vec(0.0f64..1000.0, 2..60)) {
        let mut bm90 = BatchMeans::new(Confidence::Ninety);
        let mut bm95 = BatchMeans::new(Confidence::NinetyFive);
        for &x in &xs {
            bm90.push(x);
            bm95.push(x);
        }
        let e90 = bm90.estimate();
        let e95 = bm95.estimate();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((e90.mean - mean).abs() <= 1e-9 * (1.0 + mean.abs()));
        prop_assert!(e90.half_width >= 0.0);
        prop_assert!(e95.half_width >= e90.half_width);
    }

    /// Pooling per-replication batch means equals one straight Welford pass
    /// over the concatenated batch values, for any partition into runs.
    #[test]
    fn replication_pooling_matches_straight_welford(
        runs in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1000.0, 1..30),
            1..8,
        ),
    ) {
        let mut straight = Welford::new();
        let mut bms = Vec::new();
        for run in &runs {
            let mut bm = BatchMeans::new(Confidence::Ninety);
            for &v in run {
                bm.push(v);
                straight.add(v);
            }
            bms.push(bm);
        }
        let pooled = Replications::pool_batches(bms.iter());
        prop_assert_eq!(pooled.count(), straight.count());
        prop_assert!(
            (pooled.mean() - straight.mean()).abs() <= 1e-9 * (1.0 + straight.mean().abs()),
            "pooled {} vs straight {}",
            pooled.mean(),
            straight.mean()
        );
        if straight.count() > 1 {
            prop_assert!(
                (pooled.sample_variance() - straight.sample_variance()).abs()
                    <= 1e-9 * (1.0 + straight.sample_variance().abs()),
                "pooled {} vs straight {}",
                pooled.sample_variance(),
                straight.sample_variance()
            );
        }
    }

    /// Replication estimates center on the sample mean; the paired test is
    /// antisymmetric and agrees with `Replications` run on the differences.
    #[test]
    fn paired_t_consistent_with_replications_of_differences(
        pairs in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..40),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let t = paired_t(&a, &b, Confidence::Ninety).unwrap();
        let rev = paired_t(&b, &a, Confidence::Ninety).unwrap();
        prop_assert!((t.mean_diff + rev.mean_diff).abs() <= 1e-9);
        prop_assert!((t.half_width - rev.half_width).abs() <= 1e-9);
        let mut diffs = Replications::new(Confidence::Ninety);
        for (x, y) in a.iter().zip(b.iter()) {
            diffs.push(x - y);
        }
        let e = diffs.estimate();
        prop_assert!((e.mean - t.mean_diff).abs() <= 1e-9 * (1.0 + t.mean_diff.abs()));
        prop_assert!((e.half_width - t.half_width).abs() <= 1e-9 * (1.0 + t.half_width));
    }

    /// Histogram quantiles are monotone in q and bounded by observed range
    /// (up to bucket resolution).
    #[test]
    fn histogram_quantiles_monotone(xs in proptest::collection::vec(0.01f64..100.0, 1..300)) {
        let mut h = LogHistogram::new(0.001, 1000.0, 0.05);
        for &x in &xs {
            h.add(x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = 0.0;
        for i in 1..=19 {
            let q = h.quantile(f64::from(i) / 20.0);
            prop_assert!(q >= last - 1e-12);
            prop_assert!(q >= lo * 0.94, "q {q} below min {lo}");
            prop_assert!(q <= hi * 1.06, "q {q} above max {hi}");
            last = q;
        }
    }

    /// Welford stays exact (to float tolerance) against the two-pass
    /// reference on the adversarial sequences too — constants, bimodal
    /// mixes, and ramps must not degrade mean or variance.
    #[test]
    fn welford_survives_adversarial_sequences(xs in adversarial_values()) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!(
                (w.sample_variance() - var).abs() <= 1e-5 * (1.0 + var.abs()),
                "welford {} vs reference {} on adversarial input",
                w.sample_variance(),
                var
            );
        }
    }

    /// P² estimates are always bracketed by the observed extrema, and the
    /// exact sample quantile of the same buffered data falls inside the
    /// estimator's neighboring-marker bracket... on any input whatsoever.
    #[test]
    fn p2_stays_within_observed_range(
        xs in prop_oneof![finite_values(), adversarial_values()],
        qi in 1usize..20,
    ) {
        let q = qi as f64 / 20.0;
        let mut p = P2Quantile::new(q);
        for &x in &xs {
            p.add(x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let est = p.quantile();
        prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
        prop_assert_eq!(p.count(), xs.len() as u64);
    }

    /// On constant sequences the P² estimate is *exactly* the constant.
    #[test]
    fn p2_exact_on_constants(c in -1.0e6f64..1.0e6, n in 1usize..500, qi in 1usize..20) {
        let mut p = P2Quantile::new(qi as f64 / 20.0);
        for _ in 0..n {
            p.add(c);
        }
        prop_assert_eq!(p.quantile(), c);
    }

    /// On well-populated samples the P² estimate's *rank* within the
    /// buffered data is close to the target quantile — a distribution-free
    /// accuracy bound that holds even when values cluster.
    #[test]
    fn p2_rank_tracks_target_quantile(
        xs in proptest::collection::vec(0.0f64..1000.0, 200..600),
        qi in 1usize..10,
    ) {
        let q = qi as f64 / 10.0;
        let mut p = P2Quantile::new(q);
        for &x in &xs {
            p.add(x);
        }
        let est = p.quantile();
        let n = xs.len() as f64;
        let rank = xs.iter().filter(|&&x| x <= est).count() as f64 / n;
        prop_assert!(
            (rank - q).abs() <= 0.15,
            "estimate {est} sits at rank {rank}, target {q}"
        );
        // And against the exact buffered quantile, the value error is
        // bounded by a modest fraction of the observed spread.
        let exact = exact_quantile(&xs, q);
        prop_assert!(
            (est - exact).abs() <= 0.2 * 1000.0,
            "estimate {est} vs exact {exact}"
        );
    }

    /// The time-weighted average of a step signal equals the Riemann sum.
    #[test]
    fn time_weighted_matches_riemann(
        steps in proptest::collection::vec((1u64..100, 0.0f64..50.0), 1..40)
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut now = SimTime::ZERO;
        let mut area = 0.0;
        let mut current = 0.0;
        for &(dt_s, value) in &steps {
            let next = now + SimDuration::from_secs(dt_s);
            area += current * dt_s as f64;
            tw.set(next, value);
            current = value;
            now = next;
        }
        // Close the window one second later.
        let end = now + SimDuration::from_secs(1);
        area += current;
        let expect = area / end.as_secs_f64();
        let got = tw.average(end);
        prop_assert!(
            (got - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
            "{got} vs {expect}"
        );
    }
}
