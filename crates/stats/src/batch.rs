//! The (modified) batch means method.
//!
//! The paper runs each simulation for 20 batches with a large batch time,
//! discards a warmup prefix, and reports 90% confidence intervals over the
//! per-batch means [Sarg76, Care83]. [`BatchMeans`] implements exactly this:
//! feed it one value per batch, ask for a point estimate with a Student-t
//! half-width.

use crate::ttable::{t_quantile_90, t_quantile_95};
use crate::welford::Welford;

/// A point estimate with a symmetric confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate (mean of batch means).
    pub mean: f64,
    /// Half-width of the confidence interval (`mean ± half_width`).
    pub half_width: f64,
}

impl Estimate {
    /// Half-width as a fraction of the mean (0 when the mean is 0).
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// True if `other`'s mean lies outside this interval and vice versa —
    /// the paper's notion of a *statistically significant* difference.
    #[must_use]
    pub fn significantly_differs_from(&self, other: &Estimate) -> bool {
        (self.mean - other.mean).abs() > self.half_width + other.half_width
    }
}

/// Confidence level for [`BatchMeans`] intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Confidence {
    /// Two-sided 90% (the paper's choice).
    #[default]
    Ninety,
    /// Two-sided 95%.
    NinetyFive,
}

/// Accumulates one observation per batch and produces interval estimates.
///
/// ```
/// use ccsim_stats::{BatchMeans, Confidence};
/// let mut bm = BatchMeans::new(Confidence::Ninety);
/// for v in [10.1, 9.9, 10.3, 9.8, 10.0] {
///     bm.push(v);
/// }
/// let est = bm.estimate();
/// assert!((est.mean - 10.02).abs() < 1e-9);
/// assert!(est.half_width > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchMeans {
    confidence: Confidence,
    acc: Welford,
    values: Vec<f64>,
}

impl BatchMeans {
    /// New accumulator at the given confidence level.
    #[must_use]
    pub fn new(confidence: Confidence) -> Self {
        BatchMeans {
            confidence,
            acc: Welford::new(),
            values: Vec::new(),
        }
    }

    /// Record one batch mean.
    pub fn push(&mut self, batch_value: f64) {
        self.acc.add(batch_value);
        self.values.push(batch_value);
    }

    /// Number of batches recorded.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.acc.count()
    }

    /// The raw per-batch values, in order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Interval estimate over the batch means. With fewer than two batches
    /// the half-width is zero (no variance information).
    #[must_use]
    pub fn estimate(&self) -> Estimate {
        let n = self.acc.count();
        if n < 2 {
            return Estimate {
                mean: self.acc.mean(),
                half_width: 0.0,
            };
        }
        let t = match self.confidence {
            Confidence::Ninety => t_quantile_90(n - 1),
            Confidence::NinetyFive => t_quantile_95(n - 1),
        };
        let se = (self.acc.sample_variance() / n as f64).sqrt();
        Estimate {
            mean: self.acc.mean(),
            half_width: t * se,
        }
    }

    /// Lag-1 autocorrelation of the batch means — the usual diagnostic for
    /// "are my batches long enough?" (large positive values mean the batch
    /// time should grow). Returns 0 with fewer than 3 batches.
    #[must_use]
    pub fn lag1_autocorrelation(&self) -> f64 {
        let n = self.values.len();
        if n < 3 {
            return 0.0;
        }
        let mean = self.acc.mean();
        let denom: f64 = self.values.iter().map(|v| (v - mean).powi(2)).sum();
        if denom == 0.0 {
            return 0.0;
        }
        let num: f64 = self
            .values
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_than_two_batches_has_zero_halfwidth() {
        let mut bm = BatchMeans::new(Confidence::Ninety);
        assert_eq!(bm.estimate().mean, 0.0);
        bm.push(5.0);
        let e = bm.estimate();
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn known_interval() {
        // 20 batches alternating 9 and 11: mean 10, sample std = sqrt(20/19)·1…
        let mut bm = BatchMeans::new(Confidence::Ninety);
        for i in 0..20 {
            bm.push(if i % 2 == 0 { 9.0 } else { 11.0 });
        }
        let e = bm.estimate();
        assert!((e.mean - 10.0).abs() < 1e-12);
        // s^2 = 20/19, se = sqrt(20/19/20) = sqrt(1/19), t(19, .95)=1.729133.
        let expect = 1.729133 * (1.0f64 / 19.0).sqrt();
        assert!((e.half_width - expect).abs() < 1e-5);
    }

    #[test]
    fn constant_batches_give_zero_halfwidth() {
        let mut bm = BatchMeans::new(Confidence::NinetyFive);
        for _ in 0..10 {
            bm.push(7.0);
        }
        let e = bm.estimate();
        assert_eq!(e.mean, 7.0);
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn ninety_five_is_wider_than_ninety() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut a = BatchMeans::new(Confidence::Ninety);
        let mut b = BatchMeans::new(Confidence::NinetyFive);
        for &x in &data {
            a.push(x);
            b.push(x);
        }
        assert!(b.estimate().half_width > a.estimate().half_width);
    }

    #[test]
    fn significance_test() {
        let a = Estimate {
            mean: 10.0,
            half_width: 0.5,
        };
        let b = Estimate {
            mean: 11.5,
            half_width: 0.5,
        };
        let c = Estimate {
            mean: 10.6,
            half_width: 0.5,
        };
        assert!(a.significantly_differs_from(&b));
        assert!(!a.significantly_differs_from(&c));
    }

    #[test]
    fn relative_half_width() {
        let e = Estimate {
            mean: 20.0,
            half_width: 1.0,
        };
        assert!((e.relative_half_width() - 0.05).abs() < 1e-12);
        let z = Estimate {
            mean: 0.0,
            half_width: 1.0,
        };
        assert_eq!(z.relative_half_width(), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let mut bm = BatchMeans::new(Confidence::Ninety);
        for i in 0..40 {
            bm.push(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        assert!(bm.lag1_autocorrelation() < -0.8);
    }

    #[test]
    fn autocorrelation_of_trend_is_positive() {
        let mut bm = BatchMeans::new(Confidence::Ninety);
        for i in 0..40 {
            bm.push(i as f64);
        }
        assert!(bm.lag1_autocorrelation() > 0.8);
    }

    #[test]
    fn autocorrelation_degenerate_cases() {
        let mut bm = BatchMeans::new(Confidence::Ninety);
        bm.push(1.0);
        bm.push(2.0);
        assert_eq!(bm.lag1_autocorrelation(), 0.0);
        let mut c = BatchMeans::new(Confidence::Ninety);
        for _ in 0..5 {
            c.push(3.0);
        }
        assert_eq!(c.lag1_autocorrelation(), 0.0);
    }
}
