//! Student-t quantiles for confidence intervals.
//!
//! The paper reports 90% confidence intervals from ~20 batch means, so we
//! need the 0.95 one-sided quantile of the t distribution (two-sided 90%).
//! A table covers 1–30 degrees of freedom; beyond that we use the normal
//! approximation with a 1/df correction, which is accurate to <0.1% there.

/// One-sided 0.95 quantiles of Student's t for df = 1..=30.
const T_95: [f64; 30] = [
    6.313752, 2.919986, 2.353363, 2.131847, 2.015048, 1.943180, 1.894579, 1.859548, 1.833113,
    1.812461, 1.795885, 1.782288, 1.770933, 1.761310, 1.753050, 1.745884, 1.739607, 1.734064,
    1.729133, 1.724718, 1.720743, 1.717144, 1.713872, 1.710882, 1.708141, 1.705618, 1.703288,
    1.701131, 1.699127, 1.697261,
];

/// One-sided 0.975 quantiles of Student's t for df = 1..=30 (two-sided 95%).
const T_975: [f64; 30] = [
    12.706205, 4.302653, 3.182446, 2.776445, 2.570582, 2.446912, 2.364624, 2.306004, 2.262157,
    2.228139, 2.200985, 2.178813, 2.160369, 2.144787, 2.131450, 2.119905, 2.109816, 2.100922,
    2.093024, 2.085963, 2.079614, 2.073873, 2.068658, 2.063899, 2.059539, 2.055529, 2.051831,
    2.048407, 2.045230, 2.042272,
];

fn lookup(table: &[f64; 30], asymptote: f64, df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => table[(df - 1) as usize],
        _ => {
            // Cornish-Fisher-style first-order correction to the normal
            // quantile: t_p(df) ~ z_p + (z_p^3 + z_p) / (4 df).
            let z = asymptote;
            z + (z * z * z + z) / (4.0 * df as f64)
        }
    }
}

/// t quantile for a **two-sided 90%** confidence interval with `df` degrees
/// of freedom (i.e. the one-sided 0.95 quantile).
#[must_use]
pub fn t_quantile_90(df: u64) -> f64 {
    lookup(&T_95, 1.6448536269514722, df)
}

/// t quantile for a **two-sided 95%** confidence interval with `df` degrees
/// of freedom (i.e. the one-sided 0.975 quantile).
#[must_use]
pub fn t_quantile_95(df: u64) -> f64 {
    lookup(&T_975, 1.959963984540054, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_match_references() {
        assert!((t_quantile_90(1) - 6.313752).abs() < 1e-5);
        assert!((t_quantile_90(19) - 1.729133).abs() < 1e-5);
        assert!((t_quantile_95(19) - 2.093024).abs() < 1e-5);
        assert!((t_quantile_90(30) - 1.697261).abs() < 1e-5);
    }

    #[test]
    fn zero_df_is_infinite() {
        assert!(t_quantile_90(0).is_infinite());
        assert!(t_quantile_95(0).is_infinite());
    }

    #[test]
    fn large_df_approaches_normal() {
        assert!((t_quantile_90(1_000_000) - 1.6448536).abs() < 1e-4);
        assert!((t_quantile_95(1_000_000) - 1.9599640).abs() < 1e-4);
    }

    #[test]
    fn approximation_is_close_at_switchover() {
        // The correction formula at df=31 should be near the df=30 table value
        // and monotonically between it and the asymptote.
        let t31 = t_quantile_90(31);
        assert!(t31 < t_quantile_90(30));
        assert!(t31 > 1.6448536);
        assert!((t31 - 1.6955).abs() < 2e-3, "t31 = {t31}");
    }

    #[test]
    fn monotone_decreasing_in_df() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_quantile_90(df);
            assert!(t <= prev + 1e-12, "df {df}: {t} > {prev}");
            prev = t;
        }
    }
}
