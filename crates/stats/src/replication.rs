//! Independent replications and paired comparisons.
//!
//! The batch means method ([`BatchMeans`]) qualifies the noise *within* one
//! run; this module qualifies the noise *across* runs. [`Replications`]
//! treats each replication's mean as one observation and reports a
//! Student-t interval over those means — the textbook independent
//! replications estimator. [`paired_t`] sharpens "A beats B" claims when
//! the two systems were simulated under common random numbers: pairing by
//! replication cancels the shared workload noise, so the interval is over
//! the *differences*, which is exactly what a crossover claim needs.

use crate::batch::{BatchMeans, Confidence, Estimate};
use crate::ttable::{t_quantile_90, t_quantile_95};
use crate::welford::Welford;

fn t_for(confidence: Confidence, df: u64) -> f64 {
    match confidence {
        Confidence::Ninety => t_quantile_90(df),
        Confidence::NinetyFive => t_quantile_95(df),
    }
}

/// Interval estimation over independent replication means.
///
/// ```
/// use ccsim_stats::{Confidence, Replications};
/// let mut reps = Replications::new(Confidence::Ninety);
/// for mean in [10.0, 12.0, 11.0, 13.0, 9.0] {
///     reps.push(mean);
/// }
/// let est = reps.estimate();
/// assert!((est.mean - 11.0).abs() < 1e-12);
/// assert!(est.half_width > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Replications {
    confidence: Confidence,
    acc: Welford,
    values: Vec<f64>,
}

impl Replications {
    /// New accumulator at the given confidence level.
    #[must_use]
    pub fn new(confidence: Confidence) -> Self {
        Replications {
            confidence,
            acc: Welford::new(),
            values: Vec::new(),
        }
    }

    /// Record one replication's point estimate (e.g. its mean throughput).
    pub fn push(&mut self, replication_mean: f64) {
        self.acc.add(replication_mean);
        self.values.push(replication_mean);
    }

    /// Number of replications recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// The recorded replication means, in order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample variance of the replication means.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.acc.sample_variance()
    }

    /// Student-t interval over the replication means. With one replication
    /// the half-width is zero (no cross-replication variance information).
    #[must_use]
    pub fn estimate(&self) -> Estimate {
        let n = self.acc.count();
        if n < 2 {
            return Estimate {
                mean: self.acc.mean(),
                half_width: 0.0,
            };
        }
        let se = (self.acc.sample_variance() / n as f64).sqrt();
        Estimate {
            mean: self.acc.mean(),
            half_width: t_for(self.confidence, n - 1) * se,
        }
    }

    /// Pool the *within-run* batch means of every replication into one
    /// accumulator, as if all batches came from a single long run.
    ///
    /// This is the classic variance-reduction cross-check: the pooled
    /// grand mean must equal a straight [`Welford`] pass over the
    /// concatenated batch values (the regression tests assert agreement to
    /// 1e-9), while the replication-level interval from [`estimate`]
    /// remains the statistically defensible one (batches within a run are
    /// correlated; replications are not).
    ///
    /// [`estimate`]: Replications::estimate
    #[must_use]
    pub fn pool_batches<'a, I>(batch_sets: I) -> Welford
    where
        I: IntoIterator<Item = &'a BatchMeans>,
    {
        let mut pooled = Welford::new();
        for bm in batch_sets {
            let mut one = Welford::new();
            for &v in bm.values() {
                one.add(v);
            }
            pooled.merge(&one);
        }
        pooled
    }
}

/// The result of a paired Student-t comparison of two systems observed
/// under common random numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedT {
    /// Number of pairs.
    pub n: u64,
    /// Mean of the per-replication differences `a[i] - b[i]`.
    pub mean_diff: f64,
    /// Confidence half-width of the mean difference.
    pub half_width: f64,
    /// The t statistic `mean_diff / se` (infinite when the differences
    /// have zero variance and a nonzero mean).
    pub t_stat: f64,
}

impl PairedT {
    /// True when the interval around the mean difference excludes zero —
    /// the paired-t notion of a statistically significant difference.
    #[must_use]
    pub fn significant(&self) -> bool {
        self.mean_diff.abs() > self.half_width
    }

    /// Significant *and* in favor of the first argument (`a > b`).
    #[must_use]
    pub fn significantly_positive(&self) -> bool {
        self.significant() && self.mean_diff > 0.0
    }
}

/// Paired Student-t test over per-replication observations of two systems.
///
/// Returns `None` unless `a` and `b` have the same length of at least two
/// pairs — anything else is not a paired design.
///
/// ```
/// use ccsim_stats::{paired_t, Confidence};
/// let a = [5.0, 7.0, 9.0, 6.0];
/// let b = [4.0, 5.0, 8.0, 6.0];
/// let t = paired_t(&a, &b, Confidence::Ninety).unwrap();
/// assert!(t.significantly_positive());
/// ```
#[must_use]
pub fn paired_t(a: &[f64], b: &[f64], confidence: Confidence) -> Option<PairedT> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let mut acc = Welford::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc.add(x - y);
    }
    let n = acc.count();
    let se = (acc.sample_variance() / n as f64).sqrt();
    let t_stat = if se > 0.0 {
        acc.mean() / se
    } else if acc.mean() == 0.0 {
        0.0
    } else {
        f64::INFINITY * acc.mean().signum()
    };
    Some(PairedT {
        n,
        mean_diff: acc.mean(),
        half_width: t_for(confidence, n - 1) * se,
        t_stat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_matches_hand_computed_fixture() {
        // Means 10, 12, 11, 13, 9: mean 11, s^2 = 2.5, se = sqrt(0.5),
        // df = 4, t90 = 2.131847 -> half-width 2.131847 * 0.7071067812.
        let mut reps = Replications::new(Confidence::Ninety);
        for v in [10.0, 12.0, 11.0, 13.0, 9.0] {
            reps.push(v);
        }
        assert_eq!(reps.count(), 5);
        assert!((reps.variance() - 2.5).abs() < 1e-12);
        let e = reps.estimate();
        assert!((e.mean - 11.0).abs() < 1e-12);
        assert!((e.half_width - 2.131847 * 0.5f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn single_replication_has_zero_halfwidth() {
        let mut reps = Replications::new(Confidence::Ninety);
        assert_eq!(reps.estimate().mean, 0.0);
        reps.push(4.0);
        let e = reps.estimate();
        assert_eq!(e.mean, 4.0);
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn ninety_five_is_wider() {
        let data = [1.0, 3.0, 2.0, 5.0];
        let mut a = Replications::new(Confidence::Ninety);
        let mut b = Replications::new(Confidence::NinetyFive);
        for &x in &data {
            a.push(x);
            b.push(x);
        }
        assert!(b.estimate().half_width > a.estimate().half_width);
    }

    #[test]
    fn paired_t_matches_hand_computed_fixture() {
        // Differences [1, 2, 1, 0]: mean 1, s^2 = 2/3, se = sqrt(1/6),
        // df = 3, t90 = 2.353363.
        let a = [5.0, 7.0, 9.0, 6.0];
        let b = [4.0, 5.0, 8.0, 6.0];
        let t = paired_t(&a, &b, Confidence::Ninety).unwrap();
        assert_eq!(t.n, 4);
        assert!((t.mean_diff - 1.0).abs() < 1e-12);
        let se = (1.0f64 / 6.0).sqrt();
        assert!((t.half_width - 2.353363 * se).abs() < 1e-6);
        assert!((t.t_stat - 1.0 / se).abs() < 1e-9);
        assert!(t.significant());
        assert!(t.significantly_positive());
    }

    #[test]
    fn paired_t_insignificant_when_noise_dominates() {
        let a = [10.0, 8.0, 12.0, 9.0];
        let b = [9.0, 10.0, 10.5, 9.5];
        let t = paired_t(&a, &b, Confidence::Ninety).unwrap();
        assert!(!t.significant(), "{t:?}");
    }

    #[test]
    fn paired_t_rejects_unpaired_input() {
        assert!(paired_t(&[1.0], &[1.0], Confidence::Ninety).is_none());
        assert!(paired_t(&[1.0, 2.0], &[1.0], Confidence::Ninety).is_none());
        assert!(paired_t(&[], &[], Confidence::Ninety).is_none());
    }

    #[test]
    fn paired_t_degenerate_variance() {
        // Constant positive difference: infinitely significant.
        let t = paired_t(&[2.0, 3.0, 4.0], &[1.0, 2.0, 3.0], Confidence::Ninety).unwrap();
        assert_eq!(t.half_width, 0.0);
        assert!(t.t_stat.is_infinite() && t.t_stat > 0.0);
        assert!(t.significantly_positive());
        // Identical series: zero everywhere, not significant.
        let z = paired_t(&[1.0, 2.0], &[1.0, 2.0], Confidence::Ninety).unwrap();
        assert_eq!(z.mean_diff, 0.0);
        assert_eq!(z.t_stat, 0.0);
        assert!(!z.significant());
    }

    #[test]
    fn pooled_batches_match_straight_welford_pass() {
        // Three replications with different batch counts; the pooled
        // accumulator must agree with one pass over the concatenation.
        let sets: [&[f64]; 3] = [
            &[10.0, 11.5, 9.25, 10.75],
            &[12.0, 8.5, 10.0, 11.0, 9.5],
            &[10.1, 10.9, 9.9],
        ];
        let mut bms = Vec::new();
        let mut straight = Welford::new();
        for set in sets {
            let mut bm = BatchMeans::new(Confidence::Ninety);
            for &v in set {
                bm.push(v);
                straight.add(v);
            }
            bms.push(bm);
        }
        let pooled = Replications::pool_batches(bms.iter());
        assert_eq!(pooled.count(), straight.count());
        assert!((pooled.mean() - straight.mean()).abs() < 1e-9);
        assert!((pooled.sample_variance() - straight.sample_variance()).abs() < 1e-9);
    }
}
