//! A log-bucketed histogram for latency-like quantities.
//!
//! Response times in the model span three orders of magnitude (half a
//! second at low load, minutes in a saturated closed system), so buckets
//! grow geometrically: constant *relative* resolution at every scale with a
//! few hundred buckets total. Quantiles are answered by bucket
//! interpolation, with worst-case relative error equal to the growth
//! factor.

/// Log-bucketed histogram over positive values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Lower bound of bucket 0.
    floor: f64,
    /// Geometric growth factor between bucket boundaries.
    growth: f64,
    ln_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Create a histogram covering `[floor, ceil]` with the given relative
    /// `resolution` (e.g. 0.05 for 5% buckets).
    ///
    /// # Panics
    /// Panics unless `0 < floor < ceil` and `resolution > 0`.
    #[must_use]
    pub fn new(floor: f64, ceil: f64, resolution: f64) -> Self {
        assert!(floor > 0.0 && ceil > floor, "need 0 < floor < ceil");
        assert!(resolution > 0.0, "resolution must be positive");
        let growth = 1.0 + resolution;
        let buckets = ((ceil / floor).ln() / growth.ln()).ceil() as usize + 1;
        LogHistogram {
            floor,
            growth,
            ln_growth: growth.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
        }
    }

    /// A default configuration for response times in seconds: 1 ms to
    /// 10 000 s at 5% resolution (~331 buckets).
    #[must_use]
    pub fn for_latencies() -> Self {
        LogHistogram::new(1e-3, 1e4, 0.05)
    }

    /// Record one observation. Non-positive values land in the underflow
    /// bucket; values beyond the ceiling clamp into the last bucket.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value <= self.floor || value.is_nan() {
            self.underflow += 1;
            return;
        }
        let ix = ((value / self.floor).ln() / self.ln_growth) as usize;
        let last = self.counts.len() - 1;
        self.counts[ix.min(last)] += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (`0 < q < 1`), by bucket interpolation. Returns 0
    /// for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "q must be in (0, 1)");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.floor;
        }
        for (ix, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within the bucket.
                let lo = self.floor * self.growth.powi(ix as i32);
                let hi = lo * self.growth;
                let frac = (target - seen) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        self.floor * self.growth.powi(self.counts.len() as i32)
    }

    /// Convenience: median, 95th and 99th percentiles.
    #[must_use]
    pub fn summary(&self) -> (f64, f64, f64) {
        (self.quantile(0.5), self.quantile(0.95), self.quantile(0.99))
    }

    /// Merge another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            (self.floor - other.floor).abs() < f64::EPSILON
                && (self.growth - other.growth).abs() < f64::EPSILON
                && self.counts.len() == other.counts.len(),
            "histogram configurations differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::for_latencies();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = LogHistogram::for_latencies();
        h.add(0.5);
        let q = h.quantile(0.5);
        assert!((q - 0.5).abs() / 0.5 < 0.06, "median {q}");
    }

    #[test]
    fn uniform_grid_quantiles() {
        let mut h = LogHistogram::new(0.01, 100.0, 0.01);
        for i in 1..=1000 {
            h.add(i as f64 / 100.0); // 0.01 .. 10.00
        }
        for (q, expect) in [(0.5, 5.0), (0.95, 9.5), (0.99, 9.9)] {
            let got = h.quantile(q);
            assert!(
                (got - expect).abs() / expect < 0.03,
                "q{q}: got {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LogHistogram::for_latencies();
        let mut x = 0.001;
        for _ in 0..500 {
            h.add(x);
            x *= 1.013;
        }
        let mut last = 0.0;
        for i in 1..20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn underflow_and_overflow_are_clamped() {
        let mut h = LogHistogram::new(1.0, 10.0, 0.1);
        h.add(0.0);
        h.add(-5.0);
        h.add(1e9);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.3), 1.0); // underflow reports the floor
        assert!(h.quantile(0.99) >= 10.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::for_latencies();
        let mut b = LogHistogram::for_latencies();
        for _ in 0..100 {
            a.add(1.0);
            b.add(4.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let median = a.quantile(0.5);
        assert!((0.9..1.2).contains(&median), "median {median}");
        let p75 = a.quantile(0.75);
        assert!((3.5..4.5).contains(&p75), "p75 {p75}");
    }

    #[test]
    #[should_panic(expected = "configurations differ")]
    fn merge_rejects_mismatched_configs() {
        let mut a = LogHistogram::new(1.0, 10.0, 0.1);
        let b = LogHistogram::new(1.0, 100.0, 0.1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1)")]
    fn quantile_domain_is_checked() {
        let h = LogHistogram::for_latencies();
        let _ = h.quantile(1.0);
    }

    #[test]
    fn summary_returns_three_quantiles() {
        let mut h = LogHistogram::for_latencies();
        for i in 1..=100 {
            h.add(i as f64 / 10.0);
        }
        let (p50, p95, p99) = h.summary();
        assert!(p50 < p95 && p95 < p99);
    }
}
