//! Welford's online algorithm for running mean and variance.

/// Numerically stable running mean / variance / extrema accumulator.
///
/// ```
/// use ccsim_stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.add(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 if empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (`NaN`-free; +∞ if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        *self = Welford::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_benign() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
    }

    #[test]
    fn known_variance() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.add(x);
        }
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert!((w.sample_variance() - 2.5).abs() < 1e-12);
        assert!((w.population_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation stress: large mean, tiny variance.
        let mut w = Welford::new();
        let base = 1e9;
        for x in [base + 4.0, base + 7.0, base + 13.0, base + 16.0] {
            w.add(x);
        }
        assert!((w.mean() - (base + 10.0)).abs() < 1e-3);
        assert!((w.sample_variance() - 30.0).abs() < 1e-3);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.add(1.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut w = Welford::new();
        w.add(5.0);
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
    }
}
