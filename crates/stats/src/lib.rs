//! `ccsim-stats` — statistical machinery for the concurrency-control
//! performance study.
//!
//! The paper analyzes its simulations with a *modified batch means* method
//! [Sarg76, Care83]: each run is divided into batches, per-batch throughput
//! (and other metrics) form the samples, and 90% Student-t confidence
//! intervals qualify which differences are statistically significant. This
//! crate provides:
//!
//! * [`Welford`] — numerically stable running mean/variance;
//! * [`BatchMeans`] / [`Estimate`] — batch means with t-based intervals and a
//!   lag-1 autocorrelation diagnostic;
//! * [`TimeWeighted`] — time-weighted averages of step signals (e.g. the
//!   *actual* multiprogramming level the paper discusses in §4.3);
//! * [`RunningAvg`] / [`Ewma`] — the adaptive restart-delay estimators;
//! * [`LogHistogram`] — log-bucketed latency histogram with quantiles;
//! * [`P2Quantile`] — O(1)-memory streaming quantiles for the scale regime;
//! * [`Replications`] / [`paired_t`] — independent-replication intervals and
//!   paired comparisons under common random numbers.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod batch;
mod histogram;
mod p2;
mod replication;
mod running;
mod timeweighted;
mod ttable;
mod welford;

pub use batch::{BatchMeans, Confidence, Estimate};
pub use histogram::LogHistogram;
pub use p2::P2Quantile;
pub use replication::{paired_t, PairedT, Replications};
pub use running::{Ewma, RunningAvg};
pub use timeweighted::TimeWeighted;
pub use ttable::{t_quantile_90, t_quantile_95};
pub use welford::Welford;
