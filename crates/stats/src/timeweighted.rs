//! Time-weighted averages of piecewise-constant signals.
//!
//! Used for quantities like "average number of active transactions": the
//! signal holds a value for a span of simulated time, and the average weights
//! each value by how long it held.

use ccsim_des::SimTime;

/// Time-weighted average of an integer-valued step signal.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    window_start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `value`.
    #[must_use]
    pub fn new(t0: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: t0,
            current: value,
            weighted_sum: 0.0,
            window_start: t0,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.weighted_sum += self.current * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
    }

    /// The current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Average over the window `[window_start, now]`.
    #[must_use]
    pub fn average(&self, now: SimTime) -> f64 {
        let pending = self.current * now.saturating_since(self.last_change).as_secs_f64();
        let span = now.saturating_since(self.window_start).as_secs_f64();
        if span == 0.0 {
            self.current
        } else {
            (self.weighted_sum + pending) / span
        }
    }

    /// Close the current window at `now`, return its average, and start a new
    /// window (used at batch boundaries).
    pub fn roll_window(&mut self, now: SimTime) -> f64 {
        let avg = self.average(now);
        self.set(now, self.current);
        self.weighted_sum = 0.0;
        self.window_start = now;
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let tw = TimeWeighted::new(SimTime::ZERO, 5.0);
        assert_eq!(tw.average(SimTime::from_secs(10)), 5.0);
    }

    #[test]
    fn step_signal() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(4), 10.0);
        // 4s at 0, 6s at 10 => avg 6.
        assert!((tw.average(SimTime::from_secs(10)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_returns_current() {
        let tw = TimeWeighted::new(SimTime::from_secs(3), 7.0);
        assert_eq!(tw.average(SimTime::from_secs(3)), 7.0);
    }

    #[test]
    fn multiple_steps() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(1), 2.0);
        tw.set(SimTime::from_secs(3), 3.0);
        // 1s@1 + 2s@2 + 2s@3 over 5s = (1+4+6)/5 = 2.2
        assert!((tw.average(SimTime::from_secs(5)) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn roll_window_resets() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_secs(5), 4.0);
        let first = tw.roll_window(SimTime::from_secs(10));
        assert!((first - 3.0).abs() < 1e-12);
        // New window sees only the value 4.
        let second = tw.roll_window(SimTime::from_secs(20));
        assert!((second - 4.0).abs() < 1e-12);
    }

    #[test]
    fn current_tracks_last_set() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(1), 9.0);
        assert_eq!(tw.current(), 9.0);
    }
}
