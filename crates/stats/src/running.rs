//! Running averages for adaptive control.
//!
//! The paper's immediate-restart algorithm draws its restart delay from an
//! exponential whose mean is "the running average of the transaction
//! response time". [`RunningAvg`] is that cumulative average, with a
//! configurable prior used until the first observation arrives.
//! [`Ewma`] is provided as an alternative policy for sensitivity studies.

use ccsim_des::SimDuration;

/// Cumulative running average of durations, with a prior for the empty state.
#[derive(Debug, Clone)]
pub struct RunningAvg {
    prior: SimDuration,
    total_us: u128,
    count: u64,
}

impl RunningAvg {
    /// Create with a prior returned until the first observation.
    #[must_use]
    pub fn new(prior: SimDuration) -> Self {
        RunningAvg {
            prior,
            total_us: 0,
            count: 0,
        }
    }

    /// Record an observation.
    pub fn observe(&mut self, d: SimDuration) {
        self.total_us += u128::from(d.as_micros());
        self.count += 1;
    }

    /// Current running average (the prior if nothing observed yet).
    #[must_use]
    pub fn value(&self) -> SimDuration {
        if self.count == 0 {
            self.prior
        } else {
            SimDuration::from_micros((self.total_us / u128::from(self.count)) as u64)
        }
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Exponentially weighted moving average of durations.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    seeded: bool,
    prior: SimDuration,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]` and a prior.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64, prior: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            value: 0.0,
            seeded: false,
            prior,
        }
    }

    /// Record an observation.
    pub fn observe(&mut self, d: SimDuration) {
        let x = d.as_micros() as f64;
        if self.seeded {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.seeded = true;
        }
    }

    /// Current smoothed value (the prior if nothing observed yet).
    #[must_use]
    pub fn value(&self) -> SimDuration {
        if self.seeded {
            SimDuration::from_micros(self.value.round() as u64)
        } else {
            self.prior
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_until_first_observation() {
        let mut r = RunningAvg::new(SimDuration::from_secs(1));
        assert_eq!(r.value(), SimDuration::from_secs(1));
        r.observe(SimDuration::from_secs(3));
        assert_eq!(r.value(), SimDuration::from_secs(3));
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn cumulative_average() {
        let mut r = RunningAvg::new(SimDuration::ZERO);
        r.observe(SimDuration::from_secs(1));
        r.observe(SimDuration::from_secs(2));
        r.observe(SimDuration::from_secs(3));
        assert_eq!(r.value(), SimDuration::from_secs(2));
    }

    #[test]
    fn no_overflow_on_many_observations() {
        let mut r = RunningAvg::new(SimDuration::ZERO);
        for _ in 0..1_000_000 {
            r.observe(SimDuration::from_secs(1_000));
        }
        assert_eq!(r.value(), SimDuration::from_secs(1_000));
    }

    #[test]
    fn ewma_seeds_with_first_value() {
        let mut e = Ewma::new(0.5, SimDuration::from_secs(9));
        assert_eq!(e.value(), SimDuration::from_secs(9));
        e.observe(SimDuration::from_secs(4));
        assert_eq!(e.value(), SimDuration::from_secs(4));
        e.observe(SimDuration::from_secs(8));
        assert_eq!(e.value(), SimDuration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn ewma_converges_toward_constant() {
        let mut e = Ewma::new(0.2, SimDuration::ZERO);
        for _ in 0..100 {
            e.observe(SimDuration::from_millis(500));
        }
        let v = e.value().as_millis_f64();
        assert!((v - 500.0).abs() < 1.0, "v = {v}");
    }
}
