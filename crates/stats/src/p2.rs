//! The P² (piecewise-parabolic) streaming quantile estimator.
//!
//! Jain & Chlamtac's algorithm estimates a single quantile in O(1) memory
//! by maintaining five markers: the minimum, the maximum, the target
//! quantile, and the two midpoints on either side of it. Marker heights are
//! nudged toward their ideal positions with a parabolic (falling back to
//! linear) interpolation as observations stream in.
//!
//! In this workspace it backs the million-transaction `exp-scale` regime,
//! where buffering per-transaction response times for an exact end-of-run
//! quantile would cost memory proportional to the committed-transaction
//! count. For the paper-regime reports the [`crate::LogHistogram`] remains
//! the serialized source of truth; P² is the O(1) cross-check and the
//! scale-regime observable.

/// Streaming estimator of one quantile `q` in O(1) memory (the P²
/// algorithm of Jain & Chlamtac, CACM 1985).
///
/// ```
/// use ccsim_stats::P2Quantile;
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 1..=10_000 {
///     p95.add(f64::from(i));
/// }
/// let est = p95.quantile();
/// assert!((est - 9_500.0).abs() < 100.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// Target quantile in `(0, 1)`.
    q: f64,
    /// Marker heights (estimated values at the marker positions).
    heights: [f64; 5],
    /// Actual marker positions, 1-based observation ranks.
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// A new estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile this estimator tracks.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        if self.count < 5 {
            // Bootstrap: collect the first five observations sorted.
            let n = self.count as usize;
            self.heights[n] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing x and update the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        // Shift positions of markers above the cell; advance desired ones.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i];
            let step_dn = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && step_up > 1.0) || (d <= -1.0 && step_dn < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by
    /// `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction is non-monotone.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate.
    ///
    /// With fewer than five observations this is the exact sample quantile
    /// (nearest-rank on the sorted prefix); 0 if empty.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        let n = self.count as usize;
        if n == 0 {
            return 0.0;
        }
        if n < 5 {
            let mut prefix: Vec<f64> = self.heights[..n].to_vec();
            prefix.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
            return prefix[rank - 1];
        }
        self.heights[2]
    }

    /// Reset to the empty state, keeping the target quantile.
    pub fn reset(&mut self) {
        *self = P2Quantile::new(self.q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile of a buffered sample, the reference the
    /// streaming estimate is judged against.
    fn exact_quantile(xs: &[f64], q: f64) -> f64 {
        let mut s = xs.to_vec();
        s.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    #[test]
    fn empty_and_tiny_prefixes_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.quantile(), 0.0);
        p.add(7.0);
        assert_eq!(p.quantile(), 7.0);
        p.add(3.0);
        p.add(11.0);
        // Exact median of {3, 7, 11}.
        assert_eq!(p.quantile(), 7.0);
    }

    #[test]
    fn median_of_uniform_ramp() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_001 {
            p.add(f64::from(i));
        }
        assert!((p.quantile() - 5_000.0).abs() < 50.0, "{}", p.quantile());
    }

    #[test]
    fn paper_example_sequence() {
        // The worked example from Jain & Chlamtac's paper (20 observations,
        // median): the published final marker heights give q ≈ 0.74.
        let obs = [
            0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92, 34.60, 10.28, 1.47,
            0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37,
        ];
        let mut p = P2Quantile::new(0.5);
        for x in obs {
            p.add(x);
        }
        // The paper's Table 1 ends with the middle marker at height 4.44
        // (P² is deliberately approximate on small skewed samples; it
        // converges on long streams, which the property tests verify).
        assert!(
            (p.quantile() - 4.44).abs() < 0.01,
            "estimate {} vs published 4.44",
            p.quantile()
        );
    }

    #[test]
    fn constant_sequence_is_exact() {
        // Degenerate distribution: every marker collapses onto the constant,
        // so the estimate must be exact for any quantile.
        for q in [0.1, 0.5, 0.95, 0.99] {
            let mut p = P2Quantile::new(q);
            for _ in 0..10_000 {
                p.add(42.5);
            }
            assert_eq!(p.quantile(), 42.5, "q={q}");
        }
    }

    #[test]
    fn bimodal_sequence_tracks_the_populated_mode() {
        // Two far-apart modes (1.0 and 1001.0), 30/70 split, interleaved
        // deterministically. The median sits in the heavy mode; p10 in the
        // light one. The estimate must land in (or very near) the right
        // mode — the classic P² failure mode is drifting into the gap.
        let xs: Vec<f64> = (0..20_000)
            .map(|i| if i % 10 < 3 { 1.0 } else { 1_001.0 })
            .collect();
        let mut p50 = P2Quantile::new(0.5);
        let mut p10 = P2Quantile::new(0.1);
        for &x in &xs {
            p50.add(x);
            p10.add(x);
        }
        let exact50 = exact_quantile(&xs, 0.5);
        let exact10 = exact_quantile(&xs, 0.1);
        assert_eq!(exact50, 1_001.0);
        assert_eq!(exact10, 1.0);
        assert!(
            (p50.quantile() - exact50).abs() < 100.0,
            "p50 {} drifted into the gap",
            p50.quantile()
        );
        assert!(
            (p10.quantile() - exact10).abs() < 100.0,
            "p10 {} drifted into the gap",
            p10.quantile()
        );
    }

    #[test]
    fn monotone_ramps_stay_tight() {
        // Ascending and descending ramps: quantiles of 1..=n are exactly
        // q*n, and order must not matter much to the estimate.
        let n = 50_000;
        for q in [0.5, 0.95, 0.99] {
            let mut asc = P2Quantile::new(q);
            let mut desc = P2Quantile::new(q);
            for i in 1..=n {
                asc.add(f64::from(i));
                desc.add(f64::from(n - i + 1));
            }
            let exact = q * f64::from(n);
            for (label, est) in [("asc", asc.quantile()), ("desc", desc.quantile())] {
                let rel = (est - exact).abs() / exact;
                assert!(rel < 0.02, "q={q} {label}: {est} vs {exact} (rel {rel})");
            }
        }
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut p = P2Quantile::new(0.9);
        for i in 0..100 {
            p.add(f64::from(i));
        }
        p.reset();
        assert_eq!(p.count(), 0);
        assert_eq!(p.quantile(), 0.0);
        assert_eq!(p.q(), 0.9);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
