//! Property tests: server pools and disk arrays conserve requests and
//! account busy time exactly under arbitrary workloads.

use ccsim_des::{SimDuration, SimTime};
use ccsim_resources::{DiskArray, Priority, Request, ServerPool};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Job {
    duration_ms: u64,
    high: bool,
}

fn jobs() -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(
        (1u64..50, any::<bool>()).prop_map(|(duration_ms, high)| Job { duration_ms, high }),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Drive a pool to completion: every submitted job completes exactly
    /// once, total busy time equals the sum of services, and each
    /// completion time is consistent.
    #[test]
    fn pool_conserves_jobs(jobs in jobs(), servers in 1usize..5) {
        let mut pool: ServerPool<usize> = ServerPool::new(servers);
        let t0 = SimTime::ZERO;
        // Event list: (completion time, server).
        let mut events: Vec<(SimTime, usize)> = Vec::new();
        for (i, j) in jobs.iter().enumerate() {
            if let Some(s) = pool.submit(
                t0,
                Request {
                    payload: i,
                    duration: SimDuration::from_millis(j.duration_ms),
                    priority: if j.high { Priority::High } else { Priority::Normal },
                },
            ) {
                events.push((s.completes_at, s.server));
            }
        }
        let mut done: Vec<usize> = Vec::new();
        while !events.is_empty() {
            // Pop the earliest completion (FIFO tie-break by insertion).
            let ix = events
                .iter()
                .enumerate()
                .min_by_key(|(pos, (at, _))| (*at, *pos))
                .map(|(pos, _)| pos)
                .unwrap();
            let (at, server) = events.remove(ix);
            let (payload, next) = pool.complete(at, server);
            done.push(payload);
            if let Some(s) = next {
                prop_assert_eq!(s.server, server);
                events.push((s.completes_at, s.server));
            }
        }
        // Conservation: all jobs completed exactly once.
        let mut sorted = done.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), jobs.len());
        prop_assert_eq!(pool.served(), jobs.len() as u64);
        prop_assert_eq!(pool.queue_len(), 0);
        prop_assert_eq!(pool.busy_servers(), 0);
        // Busy accounting: exactly the sum of all service demands.
        let total_ms: u64 = jobs.iter().map(|j| j.duration_ms).sum();
        prop_assert_eq!(
            pool.busy_micros(SimTime::from_secs(1_000_000)),
            total_ms * 1_000
        );
        // High-priority jobs never finish after lower-priority jobs that
        // were queued at the same time... (covered by ordering tests in the
        // unit suite; here we only demand conservation.)
    }

    /// The same conservation property for a disk array with random routing.
    #[test]
    fn disk_array_conserves_jobs(
        assignments in proptest::collection::vec((0usize..4, 1u64..40), 1..60)
    ) {
        let mut disks: DiskArray<usize> = DiskArray::new(4);
        let t0 = SimTime::ZERO;
        let mut events: Vec<(SimTime, usize)> = Vec::new();
        for (i, &(disk, ms)) in assignments.iter().enumerate() {
            if let Some(s) = disks.submit(t0, disk, i, SimDuration::from_millis(ms)) {
                events.push((s.completes_at, s.disk));
            }
        }
        let mut completed = 0usize;
        while !events.is_empty() {
            let ix = events
                .iter()
                .enumerate()
                .min_by_key(|(pos, (at, _))| (*at, *pos))
                .map(|(pos, _)| pos)
                .unwrap();
            let (at, disk) = events.remove(ix);
            let (_, next) = disks.complete(at, disk);
            completed += 1;
            if let Some(s) = next {
                prop_assert_eq!(s.disk, disk);
                events.push((s.completes_at, s.disk));
            }
        }
        prop_assert_eq!(completed, assignments.len());
        prop_assert_eq!(disks.queued(), 0);
        let total_ms: u64 = assignments.iter().map(|&(_, ms)| ms).sum();
        prop_assert_eq!(
            disks.busy_micros(SimTime::from_secs(1_000_000)),
            total_ms * 1_000
        );
    }
}
