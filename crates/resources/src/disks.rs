//! The partitioned disk array.
//!
//! "Our I/O model is that of a partitioned database, where the data in the
//! database is spread out across all of the disks. There is a queue
//! associated with each of the I/O servers." (paper §3). Objects map to
//! disks statically (`object_id mod num_disks`), which — because the
//! workload draws objects uniformly — is statistically identical to the
//! paper's uniform random disk choice while keeping runs deterministic.

use ccsim_des::{SimDuration, SimTime};

use crate::pool::{Priority, Request, ServerPool, Started};

/// An array of single-server FCFS disks.
#[derive(Debug)]
pub struct DiskArray<T> {
    disks: Vec<ServerPool<T>>,
}

/// Identifies a request in service: which disk it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskStarted {
    /// Index of the disk serving the request.
    pub disk: usize,
    /// Absolute completion time.
    pub completes_at: SimTime,
}

impl<T> DiskArray<T> {
    /// Create an array of `n` disks.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a disk array needs at least one disk");
        DiskArray {
            disks: (0..n).map(|_| ServerPool::new(1)).collect(),
        }
    }

    /// Read-only peek at the payload in service on `disk`, if any (see
    /// [`ServerPool::in_service`]).
    #[must_use]
    pub fn in_service(&self, disk: usize) -> Option<&T> {
        self.disks.get(disk).and_then(|d| d.in_service(0))
    }

    /// Number of disks.
    #[must_use]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// The disk that stores `object_id` (static partitioning).
    #[must_use]
    pub fn route(&self, object_id: u64) -> usize {
        (object_id % self.disks.len() as u64) as usize
    }

    /// Submit an I/O of `duration` for `payload` to `disk`. Returns the
    /// completion time if the disk was idle, `None` if queued.
    pub fn submit(
        &mut self,
        now: SimTime,
        disk: usize,
        payload: T,
        duration: SimDuration,
    ) -> Option<DiskStarted> {
        self.disks[disk]
            .submit(
                now,
                Request {
                    payload,
                    duration,
                    priority: Priority::Normal,
                },
            )
            .map(|s: Started| DiskStarted {
                disk,
                completes_at: s.completes_at,
            })
    }

    /// Retire the I/O on `disk`; if another request was queued there it
    /// starts and its completion time is returned.
    pub fn complete(&mut self, now: SimTime, disk: usize) -> (T, Option<DiskStarted>) {
        let (payload, next) = self.disks[disk].complete(now, 0);
        (
            payload,
            next.map(|s| DiskStarted {
                disk,
                completes_at: s.completes_at,
            }),
        )
    }

    /// Start an I/O on `disk` immediately **iff** it is idle, without
    /// storing a payload (the uncontended fast path; retire with
    /// [`DiskArray::complete_direct`]). Returns `None` — submitting
    /// nothing — when the disk is busy.
    pub fn try_submit_direct(
        &mut self,
        now: SimTime,
        disk: usize,
        duration: SimDuration,
    ) -> Option<DiskStarted> {
        self.disks[disk]
            .try_submit_direct(now, duration)
            .map(|s| DiskStarted {
                disk,
                completes_at: s.completes_at,
            })
    }

    /// Retire a payload-less direct I/O on `disk`; if a request was queued
    /// there it starts and is returned (it carries a payload and retires
    /// through [`DiskArray::complete`]).
    pub fn complete_direct(&mut self, now: SimTime, disk: usize) -> Option<DiskStarted> {
        self.disks[disk]
            .complete_direct(now, 0)
            .map(|s| DiskStarted {
                disk,
                completes_at: s.completes_at,
            })
    }

    /// Total requests waiting across all disk queues.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.disks.iter().map(ServerPool::queue_len).sum()
    }

    /// Per-disk `(queue length, busy)` snapshot (diagnostics).
    #[must_use]
    pub fn queue_snapshot(&self) -> Vec<(usize, bool)> {
        self.disks
            .iter()
            .map(|d| (d.queue_len(), d.busy_servers() > 0))
            .collect()
    }

    /// Cumulative busy time summed over all disks, including in-flight
    /// partial service.
    #[must_use]
    pub fn busy_micros(&self, now: SimTime) -> u64 {
        self.disks.iter().map(|d| d.busy_micros(now)).sum()
    }

    /// Total I/Os completed across all disks.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.disks.iter().map(ServerPool::served).sum()
    }

    /// ∫ (queue length) dt summed over all disk queues, µs·requests.
    #[must_use]
    pub fn queue_integral_us(&self, now: SimTime) -> u64 {
        self.disks.iter().map(|d| d.queue_integral_us(now)).sum()
    }

    /// Total queue-waiting time of I/Os that have entered service, µs.
    #[must_use]
    pub fn total_wait_us(&self) -> u64 {
        self.disks.iter().map(ServerPool::total_wait_us).sum()
    }

    /// Waiting time accrued up to `now` by I/Os still queued, µs.
    #[must_use]
    pub fn pending_wait_us(&self, now: SimTime) -> u64 {
        self.disks.iter().map(|d| d.pending_wait_us(now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_static_and_covers_all_disks() {
        let d: DiskArray<()> = DiskArray::new(4);
        assert_eq!(d.route(0), 0);
        assert_eq!(d.route(5), 1);
        assert_eq!(d.route(7), 3);
        let mut seen = [false; 4];
        for o in 0..100 {
            seen[d.route(o)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn disks_queue_independently() {
        let mut d = DiskArray::new(2);
        let t0 = SimTime::ZERO;
        let io = SimDuration::from_millis(35);
        assert!(d.submit(t0, 0, 'a', io).is_some());
        assert!(d.submit(t0, 1, 'b', io).is_some());
        // Disk 0 busy: queues.
        assert!(d.submit(t0, 0, 'c', io).is_none());
        assert_eq!(d.queued(), 1);

        let (done, next) = d.complete(SimTime::from_millis(35), 0);
        assert_eq!(done, 'a');
        let next = next.unwrap();
        assert_eq!(next.disk, 0);
        assert_eq!(next.completes_at, SimTime::from_millis(70));
        assert_eq!(d.queued(), 0);
    }

    #[test]
    fn busy_accounting_aggregates() {
        let mut d = DiskArray::new(2);
        let t0 = SimTime::ZERO;
        let io = SimDuration::from_millis(10);
        let a = d.submit(t0, 0, 1, io).unwrap();
        d.submit(t0, 1, 2, io).unwrap();
        d.complete(a.completes_at, 0);
        assert_eq!(d.busy_micros(SimTime::from_millis(10)), 20_000);
        assert_eq!(d.served(), 1);
    }

    #[test]
    fn direct_path_interleaves_with_classic() {
        let mut d = DiskArray::new(2);
        let t0 = SimTime::ZERO;
        let io = SimDuration::from_millis(35);
        let a = d.try_submit_direct(t0, 0, io).expect("idle disk starts");
        assert_eq!(a.completes_at, SimTime::from_millis(35));
        // Busy disk declines the direct path; a classic submit queues.
        assert!(d.try_submit_direct(t0, 0, io).is_none());
        assert!(d.submit(t0, 0, 'q', io).is_none());
        assert_eq!(d.queued(), 1);
        // Retiring the direct I/O starts the queued classic one.
        let next = d
            .complete_direct(a.completes_at, 0)
            .expect("queued I/O starts");
        assert_eq!(next.disk, 0);
        assert_eq!(next.completes_at, SimTime::from_millis(70));
        let (done, none) = d.complete(next.completes_at, 0);
        assert_eq!(done, 'q');
        assert!(none.is_none());
        assert_eq!(d.served(), 2);
        assert_eq!(d.total_wait_us(), 35_000);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        let _: DiskArray<()> = DiskArray::new(0);
    }

    #[test]
    fn wait_accounting_aggregates_across_disks() {
        let mut d = DiskArray::new(2);
        let t0 = SimTime::ZERO;
        let io = SimDuration::from_millis(10);
        let a = d.submit(t0, 0, 1, io).unwrap();
        assert!(d.submit(t0, 0, 2, io).is_none()); // waits 10 ms on disk 0
        d.submit(t0, 1, 3, io).unwrap();
        let (_, next) = d.complete(a.completes_at, 0);
        let next = next.unwrap();
        d.complete(next.completes_at, 0);
        let end = SimTime::from_millis(20);
        assert_eq!(d.total_wait_us(), 10_000);
        assert_eq!(d.queue_integral_us(end), 10_000);
        assert_eq!(d.pending_wait_us(end), 0);
    }
}
