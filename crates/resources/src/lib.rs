//! `ccsim-resources` — the physical queuing model of the paper's Figure 2.
//!
//! Two resource types underlie every logical service in the model:
//!
//! * [`ServerPool`] — a pool of identical CPU servers fed by one global
//!   two-class FCFS queue (concurrency-control requests get [`Priority::High`]);
//! * [`DiskArray`] — a partitioned disk array, one FCFS queue per disk, with
//!   static object→disk routing.
//!
//! Both are *passive* components driven by the caller's event calendar, and
//! both account cumulative busy time so the experiment harness can compute
//! the paper's total and useful utilizations.
//!
//! The "infinite resources" assumption needs no component here: the core
//! simulator simply schedules every service to complete after its nominal
//! duration without queueing.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod disks;
mod pool;

pub use disks::{DiskArray, DiskStarted};
pub use pool::{Priority, Request, ServerPool, Started};
