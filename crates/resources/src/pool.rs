//! A pool of identical servers fed by one two-class FCFS queue.
//!
//! This models the paper's CPU resource: "the CPU servers may be thought of
//! as being a pool of servers, all identical and serving one global CPU
//! queue. Requests in the CPU queue are serviced FCFS, except that
//! concurrency control requests have priority over all other service
//! requests." A pool of size 1 also serves as a single disk server.
//!
//! The pool is *passive*: it never schedules events itself. `submit` either
//! starts service (returning the completion time for the caller to put on
//! its event calendar) or queues the request; `complete` retires a finished
//! request and, if work is waiting, starts the next one on the freed server.

use std::collections::VecDeque;

use ccsim_des::{SimDuration, SimTime};

/// Service priority class. `High` models concurrency-control requests, which
/// the paper gives priority over all other CPU work. Within a class the
/// discipline is FCFS; the classes are non-preemptive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Concurrency-control requests.
    High,
    /// Object accesses and other work.
    #[default]
    Normal,
}

/// A service request carrying an opaque payload back to the caller at
/// completion time.
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Caller context returned by [`ServerPool::complete`].
    pub payload: T,
    /// Service demand.
    pub duration: SimDuration,
    /// Queueing class.
    pub priority: Priority,
}

/// Outcome of starting a request on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started {
    /// Which server the request occupies.
    pub server: usize,
    /// Absolute time at which service completes.
    pub completes_at: SimTime,
}

/// `payload` is `None` for services started through the payload-less
/// direct path ([`ServerPool::try_submit_direct`]), where the caller keeps
/// its own context and retires with [`ServerPool::complete_direct`].
#[derive(Debug)]
struct InService<T> {
    payload: Option<T>,
    started_at: SimTime,
    duration: SimDuration,
}

/// A request waiting in queue, stamped with its enqueue time so waiting
/// time can be accounted per request when it dequeues.
#[derive(Debug)]
struct Queued<T> {
    enqueued_at: SimTime,
    req: Request<T>,
}

/// A pool of `n` identical servers with a shared two-class FCFS queue.
///
/// Besides busy time, the pool keeps two *independent* waiting-time
/// accounts: the time integral of the queue length
/// ([`ServerPool::queue_integral_us`], advanced lazily at every queue
/// change) and the per-request waits ([`ServerPool::total_wait_us`] for
/// dequeued requests plus [`ServerPool::pending_wait_us`] for those still
/// queued). By the operational form of Little's law the two accounts must
/// agree exactly at every instant; an auditor can use the identity as a
/// flow-balance check.
#[derive(Debug)]
pub struct ServerPool<T> {
    servers: Vec<Option<InService<T>>>,
    free: Vec<usize>,
    high: VecDeque<Queued<T>>,
    normal: VecDeque<Queued<T>>,
    completed_busy_us: u64,
    served: u64,
    /// ∫ queue_len dt up to `queue_changed_at`, µs·requests.
    queue_integral_us: u64,
    /// Instant of the last enqueue/dequeue (the integral is exact up to
    /// here; accessors extend it to `now` at the current queue length).
    queue_changed_at: SimTime,
    /// Summed waiting time of requests that already left the queue, µs.
    total_wait_us: u64,
}

impl<T> ServerPool<T> {
    /// Create a pool of `n` servers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a server pool needs at least one server");
        ServerPool {
            servers: (0..n).map(|_| None).collect(),
            free: (0..n).rev().collect(),
            high: VecDeque::new(),
            normal: VecDeque::new(),
            completed_busy_us: 0,
            served: 0,
            queue_integral_us: 0,
            queue_changed_at: SimTime::ZERO,
            total_wait_us: 0,
        }
    }

    /// Extend the queue-length integral up to `now` at the current length.
    fn advance_queue_clock(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.queue_changed_at).as_micros();
        self.queue_integral_us += self.queue_len() as u64 * elapsed;
        self.queue_changed_at = now;
    }

    /// Read-only peek at the payload of the request `server` is currently
    /// serving, if any. Speculative worker lanes use this to resolve a
    /// planned completion event's target without mutating the pool; the
    /// answer is a snapshot — an earlier event in the same window may
    /// retire the request before the completion is actually merged.
    #[must_use]
    pub fn in_service(&self, server: usize) -> Option<&T> {
        self.servers
            .get(server)
            .and_then(|s| s.as_ref())
            .and_then(|s| s.payload.as_ref())
    }

    /// Number of servers in the pool.
    #[must_use]
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of requests waiting (not in service).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Number of servers currently serving a request.
    #[must_use]
    pub fn busy_servers(&self) -> usize {
        self.servers.len() - self.free.len()
    }

    /// Total requests completed so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Submit a request at time `now`. Returns `Some` if service starts
    /// immediately (the caller must schedule the completion), `None` if the
    /// request joined the queue.
    pub fn submit(&mut self, now: SimTime, req: Request<T>) -> Option<Started> {
        if let Some(server) = self.free.pop() {
            Some(self.start_on(server, now, req))
        } else {
            self.advance_queue_clock(now);
            let queued = Queued {
                enqueued_at: now,
                req,
            };
            match queued.req.priority {
                Priority::High => self.high.push_back(queued),
                Priority::Normal => self.normal.push_back(queued),
            }
            None
        }
    }

    /// Start service immediately **iff** a server is idle, without storing
    /// a payload (the caller keeps its own context and must retire with
    /// [`ServerPool::complete_direct`]). Returns `None` — submitting
    /// nothing — when all servers are busy.
    ///
    /// This is the uncontended fast path: an idle server implies an empty
    /// queue (work only queues when every server is busy), so starting here
    /// touches neither the queue nor its clock — the accounting is
    /// identical to [`ServerPool::submit`] on a free server.
    pub fn try_submit_direct(&mut self, now: SimTime, duration: SimDuration) -> Option<Started> {
        let server = self.free.pop()?;
        debug_assert_eq!(self.queue_len(), 0, "free server with a non-empty queue");
        debug_assert!(self.servers[server].is_none());
        self.servers[server] = Some(InService {
            payload: None,
            started_at: now,
            duration,
        });
        Some(Started {
            server,
            completes_at: now + duration,
        })
    }

    /// Retire the request on `server` at time `now`. Returns the finished
    /// payload and, if queued work exists, the next request started on the
    /// same server (the caller must schedule its completion).
    ///
    /// # Panics
    /// Panics if `server` is idle — completions must match starts — or if
    /// the service was started payload-less via
    /// [`ServerPool::try_submit_direct`].
    pub fn complete(&mut self, now: SimTime, server: usize) -> (T, Option<Started>) {
        let (payload, next) = self.finish(now, server);
        (
            payload.expect("complete() for a direct service; use complete_direct()"),
            next,
        )
    }

    /// Retire a payload-less direct service on `server` at time `now`.
    /// If queued work exists, the next request starts on the freed server
    /// and is returned (the caller must schedule its completion — that
    /// request carries a payload and retires through
    /// [`ServerPool::complete`]). Accounting is identical to
    /// [`ServerPool::complete`].
    ///
    /// # Panics
    /// Panics if `server` is idle.
    pub fn complete_direct(&mut self, now: SimTime, server: usize) -> Option<Started> {
        let (payload, next) = self.finish(now, server);
        debug_assert!(
            payload.is_none(),
            "complete_direct() for a payload-carrying service; use complete()"
        );
        next
    }

    fn finish(&mut self, now: SimTime, server: usize) -> (Option<T>, Option<Started>) {
        let svc = self.servers[server]
            .take()
            .expect("completion for an idle server");
        debug_assert_eq!(
            svc.started_at + svc.duration,
            now,
            "completion time mismatch"
        );
        self.completed_busy_us += svc.duration.as_micros();
        self.served += 1;
        if self.queue_len() > 0 {
            // Extend the integral at the pre-dequeue length.
            self.advance_queue_clock(now);
        }
        let queued = self.high.pop_front().or_else(|| self.normal.pop_front());
        let next = queued.map(|q| {
            self.total_wait_us += now.saturating_since(q.enqueued_at).as_micros();
            self.start_on(server, now, q.req)
        });
        if next.is_none() {
            self.free.push(server);
        }
        (svc.payload, next)
    }

    fn start_on(&mut self, server: usize, now: SimTime, req: Request<T>) -> Started {
        debug_assert!(self.servers[server].is_none());
        let completes_at = now + req.duration;
        self.servers[server] = Some(InService {
            payload: Some(req.payload),
            started_at: now,
            duration: req.duration,
        });
        Started {
            server,
            completes_at,
        }
    }

    /// Cumulative busy time up to `now`, including in-flight partial
    /// service. Utilization over a window is the difference of two calls
    /// divided by `window × num_servers`.
    #[must_use]
    pub fn busy_micros(&self, now: SimTime) -> u64 {
        let in_flight: u64 = self
            .servers
            .iter()
            .flatten()
            .map(|svc| {
                now.saturating_since(svc.started_at)
                    .as_micros()
                    .min(svc.duration.as_micros())
            })
            .sum();
        self.completed_busy_us + in_flight
    }

    /// ∫ (queue length) dt from time zero to `now`, in µs·requests.
    /// Counts waiting requests only, not those in service.
    #[must_use]
    pub fn queue_integral_us(&self, now: SimTime) -> u64 {
        let elapsed = now.saturating_since(self.queue_changed_at).as_micros();
        self.queue_integral_us + self.queue_len() as u64 * elapsed
    }

    /// Total queue-waiting time of requests that have entered service, µs.
    #[must_use]
    pub fn total_wait_us(&self) -> u64 {
        self.total_wait_us
    }

    /// Waiting time accrued up to `now` by requests still in queue, µs.
    #[must_use]
    pub fn pending_wait_us(&self, now: SimTime) -> u64 {
        self.high
            .iter()
            .chain(self.normal.iter())
            .map(|q| now.saturating_since(q.enqueued_at).as_micros())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(payload: u32, ms: u64) -> Request<u32> {
        Request {
            payload,
            duration: SimDuration::from_millis(ms),
            priority: Priority::Normal,
        }
    }

    fn high(payload: u32, ms: u64) -> Request<u32> {
        Request {
            priority: Priority::High,
            ..req(payload, ms)
        }
    }

    #[test]
    fn single_server_fcfs() {
        let mut p = ServerPool::new(1);
        let t0 = SimTime::ZERO;
        let s = p.submit(t0, req(1, 10)).expect("idle server starts");
        assert_eq!(s.completes_at, SimTime::from_millis(10));
        assert!(p.submit(t0, req(2, 10)).is_none());
        assert!(p.submit(t0, req(3, 10)).is_none());
        assert_eq!(p.queue_len(), 2);

        let (done, next) = p.complete(SimTime::from_millis(10), s.server);
        assert_eq!(done, 1);
        let next = next.expect("queued work starts");
        assert_eq!(next.completes_at, SimTime::from_millis(20));
        let (done, next) = p.complete(SimTime::from_millis(20), next.server);
        assert_eq!(done, 2);
        let next = next.unwrap();
        let (done, next) = p.complete(SimTime::from_millis(30), next.server);
        assert_eq!(done, 3);
        assert!(next.is_none());
        assert_eq!(p.served(), 3);
    }

    #[test]
    fn high_priority_jumps_queue_but_not_service() {
        let mut p = ServerPool::new(1);
        let t0 = SimTime::ZERO;
        let s = p.submit(t0, req(1, 10)).unwrap();
        assert!(p.submit(t0, req(2, 10)).is_none());
        assert!(p.submit(t0, high(9, 1)).is_none());
        // Non-preemptive: request 1 finishes first, then the high-priority
        // request 9 overtakes request 2.
        let (done, next) = p.complete(SimTime::from_millis(10), s.server);
        assert_eq!(done, 1);
        let next = next.unwrap();
        assert_eq!(next.completes_at, SimTime::from_millis(11));
        let (done, _) = p.complete(SimTime::from_millis(11), next.server);
        assert_eq!(done, 9);
    }

    #[test]
    fn multiple_servers_run_in_parallel() {
        let mut p = ServerPool::new(3);
        let t0 = SimTime::ZERO;
        let a = p.submit(t0, req(1, 10)).unwrap();
        let b = p.submit(t0, req(2, 20)).unwrap();
        let c = p.submit(t0, req(3, 30)).unwrap();
        assert_ne!(a.server, b.server);
        assert_ne!(b.server, c.server);
        assert_eq!(p.busy_servers(), 3);
        assert!(p.submit(t0, req(4, 5)).is_none());

        let (done, next) = p.complete(SimTime::from_millis(10), a.server);
        assert_eq!(done, 1);
        // Request 4 starts on the freed server.
        let next = next.unwrap();
        assert_eq!(next.server, a.server);
        assert_eq!(next.completes_at, SimTime::from_millis(15));
    }

    #[test]
    fn busy_micros_tracks_partial_service() {
        let mut p = ServerPool::new(2);
        let t0 = SimTime::ZERO;
        let a = p.submit(t0, req(1, 100)).unwrap();
        p.submit(t0, req(2, 100)).unwrap();
        // Halfway through, both servers have accrued 50 ms each.
        assert_eq!(p.busy_micros(SimTime::from_millis(50)), 100_000);
        let (_, _) = p.complete(SimTime::from_millis(100), a.server);
        // Server a contributed its full 100 ms to the completed pot.
        assert_eq!(p.busy_micros(SimTime::from_millis(100)), 200_000);
    }

    #[test]
    fn idle_pool_accrues_nothing() {
        let p: ServerPool<()> = ServerPool::new(4);
        assert_eq!(p.busy_micros(SimTime::from_secs(100)), 0);
        assert_eq!(p.busy_servers(), 0);
        assert_eq!(p.queue_len(), 0);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn completing_idle_server_panics() {
        let mut p: ServerPool<()> = ServerPool::new(1);
        let _ = p.complete(SimTime::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _: ServerPool<()> = ServerPool::new(0);
    }

    #[test]
    fn fifo_within_class() {
        let mut p = ServerPool::new(1);
        let t0 = SimTime::ZERO;
        let s = p.submit(t0, req(0, 1)).unwrap();
        for i in 1..=5 {
            assert!(p.submit(t0, req(i, 1)).is_none());
        }
        let mut order = Vec::new();
        let mut cur = s;
        let mut now = SimTime::from_millis(1);
        loop {
            let (done, next) = p.complete(now, cur.server);
            order.push(done);
            match next {
                Some(n) => {
                    now = n.completes_at;
                    cur = n;
                }
                None => break,
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn queue_integral_matches_per_request_waits() {
        // One server; three requests land at t=0. The second waits 10 ms,
        // the third 20 ms. The queue holds 2 requests for the first 10 ms
        // and 1 for the next 10 ms: ∫q dt = 2·10 + 1·10 = 30 ms.
        let mut p = ServerPool::new(1);
        let t0 = SimTime::ZERO;
        let s = p.submit(t0, req(1, 10)).unwrap();
        assert!(p.submit(t0, req(2, 10)).is_none());
        assert!(p.submit(t0, req(3, 10)).is_none());

        // Mid-flight the identity already holds: integral == pending waits.
        let mid = SimTime::from_millis(5);
        assert_eq!(p.queue_integral_us(mid), 10_000);
        assert_eq!(p.total_wait_us(), 0);
        assert_eq!(p.pending_wait_us(mid), 10_000);

        let (_, next) = p.complete(SimTime::from_millis(10), s.server);
        let next = next.unwrap();
        let (_, next) = p.complete(SimTime::from_millis(20), next.server);
        let next = next.unwrap();
        let (_, next) = p.complete(SimTime::from_millis(30), next.server);
        assert!(next.is_none());

        let end = SimTime::from_millis(30);
        assert_eq!(p.queue_integral_us(end), 30_000);
        assert_eq!(p.total_wait_us(), 30_000);
        assert_eq!(p.pending_wait_us(end), 0);
        assert_eq!(
            p.queue_integral_us(end),
            p.total_wait_us() + p.pending_wait_us(end),
            "flow balance must be exact"
        );
    }

    #[test]
    fn immediate_starts_accrue_no_wait() {
        let mut p = ServerPool::new(2);
        let t0 = SimTime::from_secs(1);
        let a = p.submit(t0, req(1, 10)).unwrap();
        let b = p.submit(t0, req(2, 10)).unwrap();
        p.complete(a.completes_at, a.server);
        p.complete(b.completes_at, b.server);
        let end = SimTime::from_secs(2);
        assert_eq!(p.queue_integral_us(end), 0);
        assert_eq!(p.total_wait_us(), 0);
        assert_eq!(p.pending_wait_us(end), 0);
    }

    #[test]
    fn direct_path_matches_classic_accounting() {
        // Drive the same schedule through the classic submit/complete pair
        // and through the direct fast path; every externally visible
        // account must agree.
        let run = |direct: bool| {
            let mut p: ServerPool<u32> = ServerPool::new(1);
            let t0 = SimTime::ZERO;
            let s = if direct {
                p.try_submit_direct(t0, SimDuration::from_millis(10))
                    .expect("idle server starts")
            } else {
                p.submit(t0, req(1, 10)).expect("idle server starts")
            };
            assert_eq!(s.completes_at, SimTime::from_millis(10));
            // A classic request queues behind it either way.
            assert!(p.submit(t0, req(2, 10)).is_none());
            let next = if direct {
                p.complete_direct(SimTime::from_millis(10), s.server)
            } else {
                p.complete(SimTime::from_millis(10), s.server).1
            };
            let next = next.expect("queued work starts");
            let (done, none) = p.complete(next.completes_at, next.server);
            assert_eq!(done, 2);
            assert!(none.is_none());
            let end = SimTime::from_millis(20);
            (
                p.served(),
                p.busy_micros(end),
                p.queue_integral_us(end),
                p.total_wait_us(),
                p.pending_wait_us(end),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn direct_submit_declines_when_busy() {
        let mut p: ServerPool<u32> = ServerPool::new(1);
        let t0 = SimTime::ZERO;
        let s = p.submit(t0, req(1, 10)).unwrap();
        assert!(p
            .try_submit_direct(t0, SimDuration::from_millis(5))
            .is_none());
        let (done, _) = p.complete(SimTime::from_millis(10), s.server);
        assert_eq!(done, 1);
        // Freed again: the direct path starts.
        assert!(p
            .try_submit_direct(SimTime::from_millis(10), SimDuration::from_millis(5))
            .is_some());
    }

    #[test]
    #[should_panic(expected = "use complete_direct")]
    fn classic_complete_of_direct_service_panics() {
        let mut p: ServerPool<u32> = ServerPool::new(1);
        let s = p
            .try_submit_direct(SimTime::ZERO, SimDuration::from_millis(1))
            .unwrap();
        let _ = p.complete(SimTime::from_millis(1), s.server);
    }

    #[test]
    fn zero_duration_request_completes_instantly() {
        let mut p = ServerPool::new(1);
        let s = p
            .submit(
                SimTime::from_secs(1),
                Request {
                    payload: 7u32,
                    duration: SimDuration::ZERO,
                    priority: Priority::High,
                },
            )
            .unwrap();
        assert_eq!(s.completes_at, SimTime::from_secs(1));
        let (done, _) = p.complete(SimTime::from_secs(1), s.server);
        assert_eq!(done, 7);
    }
}
