//! Exact Mean Value Analysis (MVA) for closed product-form networks.
//!
//! The paper's model *without data contention* is a classic closed queuing
//! network: a delay station (the terminals), a CPU station, and a set of
//! disk stations. MVA computes its exact steady-state throughput and
//! response time by recursion over the customer population [Reiser &
//! Lavenberg 1980]:
//!
//! ```text
//! R_i(n) = S_i · (1 + Q_i(n−1))        (queueing station)
//! R_z(n) = Z                           (delay station)
//! X(n)   = n / Σ_i V_i · R_i(n)
//! Q_i(n) = X(n) · V_i · R_i(n)
//! ```
//!
//! Multi-server stations use the standard load-independent approximation
//! `R_i(n) = S_i + S_i · Q_i(n−1) / m_i`, which is exact for `m = 1` and a
//! good upper-accuracy approximation at the utilizations the experiments
//! visit.

/// One service center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Station {
    /// Mean service demand per visit, in seconds.
    pub service_s: f64,
    /// Mean number of visits per transaction.
    pub visits: f64,
    /// Number of identical servers (`0` means a pure delay — no queueing).
    pub servers: u32,
}

impl Station {
    /// A queueing station with `servers` servers.
    #[must_use]
    pub fn queueing(service_s: f64, visits: f64, servers: u32) -> Self {
        assert!(servers > 0, "queueing stations need at least one server");
        Station {
            service_s,
            visits,
            servers,
        }
    }

    /// A pure delay (infinite-server) station.
    #[must_use]
    pub fn delay(service_s: f64, visits: f64) -> Self {
        Station {
            service_s,
            visits,
            servers: 0,
        }
    }

    /// Total demand per transaction (visits × service).
    #[must_use]
    pub fn demand(&self) -> f64 {
        self.service_s * self.visits
    }
}

/// MVA solution for one population size.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaSolution {
    /// Population analyzed.
    pub population: u32,
    /// System throughput (transactions/second).
    pub throughput: f64,
    /// Mean response time over the *queueing* stations (excludes delay
    /// stations), in seconds.
    pub response_s: f64,
    /// Mean queue length at each station (same order as the input).
    pub queue_lengths: Vec<f64>,
    /// Utilization per *server* at each station (delay stations report 0).
    pub utilizations: Vec<f64>,
}

/// Solve the network for populations `1..=n`, returning the solution at `n`.
///
/// # Panics
/// Panics if `stations` is empty or `n == 0`.
#[must_use]
pub fn solve(stations: &[Station], n: u32) -> MvaSolution {
    assert!(!stations.is_empty(), "MVA needs at least one station");
    assert!(n > 0, "MVA needs a positive population");
    let k = stations.len();
    let mut q = vec![0.0_f64; k];
    let mut x = 0.0_f64;
    let mut response = 0.0_f64;
    for pop in 1..=n {
        let mut r = vec![0.0_f64; k];
        let mut cycle = 0.0;
        for (i, st) in stations.iter().enumerate() {
            r[i] = if st.servers == 0 {
                st.service_s
            } else {
                st.service_s + st.service_s * q[i] / f64::from(st.servers)
            };
            cycle += st.visits * r[i];
        }
        x = f64::from(pop) / cycle;
        for (i, st) in stations.iter().enumerate() {
            q[i] = x * st.visits * r[i];
        }
        response = stations
            .iter()
            .zip(&r)
            .filter(|(st, _)| st.servers > 0)
            .map(|(st, ri)| st.visits * ri)
            .sum();
    }
    let utilizations = stations
        .iter()
        .map(|st| {
            if st.servers == 0 {
                0.0
            } else {
                x * st.demand() / f64::from(st.servers)
            }
        })
        .collect();
    MvaSolution {
        population: n,
        throughput: x,
        response_s: response,
        queue_lengths: q,
        utilizations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_single_customer() {
        // One customer, one server, no thinking: X = 1/S, R = S.
        let s = solve(&[Station::queueing(0.5, 1.0, 1)], 1);
        assert!((s.throughput - 2.0).abs() < 1e-12);
        assert!((s.response_s - 0.5).abs() < 1e-12);
        assert!((s.queue_lengths[0] - 1.0).abs() < 1e-12);
        assert!((s.utilizations[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn machine_repairman_matches_closed_form() {
        // Classic interactive system: N=2, think Z=1 s, one server S=0.5 s.
        // MVA: n=1: R=0.5, X=1/1.5, Q=1/3.
        //      n=2: R=0.5(1+1/3)=2/3, X=2/(1+2/3)=1.2, Q=0.8.
        let stations = [Station::delay(1.0, 1.0), Station::queueing(0.5, 1.0, 1)];
        let s = solve(&stations, 2);
        assert!((s.throughput - 1.2).abs() < 1e-12);
        assert!((s.response_s - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.queue_lengths[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn saturation_approaches_bottleneck_bound() {
        // Large population: X → m / S at the bottleneck.
        let stations = [
            Station::delay(1.0, 1.0),
            Station::queueing(0.035, 10.0, 2), // disks: demand 0.175 s
            Station::queueing(0.015, 10.0, 1), // cpu: demand 0.15 s
        ];
        let s = solve(&stations, 500);
        let bound = 2.0 / 0.35; // disk bottleneck
        assert!(s.throughput <= bound + 1e-9);
        assert!(
            s.throughput > bound * 0.98,
            "X={} should approach {bound}",
            s.throughput
        );
    }

    #[test]
    fn throughput_is_monotone_in_population() {
        let stations = [Station::delay(1.0, 1.0), Station::queueing(0.05, 8.0, 1)];
        let mut last = 0.0;
        for n in 1..100 {
            let s = solve(&stations, n);
            assert!(s.throughput >= last - 1e-12, "n={n}");
            last = s.throughput;
        }
    }

    #[test]
    fn delay_only_network_is_linear() {
        // With no queueing anywhere, X = n / total_delay.
        let stations = [Station::delay(2.0, 1.0), Station::delay(0.5, 1.0)];
        let s = solve(&stations, 40);
        assert!((s.throughput - 40.0 / 2.5).abs() < 1e-9);
        assert_eq!(s.response_s, 0.0);
        assert!(s.utilizations.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn utilization_law_holds() {
        let stations = [Station::delay(1.0, 1.0), Station::queueing(0.1, 3.0, 2)];
        let s = solve(&stations, 25);
        let expect = s.throughput * 0.3 / 2.0;
        assert!((s.utilizations[1] - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive population")]
    fn zero_population_panics() {
        let _ = solve(&[Station::queueing(1.0, 1.0, 1)], 0);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn empty_network_panics() {
        let _ = solve(&[], 1);
    }
}
