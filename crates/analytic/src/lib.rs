//! `ccsim-analytic` — analytical companions to the simulator.
//!
//! The paper's whole point is that analytical and simulation studies of
//! concurrency control disagreed because of their *assumptions*; this crate
//! implements the standard analytical tools so the repository can put them
//! side by side with the simulator:
//!
//! * [`mva::solve`] — exact Mean Value Analysis of the model's closed
//!   queuing network (terminals + CPU pool + disks), the no-data-contention
//!   ground truth the simulator must match when conflicts are turned off;
//! * [`AnalyticModel`] — builds the network from [`ccsim_workload::Params`]
//!   and computes the operational bounds (bottleneck law, population bound);
//! * [`Contention`] — Gray/Tay-style first-order conflict, wait, and
//!   deadlock probability approximations, including Tay's thrashing
//!   heuristic.
//!
//! Integration tests in the workspace root validate these predictions
//! against simulation in the regimes where they are supposed to hold.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod contention;
mod model;
pub mod mva;

pub use contention::Contention;
pub use model::AnalyticModel;
pub use mva::{solve as solve_mva, MvaSolution, Station};
