//! Bridging [`Params`] to the analytical tools: build the MVA network for a
//! parameter set and compute operational bounds.

use ccsim_workload::{Params, ResourceSpec};

use crate::mva::{solve, MvaSolution, Station};

/// The no-data-contention analytical model of a parameter set.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    params: Params,
}

impl AnalyticModel {
    /// Build from validated parameters.
    ///
    /// # Panics
    /// Panics if the parameters fail validation.
    #[must_use]
    pub fn new(params: Params) -> Self {
        params
            .validate()
            .expect("AnalyticModel requires valid parameters");
        AnalyticModel { params }
    }

    /// Mean resource visits per transaction: `(cpu_visits, io_visits)`.
    /// Reads take one I/O and one CPU burst; writes one CPU burst at write
    /// time and one deferred-update I/O.
    fn visits(&self) -> (f64, f64) {
        let reads = self.params.tran_size();
        let writes = reads * self.params.write_prob;
        (reads + writes, reads + writes)
    }

    /// The closed network of the model (terminals as a delay station, the
    /// CPU pool, the disks as one pooled station — valid because each I/O
    /// picks a disk uniformly at random).
    ///
    /// Returns `None` for infinite resources (the network degenerates to
    /// pure delays; use [`AnalyticModel::infinite_resource_throughput`]).
    #[must_use]
    pub fn stations(&self) -> Option<Vec<Station>> {
        let ResourceSpec::Physical {
            num_cpus,
            num_disks,
        } = self.params.resources
        else {
            return None;
        };
        let (cpu_v, io_v) = self.visits();
        let think =
            self.params.ext_think_time.as_secs_f64() + self.params.int_think_time.as_secs_f64();
        Some(vec![
            Station::delay(think, 1.0),
            Station::queueing(self.params.obj_cpu.as_secs_f64(), cpu_v, num_cpus),
            Station::queueing(self.params.obj_io.as_secs_f64(), io_v, num_disks),
        ])
    }

    /// Exact-MVA throughput prediction with population `n` (no data
    /// contention, no mpl cap — compare against simulations with
    /// `mpl = num_terms` and a low-conflict database).
    #[must_use]
    pub fn mva(&self, n: u32) -> Option<MvaSolution> {
        self.stations().map(|s| solve(&s, n))
    }

    /// Exact-MVA throughput for a *saturated* multiprogramming cap: `n`
    /// permanently active transactions with the ready queue keeping every
    /// slot full (the think delay is served by the 200-terminal population
    /// outside the cap). Compare against simulations where
    /// `num_terms >> mpl` and the ready queue never empties.
    #[must_use]
    pub fn mva_saturated(&self, n: u32) -> Option<MvaSolution> {
        self.stations().map(|stations| {
            let no_think: Vec<Station> = stations.into_iter().filter(|s| s.servers > 0).collect();
            solve(&no_think, n)
        })
    }

    /// Throughput under infinite resources and no contention: every
    /// transaction takes exactly its service time, so
    /// `X = N / (Z + service)`.
    #[must_use]
    pub fn infinite_resource_throughput(&self) -> f64 {
        let n = f64::from(self.params.num_terms);
        let z = self.params.ext_think_time.as_secs_f64();
        let s = self.params.expected_service_time().as_secs_f64();
        n / (z + s)
    }

    /// The bottleneck bound: no schedule can exceed
    /// `min_i (servers_i / demand_i)` transactions per second.
    #[must_use]
    pub fn bottleneck_bound(&self) -> f64 {
        match self.params.resources {
            ResourceSpec::Infinite => f64::INFINITY,
            ResourceSpec::Physical {
                num_cpus,
                num_disks,
            } => {
                let (cpu_v, io_v) = self.visits();
                let cpu_demand = cpu_v * self.params.obj_cpu.as_secs_f64();
                let io_demand = io_v * self.params.obj_io.as_secs_f64();
                (f64::from(num_cpus) / cpu_demand).min(f64::from(num_disks) / io_demand)
            }
        }
    }

    /// The population bound: `X ≤ N / (Z + R_min)` where `R_min` is the
    /// no-queueing service time.
    #[must_use]
    pub fn population_bound(&self) -> f64 {
        let n = f64::from(self.params.num_terms);
        let z = self.params.ext_think_time.as_secs_f64();
        let r = self.params.expected_service_time().as_secs_f64();
        n / (z + r)
    }

    /// The smaller of the two operational bounds.
    #[must_use]
    pub fn throughput_upper_bound(&self) -> f64 {
        self.bottleneck_bound().min(self.population_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_bounds_match_paper_arithmetic() {
        // 1 CPU / 2 disks: disk demand 0.35 s → 5.71 tps bottleneck;
        // population bound 200/1.5 = 133 tps; binding bound is the disks.
        let m = AnalyticModel::new(Params::paper_baseline());
        assert!((m.bottleneck_bound() - 2.0 / 0.35).abs() < 1e-9);
        assert!((m.population_bound() - 200.0 / 1.5).abs() < 1e-9);
        assert!((m.throughput_upper_bound() - 2.0 / 0.35).abs() < 1e-9);
    }

    #[test]
    fn infinite_resources_have_no_bottleneck() {
        let m = AnalyticModel::new(Params::paper_baseline().with_resources(ResourceSpec::Infinite));
        assert!(m.bottleneck_bound().is_infinite());
        assert!((m.infinite_resource_throughput() - 200.0 / 1.5).abs() < 1e-9);
        assert!(m.mva(10).is_none());
    }

    #[test]
    fn saturated_mva_exceeds_open_mva_at_small_populations() {
        // With the ready queue keeping slots full, small populations are
        // never idle thinking, so throughput is strictly higher.
        let m = AnalyticModel::new(Params::paper_baseline());
        let open = m.mva(5).unwrap().throughput;
        let saturated = m.mva_saturated(5).unwrap().throughput;
        assert!(saturated > open * 1.5, "open {open}, saturated {saturated}");
        assert!(saturated < m.bottleneck_bound());
    }

    #[test]
    fn mva_respects_both_bounds() {
        let m = AnalyticModel::new(Params::paper_baseline());
        let sol = m.mva(200).expect("finite resources");
        assert!(sol.throughput <= m.throughput_upper_bound() + 1e-9);
        assert!(sol.throughput > m.throughput_upper_bound() * 0.95);
    }

    #[test]
    fn mva_visits_scale_with_write_prob() {
        let mut p = Params::paper_baseline();
        p.write_prob = 0.0;
        let read_only = AnalyticModel::new(p).bottleneck_bound();
        let with_writes = AnalyticModel::new(Params::paper_baseline()).bottleneck_bound();
        // Writes add I/O demand, lowering the bound by the factor 1.25.
        assert!((read_only / with_writes - 1.25).abs() < 1e-9);
    }

    #[test]
    fn internal_think_enters_delay_not_demand() {
        let thinky = Params::paper_baseline().with_think_times(
            ccsim_des::SimDuration::from_secs(3),
            ccsim_des::SimDuration::from_secs(5),
        );
        let m = AnalyticModel::new(thinky);
        // Bottleneck bound unchanged by thinking...
        assert!((m.bottleneck_bound() - 2.0 / 0.35).abs() < 1e-9);
        // ...but the MVA delay station includes both think times.
        let stations = m.stations().unwrap();
        assert!((stations[0].service_s - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "valid parameters")]
    fn invalid_params_panic() {
        let mut p = Params::paper_baseline();
        p.mpl = 0;
        let _ = AnalyticModel::new(p);
    }
}
