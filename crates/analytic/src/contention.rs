//! Classic closed-form approximations of lock contention, after Gray et
//! al.'s "straw-man" analysis and Tay's locking models — the analytical
//! lineage the paper positions itself against.
//!
//! With `n` concurrent transactions, each holding on average half of its
//! `k` locks over a database of `D` objects:
//!
//! * a single lock request conflicts with probability ≈ `k·(n−1) / (2D)`;
//! * a transaction waits at least once with probability ≈ `k²·(n−1) / (2D)`;
//! * a transaction deadlocks with probability ≈ `k⁴·(n−1) / (4D²)`.
//!
//! These are first-order approximations (valid while ≪ 1); the simulator is
//! the ground truth and the integration tests only demand order-of-magnitude
//! agreement in the dilute regime, exactly how the paper uses them.

use ccsim_workload::Params;

/// Analytical contention estimates for a parameter set.
#[derive(Debug, Clone, Copy)]
pub struct Contention<'a> {
    params: &'a Params,
}

impl<'a> Contention<'a> {
    /// Build an estimator over validated parameters.
    #[must_use]
    pub fn new(params: &'a Params) -> Self {
        Contention { params }
    }

    /// Effective lock-footprint per transaction: reads plus the write locks
    /// (upgrades do not add objects, so this is just the readset size).
    fn k(&self) -> f64 {
        self.params.tran_size()
    }

    fn d(&self) -> f64 {
        self.params.db_size as f64
    }

    /// Probability that one lock request conflicts with some holder, given
    /// `n` concurrently active transactions.
    #[must_use]
    pub fn request_conflict_probability(&self, n: u32) -> f64 {
        let others = f64::from(n.saturating_sub(1));
        (self.k() * others / (2.0 * self.d())).min(1.0)
    }

    /// Probability that a transaction blocks at least once during its
    /// execution.
    #[must_use]
    pub fn txn_wait_probability(&self, n: u32) -> f64 {
        let others = f64::from(n.saturating_sub(1));
        (self.k() * self.k() * others / (2.0 * self.d())).min(1.0)
    }

    /// Probability that a transaction participates in a deadlock.
    #[must_use]
    pub fn txn_deadlock_probability(&self, n: u32) -> f64 {
        let others = f64::from(n.saturating_sub(1));
        let k = self.k();
        (k * k * k * k * others / (4.0 * self.d() * self.d())).min(1.0)
    }

    /// Expected number of blocks per transaction (the simulator's *block
    /// ratio* for the blocking algorithm), first-order: `k` requests each
    /// conflicting independently.
    #[must_use]
    pub fn expected_block_ratio(&self, n: u32) -> f64 {
        self.k() * self.request_conflict_probability(n)
    }

    /// Tay's workload-contention factor `k²·n / D`. Rule of thumb: locking
    /// systems begin thrashing as this exceeds ≈ 1.5.
    #[must_use]
    pub fn workload_factor(&self, n: u32) -> f64 {
        self.k() * self.k() * f64::from(n) / self.d()
    }

    /// The multiprogramming level at which the workload factor crosses
    /// `threshold` (Tay's thrashing heuristic).
    #[must_use]
    pub fn thrashing_mpl(&self, threshold: f64) -> u32 {
        let n = threshold * self.d() / (self.k() * self.k());
        n.max(1.0).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Params {
        Params::paper_baseline()
    }

    #[test]
    fn baseline_magnitudes() {
        // k=8, D=1000: at n=25 concurrent transactions,
        // request conflict ≈ 8·24/2000 = 0.096,
        // wait prob ≈ 0.768, deadlock ≈ 8^4·24/4e6 ≈ 0.0246.
        let p = baseline();
        let c = Contention::new(&p);
        assert!((c.request_conflict_probability(25) - 0.096).abs() < 1e-12);
        assert!((c.txn_wait_probability(25) - 0.768).abs() < 1e-12);
        assert!((c.txn_deadlock_probability(25) - 0.024576).abs() < 1e-9);
        assert!((c.expected_block_ratio(25) - 0.768).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_clamped() {
        let p = baseline();
        let c = Contention::new(&p);
        assert_eq!(c.txn_wait_probability(10_000), 1.0);
        assert!(c.request_conflict_probability(10_000) <= 1.0);
    }

    #[test]
    fn single_transaction_never_conflicts() {
        let p = baseline();
        let c = Contention::new(&p);
        assert_eq!(c.request_conflict_probability(1), 0.0);
        assert_eq!(c.txn_wait_probability(1), 0.0);
        assert_eq!(c.txn_deadlock_probability(1), 0.0);
    }

    #[test]
    fn monotone_in_population() {
        let p = baseline();
        let c = Contention::new(&p);
        let mut last = 0.0;
        for n in 1..100 {
            let v = c.txn_wait_probability(n);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn low_conflict_db_is_an_order_of_magnitude_calmer() {
        let hi = baseline();
        let lo = Params::low_conflict();
        let n = 10; // dilute regime: no clamping on either side
        let ratio = Contention::new(&hi).txn_wait_probability(n)
            / Contention::new(&lo).txn_wait_probability(n);
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn thrashing_mpl_matches_workload_factor() {
        let p = baseline();
        let c = Contention::new(&p);
        // k²/D = 64/1000; factor 1.5 at n ≈ 23.4 → 23.
        let mpl = c.thrashing_mpl(1.5);
        assert_eq!(mpl, 23);
        assert!(c.workload_factor(mpl) <= 1.6);
        assert!(c.workload_factor(mpl + 2) > 1.5);
    }
}
