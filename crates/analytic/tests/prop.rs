//! Property tests for the analytical models.

use ccsim_analytic::{solve_mva, Station};
use proptest::prelude::*;

fn network() -> impl Strategy<Value = Vec<Station>> {
    (
        0.1f64..5.0, // think time
        proptest::collection::vec((0.001f64..0.2, 0.5f64..12.0, 1u32..6), 1..5),
    )
        .prop_map(|(think, stations)| {
            let mut v = vec![Station::delay(think, 1.0)];
            v.extend(
                stations
                    .into_iter()
                    .map(|(s, vis, m)| Station::queueing(s, vis, m)),
            );
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MVA throughput is monotone nondecreasing in the population and never
    /// exceeds the bottleneck bound.
    #[test]
    fn mva_monotone_and_bounded(stations in network(), n in 2u32..60) {
        let bound = stations
            .iter()
            .filter(|s| s.servers > 0)
            .map(|s| f64::from(s.servers) / s.demand())
            .fold(f64::INFINITY, f64::min);
        let mut last = 0.0;
        for pop in 1..=n {
            let sol = solve_mva(&stations, pop);
            prop_assert!(sol.throughput >= last - 1e-9, "pop {pop}");
            prop_assert!(
                sol.throughput <= bound + 1e-9,
                "pop {pop}: X {} exceeds bottleneck {bound}",
                sol.throughput
            );
            last = sol.throughput;
        }
    }

    /// Little's law holds at every station: Q_i = X · V_i · R_i, and the
    /// total population is conserved across stations plus the delay.
    #[test]
    fn mva_conserves_population(stations in network(), n in 1u32..40) {
        let sol = solve_mva(&stations, n);
        // Sum of queue lengths (including "queue" at the delay station,
        // which MVA reports as X·Z) must equal the population.
        let total: f64 = sol.queue_lengths.iter().sum();
        prop_assert!(
            (total - f64::from(n)).abs() < 1e-6,
            "population {n} vs accounted {total}"
        );
    }

    /// Utilization law: U_i = X · D_i / m_i, always within [0, 1].
    #[test]
    fn mva_utilization_law(stations in network(), n in 1u32..40) {
        let sol = solve_mva(&stations, n);
        for (st, &u) in stations.iter().zip(&sol.utilizations) {
            if st.servers == 0 {
                prop_assert_eq!(u, 0.0);
            } else {
                let expect = sol.throughput * st.demand() / f64::from(st.servers);
                prop_assert!((u - expect).abs() < 1e-9);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
            }
        }
    }
}
