//! The conflict-serializability checker.
//!
//! Under the deferred-update model every committed transaction publishes
//! its writes atomically at its commit point, so the version a read
//! observes is determined by timestamps alone: a read of `X` at time `t`
//! sees the write of the last transaction that committed a write to `X` at
//! or before `t`. The conflict graph is therefore:
//!
//! * **WW**: writers of `X` ordered by commit time (a chain suffices);
//! * **WR**: the writer a read observes → the reader;
//! * **RW**: a reader of `X` → the next writer of `X` to commit after the
//!   read (anti-dependency; the WW chain covers later writers).
//!
//! The history is conflict-serializable iff this graph is acyclic; the
//! checker returns a witness serial order (a topological sort) or the
//! offending cycle with its labeled conflict edges.

use std::collections::HashMap;

use ccsim_des::SimTime;
use ccsim_workload::{ObjId, TxnId};

use crate::record::History;

/// The kind of dependency an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Write–write: both transactions wrote the object.
    WriteWrite,
    /// Write–read: the reader observed the writer's version.
    WriteRead,
    /// Read–write (anti-dependency): the writer overwrote what the reader
    /// saw.
    ReadWrite,
}

/// One conflict-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The transaction that must serialize first.
    pub from: TxnId,
    /// The transaction that must serialize second.
    pub to: TxnId,
    /// The object they conflict on.
    pub obj: ObjId,
    /// The dependency kind.
    pub kind: ConflictKind,
}

/// A serializability violation: a cycle in the conflict graph.
#[derive(Debug, Clone)]
pub struct CycleError {
    /// The edges of the cycle, in order (`edges[i].to == edges[i+1].from`,
    /// wrapping around).
    pub edges: Vec<Conflict>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conflict cycle:")?;
        for e in &self.edges {
            write!(f, " {}-[{:?} on {}]->{}", e.from, e.kind, e.obj, e.to)?;
        }
        Ok(())
    }
}
impl std::error::Error for CycleError {}

/// Build every conflict edge of `history`'s dependency serialization graph
/// (see the module docs for the WW/WR/RW rules).
pub(crate) fn conflict_edges(history: &History) -> Vec<Conflict> {
    let txns = history.txns();

    // Per-object timelines.
    #[derive(Default)]
    struct Timeline {
        writers: Vec<(SimTime, TxnId)>, // sorted by commit time
        readers: Vec<(SimTime, TxnId)>, // read-completion time
    }
    let mut objects: HashMap<ObjId, Timeline> = HashMap::new();
    for t in txns {
        for &(obj, at) in &t.reads {
            objects.entry(obj).or_default().readers.push((at, t.id));
        }
        for &obj in &t.writes {
            objects
                .entry(obj)
                .or_default()
                .writers
                .push((t.commit_at, t.id));
        }
    }

    let mut edges: Vec<Conflict> = Vec::new();
    for (&obj, tl) in &mut objects {
        tl.writers.sort_by_key(|&(at, id)| (at, id));
        // WW chain.
        for pair in tl.writers.windows(2) {
            edges.push(Conflict {
                from: pair[0].1,
                to: pair[1].1,
                obj,
                kind: ConflictKind::WriteWrite,
            });
        }
        for &(read_at, reader) in &tl.readers {
            // The version read: last writer committed at or before read_at,
            // excluding the reader itself (a transaction always sees its
            // own deferred writes, which creates no edge).
            let observed = tl
                .writers
                .iter()
                .take_while(|&&(at, _)| at <= read_at)
                .filter(|&&(_, id)| id != reader)
                .last();
            if let Some(&(_, writer)) = observed {
                edges.push(Conflict {
                    from: writer,
                    to: reader,
                    obj,
                    kind: ConflictKind::WriteRead,
                });
            }
            // Anti-dependency to the next writer after the read.
            let overwriter = tl
                .writers
                .iter()
                .find(|&&(at, id)| at > read_at && id != reader);
            if let Some(&(_, writer)) = overwriter {
                edges.push(Conflict {
                    from: reader,
                    to: writer,
                    obj,
                    kind: ConflictKind::ReadWrite,
                });
            }
        }
    }
    edges
}

/// Topologically sort the graph `edges` induces over `history`'s committed
/// transactions, or reconstruct a cycle. Edges naming unknown transactions
/// are ignored (reads that observe a never-committed id cannot occur: only
/// commits are recorded).
pub(crate) fn toposort_or_cycle(
    history: &History,
    edges: &[Conflict],
) -> Result<Vec<TxnId>, CycleError> {
    let txns = history.txns();
    let index: HashMap<TxnId, usize> = txns.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
    let n = txns.len();
    let mut adj: Vec<Vec<(usize, Conflict)>> = vec![Vec::new(); n];
    for &e in edges {
        let (Some(&f), Some(&t)) = (index.get(&e.from), index.get(&e.to)) else {
            continue;
        };
        if f != t {
            adj[f].push((t, e));
        }
    }

    // Iterative DFS with three colors; reconstruct the cycle on a back edge.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut order: Vec<usize> = Vec::with_capacity(n); // reverse topological
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        // Stack of (node, next-edge-index); parallel path of entry edges.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut entry_edge: Vec<Option<Conflict>> = vec![None];
        color[root] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let (succ, edge) = adj[node][*next];
                *next += 1;
                match color[succ] {
                    Color::White => {
                        color[succ] = Color::Gray;
                        stack.push((succ, 0));
                        entry_edge.push(Some(edge));
                    }
                    Color::Gray => {
                        // Back edge: the cycle is the stack suffix from
                        // `succ` plus this closing edge.
                        let pos = stack
                            .iter()
                            .position(|&(v, _)| v == succ)
                            .expect("gray node is on the stack");
                        let mut cycle: Vec<Conflict> = entry_edge[pos + 1..]
                            .iter()
                            .map(|e| e.expect("non-root stack entries have entry edges"))
                            .collect();
                        cycle.push(edge);
                        return Err(CycleError { edges: cycle });
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                order.push(node);
                stack.pop();
                entry_edge.pop();
            }
        }
    }
    order.reverse();
    Ok(order.into_iter().map(|i| txns[i].id).collect())
}

/// Check conflict-serializability.
///
/// # Errors
/// Returns the conflict cycle if the history is not serializable;
/// otherwise returns a witness serial order of all committed transactions.
pub fn check_conflict_serializable(history: &History) -> Result<Vec<TxnId>, CycleError> {
    let edges = conflict_edges(history);
    toposort_or_cycle(history, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommittedTxn;

    fn s(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    fn txn(id: u64, reads: &[(u64, u64)], writes: &[u64], commit_s: u64) -> CommittedTxn {
        CommittedTxn {
            id: TxnId(id),
            start: SimTime::ZERO,
            reads: reads.iter().map(|&(o, at)| (ObjId(o), s(at))).collect(),
            writes: writes.iter().map(|&o| ObjId(o)).collect(),
            commit_at: s(commit_s),
        }
    }

    fn history(txns: Vec<CommittedTxn>) -> History {
        let mut h = History::new();
        let mut sorted = txns;
        sorted.sort_by_key(|t| t.commit_at);
        for t in sorted {
            h.push(t);
        }
        h
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = History::new();
        assert_eq!(check_conflict_serializable(&h).unwrap(), vec![]);
    }

    #[test]
    fn disjoint_transactions_are_serializable() {
        let h = history(vec![txn(1, &[(1, 1)], &[1], 2), txn(2, &[(2, 1)], &[2], 3)]);
        let order = check_conflict_serializable(&h).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn serial_rw_chain_is_serializable() {
        // T1 writes X at 2; T2 reads it at 3, writes Y at 4; T3 reads Y at 5.
        let h = history(vec![
            txn(1, &[], &[1], 2),
            txn(2, &[(1, 3)], &[2], 4),
            txn(3, &[(2, 5)], &[], 6),
        ]);
        let order = check_conflict_serializable(&h).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2), TxnId(3)]);
    }

    #[test]
    fn classic_nonserializable_interleaving_is_caught() {
        // Lost-update shape with values made visible by timestamps:
        // T1 reads X at 1 (before T2's commit), T2 reads X at 2 (before
        // T1's commit); both write X. Whatever order we pick, someone read
        // a stale version: T1 -> T2 (RW) and T2 -> T1 (RW).
        let h = history(vec![txn(1, &[(1, 1)], &[1], 5), txn(2, &[(1, 2)], &[1], 6)]);
        let err = check_conflict_serializable(&h).unwrap_err();
        assert!(err.edges.len() >= 2, "{err}");
        let msg = err.to_string();
        assert!(msg.contains("cycle"), "{msg}");
    }

    #[test]
    fn write_skew_is_caught() {
        // T1 reads X,Y then writes X; T2 reads X,Y then writes Y; both read
        // before either committed.
        let h = history(vec![
            txn(1, &[(1, 1), (2, 1)], &[1], 5),
            txn(2, &[(1, 2), (2, 2)], &[2], 6),
        ]);
        let err = check_conflict_serializable(&h).unwrap_err();
        let kinds: Vec<ConflictKind> = err.edges.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&ConflictKind::ReadWrite));
    }

    #[test]
    fn own_writes_create_no_self_edges() {
        // A transaction reads X after another writer committed, and also
        // writes X itself: WR from the writer, WW to itself excluded.
        let h = history(vec![txn(1, &[], &[1], 2), txn(2, &[(1, 3)], &[1], 4)]);
        let order = check_conflict_serializable(&h).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn ww_chain_orders_writers_by_commit() {
        let h = history(vec![
            txn(3, &[], &[7], 3),
            txn(1, &[], &[7], 1),
            txn(2, &[], &[7], 2),
        ]);
        let order = check_conflict_serializable(&h).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2), TxnId(3)]);
    }

    #[test]
    fn three_cycle_is_reported_with_edges_connected() {
        // T1 reads X before T2 writes it; T2 reads Y before T3 writes it;
        // T3 reads Z before T1 writes it: RW cycle of length 3.
        let h = history(vec![
            txn(1, &[(1, 1)], &[3], 10),
            txn(2, &[(2, 2)], &[1], 11),
            txn(3, &[(3, 3)], &[2], 12),
        ]);
        let err = check_conflict_serializable(&h).unwrap_err();
        // Edges must chain: to == next.from.
        for w in err.edges.windows(2) {
            assert_eq!(w[0].to, w[1].from, "{err}");
        }
        assert_eq!(
            err.edges.last().unwrap().to,
            err.edges.first().unwrap().from,
            "{err}"
        );
    }

    #[test]
    fn reader_sees_latest_committed_version() {
        // W1 commits X at 2, W2 commits X at 4; reader reads at 5 → edge
        // from W2 (and only an implied chain from W1).
        let h = history(vec![
            txn(1, &[], &[1], 2),
            txn(2, &[], &[1], 4),
            txn(3, &[(1, 5)], &[], 6),
        ]);
        let order = check_conflict_serializable(&h).unwrap();
        let pos = |id| order.iter().position(|&t| t == TxnId(id)).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }
}
