//! Snapshot-isolation oracle over the dependency serialization graph.
//!
//! Snapshot isolation admits non-serializable executions, so the plain
//! conflict-serializability checker would (correctly!) reject histories an
//! SI engine is *supposed* to produce. This module checks the weaker — but
//! still precise — contract instead, following Fekete et al., "Making
//! Snapshot Isolation Serializable" (TODS 2005):
//!
//! 1. **First committer wins**: no two committed writers of the same object
//!    may be concurrent (their `[start, commit_at]` intervals overlap). A
//!    violation means the engine published a lost update — an outright bug,
//!    not an SI anomaly.
//! 2. Every cycle in the DSG of an SI history must pass through at least
//!    two consecutive *vulnerable* anti-dependency edges — RW edges between
//!    concurrent transactions. Removing all vulnerable RW edges must
//!    therefore leave the graph acyclic; a residual cycle proves the
//!    history was not produced under snapshot isolation at all.
//! 3. The vulnerable edges that *were* removed are reported, with classic
//!    write skew (a pair of concurrent transactions, each anti-depending on
//!    the other) counted explicitly — anomalies are surfaced, never hidden.

use std::collections::HashMap;

use ccsim_workload::TxnId;

use crate::checker::{conflict_edges, toposort_or_cycle, Conflict, ConflictKind, CycleError};
use crate::record::History;

/// Outcome of a successful snapshot-isolation check.
#[derive(Debug, Clone)]
pub struct SiReport {
    /// A witness serial order of the DSG with vulnerable RW edges removed.
    pub serial_order: Vec<TxnId>,
    /// Anti-dependency edges between concurrent transactions (the edges SI
    /// permits that serializability would not).
    pub vulnerable_rw: Vec<Conflict>,
    /// Unordered pairs of concurrent transactions with *mutual* vulnerable
    /// anti-dependencies: classic write skew.
    pub write_skew_pairs: Vec<(TxnId, TxnId)>,
}

impl SiReport {
    /// True if the history was in fact fully serializable (no vulnerable
    /// anti-dependencies at all).
    #[must_use]
    pub fn is_serializable(&self) -> bool {
        self.vulnerable_rw.is_empty()
    }
}

/// Why a history is *not* consistent with snapshot isolation.
#[derive(Debug, Clone)]
pub enum SiViolation {
    /// Two committed transactions wrote the same object while concurrent:
    /// first-committer-wins was not enforced.
    FirstCommitterWins {
        /// The writer that committed first.
        first: TxnId,
        /// The overlapping writer that should have aborted.
        second: TxnId,
        /// The object both wrote.
        obj: ccsim_workload::ObjId,
    },
    /// The DSG still has a cycle after every vulnerable anti-dependency is
    /// removed — impossible under SI.
    ResidualCycle(CycleError),
}

impl std::fmt::Display for SiViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiViolation::FirstCommitterWins { first, second, obj } => write!(
                f,
                "first-committer-wins violated on {obj}: {second} committed while concurrent with {first}"
            ),
            SiViolation::ResidualCycle(c) => {
                write!(f, "cycle without vulnerable anti-dependencies: {c}")
            }
        }
    }
}

/// True if the committing attempts of `a` and `b` overlapped in time, i.e.
/// neither's snapshot could see the other's writes. Boundary instants do
/// not overlap: a transaction starting exactly at another's commit instant
/// reads a snapshot that already includes it.
fn concurrent(
    a: (ccsim_des::SimTime, ccsim_des::SimTime),
    b: (ccsim_des::SimTime, ccsim_des::SimTime),
) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Check that `history` is consistent with snapshot isolation.
///
/// # Errors
/// Returns [`SiViolation`] if first-committer-wins was broken or the DSG
/// has a cycle not explained by vulnerable anti-dependencies.
pub fn check_snapshot_isolation(history: &History) -> Result<SiReport, SiViolation> {
    let txns = history.txns();
    let intervals: HashMap<TxnId, (ccsim_des::SimTime, ccsim_des::SimTime)> = txns
        .iter()
        .map(|t| (t.id, (t.start, t.commit_at)))
        .collect();

    // First committer wins: per object, writers sorted by commit instant
    // must have pairwise-disjoint intervals; since commit times are sorted,
    // checking consecutive pairs suffices.
    let mut writers: HashMap<ccsim_workload::ObjId, Vec<&crate::record::CommittedTxn>> =
        HashMap::new();
    for t in txns {
        for &obj in &t.writes {
            writers.entry(obj).or_default().push(t);
        }
    }
    for (obj, mut ws) in writers {
        ws.sort_by_key(|t| (t.commit_at, t.id));
        for pair in ws.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if concurrent((a.start, a.commit_at), (b.start, b.commit_at)) {
                return Err(SiViolation::FirstCommitterWins {
                    first: a.id,
                    second: b.id,
                    obj,
                });
            }
        }
    }

    // Split the DSG: vulnerable anti-dependencies are legal under SI and
    // excluded from the acyclicity requirement.
    let (vulnerable_rw, kept): (Vec<Conflict>, Vec<Conflict>) =
        conflict_edges(history).into_iter().partition(|e| {
            e.kind == ConflictKind::ReadWrite
                && match (intervals.get(&e.from), intervals.get(&e.to)) {
                    (Some(&a), Some(&b)) => concurrent(a, b),
                    _ => false,
                }
        });

    let serial_order = toposort_or_cycle(history, &kept).map_err(SiViolation::ResidualCycle)?;

    // Classic write skew: mutual vulnerable anti-dependencies.
    let mut seen: std::collections::HashSet<(TxnId, TxnId)> = std::collections::HashSet::new();
    for e in &vulnerable_rw {
        seen.insert((e.from, e.to));
    }
    let mut write_skew_pairs: Vec<(TxnId, TxnId)> = seen
        .iter()
        .filter(|&&(a, b)| a < b && seen.contains(&(b, a)))
        .copied()
        .collect();
    write_skew_pairs.sort();

    Ok(SiReport {
        serial_order,
        vulnerable_rw,
        write_skew_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommittedTxn;
    use ccsim_des::SimTime;
    use ccsim_workload::ObjId;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn txn(
        id: u64,
        start_s: u64,
        reads: &[(u64, u64)],
        writes: &[u64],
        commit_s: u64,
    ) -> CommittedTxn {
        CommittedTxn {
            id: TxnId(id),
            start: s(start_s),
            reads: reads.iter().map(|&(o, at)| (ObjId(o), s(at))).collect(),
            writes: writes.iter().map(|&o| ObjId(o)).collect(),
            commit_at: s(commit_s),
        }
    }

    fn history(txns: Vec<CommittedTxn>) -> History {
        let mut h = History::new();
        let mut sorted = txns;
        sorted.sort_by_key(|t| t.commit_at);
        for t in sorted {
            h.push(t);
        }
        h
    }

    #[test]
    fn serial_history_reports_no_anomalies() {
        // t1 writes x, then t2 reads the new version and writes y.
        let h = history(vec![
            txn(1, 0, &[(1, 0)], &[1], 2),
            txn(2, 3, &[(1, 3)], &[2], 5),
        ]);
        let rep = check_snapshot_isolation(&h).expect("serial history is SI");
        assert!(rep.is_serializable());
        assert!(rep.write_skew_pairs.is_empty());
        assert_eq!(rep.serial_order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn write_skew_is_counted_not_rejected() {
        // The textbook anomaly: t1 reads {x,y} writes x; t2 reads {x,y}
        // writes y; both run on the same snapshot. Not serializable, but a
        // legal SI outcome — the oracle must accept it and count the skew.
        let h = history(vec![
            txn(1, 0, &[(1, 1), (2, 1)], &[1], 4),
            txn(2, 0, &[(1, 1), (2, 1)], &[2], 5),
        ]);
        let rep = check_snapshot_isolation(&h).expect("write skew is legal SI");
        assert!(!rep.is_serializable());
        assert_eq!(rep.write_skew_pairs, vec![(TxnId(1), TxnId(2))]);
        // The plain checker rejects the same history.
        assert!(crate::checker::check_conflict_serializable(&h).is_err());
    }

    #[test]
    fn lost_update_is_a_first_committer_wins_violation() {
        // Two concurrent writers of the same object both committed.
        let h = history(vec![
            txn(1, 0, &[(1, 1)], &[1], 4),
            txn(2, 0, &[(1, 1)], &[1], 5),
        ]);
        match check_snapshot_isolation(&h) {
            Err(SiViolation::FirstCommitterWins { first, second, obj }) => {
                assert_eq!((first, second, obj), (TxnId(1), TxnId(2), ObjId(1)));
            }
            other => panic!("expected FCW violation, got {other:?}"),
        }
    }

    #[test]
    fn sequential_writers_of_one_object_are_fine() {
        let h = history(vec![
            txn(1, 0, &[(1, 0)], &[1], 2),
            txn(2, 2, &[(1, 2)], &[1], 4), // starts exactly at t1's commit
        ]);
        let rep = check_snapshot_isolation(&h).expect("sequential rewrites are SI");
        assert!(rep.is_serializable());
    }

    #[test]
    fn non_concurrent_anti_dependencies_stay_in_the_graph() {
        // RW between txns with disjoint intervals is not vulnerable and is
        // kept: here it is consistent (all edges point t1 -> t2).
        let h = history(vec![
            txn(1, 0, &[(2, 1)], &[1], 2), // [0,2]: read y=initial, write x
            txn(2, 3, &[(1, 4)], &[2], 5), // [3,5]: read t1's x, write y
        ]);
        let rep = check_snapshot_isolation(&h).expect("forward edges only");
        assert!(rep.is_serializable());
        assert_eq!(rep.serial_order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn residual_cycle_is_rejected() {
        // A cycle whose closing edge is a WR between non-concurrent
        // transactions: t1 "reads" t3's version of z at time 9 despite
        // committing at 2. No honest SI engine produces this history —
        // vulnerable-edge removal cannot explain it, so the oracle must
        // reject rather than excuse it.
        let h = history(vec![
            txn(1, 0, &[(3, 9)], &[1], 2), // read-at 9 after commit 2: bug
            txn(2, 3, &[(1, 4)], &[2], 5), // reads t1's x => WR t1->t2
            txn(3, 6, &[(2, 7)], &[3], 8), // reads t2's y => WR t2->t3
        ]);
        match check_snapshot_isolation(&h) {
            Err(SiViolation::ResidualCycle(c)) => assert!(c.edges.len() >= 3),
            other => panic!("expected residual cycle, got {other:?}"),
        }
    }

    #[test]
    fn violation_display_is_informative() {
        let fcw = SiViolation::FirstCommitterWins {
            first: TxnId(1),
            second: TxnId(2),
            obj: ObjId(7),
        };
        let text = format!("{fcw}");
        assert!(text.contains("first-committer-wins"), "{text}");
        assert!(text.contains("obj7") || text.contains('7'), "{text}");
    }
}
