//! History records: what each committed transaction did, and when.

use ccsim_des::SimTime;
use ccsim_workload::{ObjId, TxnId};

/// One committed transaction's footprint (final, committing attempt only —
/// aborted attempts publish nothing and cannot affect serializability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Transaction identity.
    pub id: TxnId,
    /// When the committing attempt began executing.
    pub start: SimTime,
    /// Each object read, with the instant its access completed.
    pub reads: Vec<(ObjId, SimTime)>,
    /// Objects written (published atomically at `commit_at` under the
    /// deferred-update model).
    pub writes: Vec<ObjId>,
    /// The commit point: the instant the writes became visible (the
    /// validation instant for optimistic CC; the commit event for locking).
    pub commit_at: SimTime,
}

impl CommittedTxn {
    /// True if the transaction wrote nothing.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// An execution history: committed transactions in commit-*event* order.
///
/// Note that `commit_at` (the publication instant) is **not** necessarily
/// monotone in this order: an optimistic transaction publishes at its
/// validation instant but its commit event fires only after its deferred
/// updates, so a faster transaction that validated later can finish first.
/// The checker orders per-object timelines by `commit_at` itself.
#[derive(Debug, Clone, Default)]
pub struct History {
    txns: Vec<CommittedTxn>,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        History::default()
    }

    /// Append a committed transaction (in commit-event order).
    pub fn push(&mut self, txn: CommittedTxn) {
        self.txns.push(txn);
    }

    /// The committed transactions, in commit-event order.
    #[must_use]
    pub fn txns(&self) -> &[CommittedTxn] {
        &self.txns
    }

    /// Replace the most recent record's writeset. Basic timestamp ordering
    /// applies the Thomas write rule at commit, so some buffered writes are
    /// never published; the engine amends the record it just pushed to list
    /// only the applied ones.
    pub fn amend_last_writes(&mut self, writes: &[ccsim_workload::ObjId]) {
        if let Some(last) = self.txns.last_mut() {
            last.writes = writes.to_vec();
        }
    }

    /// Number of committed transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if no transactions committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, commit_s: u64) -> CommittedTxn {
        CommittedTxn {
            id: TxnId(id),
            start: SimTime::ZERO,
            reads: vec![(ObjId(1), SimTime::from_secs(commit_s))],
            writes: vec![],
            commit_at: SimTime::from_secs(commit_s),
        }
    }

    #[test]
    fn push_in_order() {
        let mut h = History::new();
        h.push(t(1, 1));
        h.push(t(2, 2));
        h.push(t(3, 2)); // ties allowed
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.txns()[0].id, TxnId(1));
    }

    #[test]
    fn out_of_order_commit_stamps_are_accepted() {
        // Publication order and commit-event order legitimately differ for
        // optimistic CC (validation precedes the deferred updates).
        let mut h = History::new();
        h.push(t(1, 5));
        h.push(t(2, 1));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn amend_last_writes_replaces_writeset() {
        let mut h = History::new();
        let mut w = t(1, 1);
        w.writes = vec![ObjId(1), ObjId(2)];
        h.push(w);
        h.amend_last_writes(&[ObjId(2)]);
        assert_eq!(h.txns()[0].writes, vec![ObjId(2)]);
        // Amending an empty history is a no-op.
        let mut e = History::new();
        e.amend_last_writes(&[ObjId(9)]);
        assert!(e.is_empty());
    }

    #[test]
    fn read_only_detection() {
        assert!(t(1, 1).is_read_only());
        let mut w = t(1, 1);
        w.writes.push(ObjId(9));
        assert!(!w.is_read_only());
    }
}
