//! `ccsim-history` — execution-history recording and conflict-
//! serializability verification.
//!
//! The simulator's concurrency control algorithms are supposed to admit
//! only serializable executions; this crate *checks* that claim instead of
//! assuming it. The engine (with history recording enabled) emits one
//! [`CommittedTxn`] per commit — when each object was read, which objects
//! were written, and the commit instant at which the writes were atomically
//! published (the deferred-update model makes publication atomic). The
//! checker rebuilds the conflict graph from those timestamps and verifies
//! it is acyclic, producing either a witness serial order or the offending
//! cycle.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod checker;
mod dsg;
mod record;

pub use checker::{check_conflict_serializable, Conflict, ConflictKind, CycleError};
pub use dsg::{check_snapshot_isolation, SiReport, SiViolation};
pub use record::{CommittedTxn, History};
