//! Deterministic pseudo-random number generation.
//!
//! The simulator needs bit-for-bit reproducible runs across platforms and
//! library versions, so we implement the generators ourselves instead of
//! relying on an external crate whose stream may change between releases:
//!
//! * [`SplitMix64`] — the classic 64-bit mixing generator, used for seeding.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256**, the workhorse.
//! * [`RngStreams`] — derives independent, stably-numbered streams from one
//!   master seed (one stream per stochastic component of the model), so that
//!   changing how often one component draws does not perturb the others.

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], as recommended by its authors.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: fast, 256-bit state, passes BigCrush.
///
/// `PartialEq` compares the full 256-bit state: two equal generators
/// produce identical streams forever, which the speculative refill lane
/// uses to validate that a precomputed refill still matches the live
/// stream (see `ExpBlock::install_refill`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion (never yields the forbidden all-zero
    /// state).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 is a bijection over a full-period sequence, so four
        // consecutive outputs are never all zero, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Xoshiro256StarStar {
                s: [0x1, 0x9E3779B9, 0x7F4A7C15, 0xBF58476D],
            };
        }
        Xoshiro256StarStar { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic source of uniform 64-bit words, plus the derived draws
/// every model component uses.
///
/// The derived methods (`next_f64`, `next_below`, ...) are provided here —
/// in exactly one place — so a buffered source ([`BufferedRng`]) and the
/// bare generator ([`Xoshiro256StarStar`]) produce bit-identical draws from
/// the same word sequence by construction.
pub trait RandomSource {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `out` with uniform words, in stream order (the batched-refill
    /// primitive: one tight loop instead of a call per word).
    fn fill_u64(&mut self, out: &mut [u64]) {
        for w in out {
            *w = self.next_u64();
        }
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; (1/2^53) spacing.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire's method with
    /// rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Lazy threshold: the rejection test only matters when the low
        // 64 bits fall below `bound` (probability bound / 2^64), so the
        // u64 division computing the threshold is deferred to that
        // vanishingly rare branch. The draw sequence is identical to the
        // eager form because `low >= bound` implies `low >= threshold`.
        let mut m = (self.next_u64() as u128) * (bound as u128);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    fn next_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range_inclusive: lo > hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }
}

impl RandomSource for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

/// Words buffered per [`BufferedRng`] refill.
const RNG_BLOCK: usize = 16;

/// A [`Xoshiro256StarStar`] behind a refill buffer: raw words are produced
/// [`RNG_BLOCK`] at a time in one tight loop and served from the buffer.
///
/// Buffering changes *when* words are generated, never their order, so
/// every draw derived through [`RandomSource`] is bit-identical to the same
/// call sequence against the bare generator — seeds, CRN pairing, and
/// golden traces are untouched. Use it for a stream whose draws interleave
/// several distributions (e.g. the workload generator), where a
/// per-distribution batch buffer could not preserve the draw order.
#[derive(Debug, Clone)]
pub struct BufferedRng {
    inner: Xoshiro256StarStar,
    buf: [u64; RNG_BLOCK],
    pos: usize,
}

impl BufferedRng {
    /// Wrap `inner`; the first draw triggers the first refill.
    #[must_use]
    pub fn new(inner: Xoshiro256StarStar) -> Self {
        BufferedRng {
            inner,
            buf: [0; RNG_BLOCK],
            pos: RNG_BLOCK,
        }
    }

    #[cold]
    fn refill(&mut self) {
        for w in &mut self.buf {
            *w = self.inner.next_u64();
        }
        self.pos = 0;
    }
}

impl RandomSource for BufferedRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == RNG_BLOCK {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    /// Batched fill that drains the buffer, then generates whole blocks
    /// straight into `out`, refilling only for the final partial block.
    ///
    /// State-equivalent to calling [`RandomSource::next_u64`] `out.len()`
    /// times: the words, their order, and the buffer/generator state left
    /// behind are all bit-identical (a full block served through the buffer
    /// ends with the buffer exhausted, which is indistinguishable from
    /// having bypassed it).
    fn fill_u64(&mut self, out: &mut [u64]) {
        let avail = RNG_BLOCK - self.pos;
        let take = avail.min(out.len());
        out[..take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
        self.pos += take;
        let out = &mut out[take..];
        let mut chunks = out.chunks_exact_mut(RNG_BLOCK);
        for chunk in &mut chunks {
            for w in chunk {
                *w = self.inner.next_u64();
            }
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            self.refill();
            rest.copy_from_slice(&self.buf[..rest.len()]);
            self.pos = rest.len();
        }
    }
}

/// Derive a seed from a base seed and a hierarchical path of tags
/// (splitmix-style mixing, one round per path element).
///
/// This is the foundation of the replication layer's seed discipline:
/// every `(domain, coordinate, ..., replication)` path yields an
/// independent stream, while identical paths always yield identical
/// streams — which is what lets common-random-numbers (CRN) experiments
/// hand the *same* workload stream to different algorithms by simply
/// deriving it from an algorithm-free path.
///
/// Each level folds the tag and its depth into the accumulated state
/// before one SplitMix64 output round, so `[a, b]` and `[b, a]` (and
/// prefix-sharing paths) land in unrelated parts of the seed space.
#[must_use]
pub fn derive_seed(base: u64, path: &[u64]) -> u64 {
    let mut acc = SplitMix64::new(base).next_u64();
    for (depth, &tag) in path.iter().enumerate() {
        let level = acc
            ^ tag.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (depth as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        acc = SplitMix64::new(level).next_u64();
    }
    acc
}

/// Derive the seed for one experiment grid point: `(series, mpl,
/// replication)` under a base seed.
///
/// Replications are independent streams; holding `replication` fixed and
/// varying `series` gives the distinct-but-aligned seeds a CRN design
/// needs (callers that want *shared* streams across series pass a fixed
/// series tag instead).
#[must_use]
pub fn derive_point_seed(base: u64, series: u64, mpl: u64, replication: u64) -> u64 {
    derive_seed(base, &[series, mpl, replication])
}

/// Named, independent random-number streams derived from one master seed.
///
/// Stream identifiers are stable constants chosen by the caller; the same
/// `(master_seed, stream_id)` pair always produces the same stream.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Create the stream family for `master` seed.
    #[must_use]
    pub fn new(master: u64) -> Self {
        RngStreams { master }
    }

    /// Derive the generator for `stream_id`.
    #[must_use]
    pub fn stream(&self, stream_id: u64) -> Xoshiro256StarStar {
        // Mix the stream id through SplitMix64 so that adjacent ids yield
        // uncorrelated seeds.
        let mut sm = SplitMix64::new(self.master ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407));
        Xoshiro256StarStar::seed_from_u64(sm.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C source.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Xoshiro256StarStar::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let x = r.next_below(7) as usize;
            counts[x] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_below_power_of_two() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(r.next_below(8) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        r.next_below(0);
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.next_range_inclusive(4, 12);
            assert!((4..=12).contains(&x));
            saw_lo |= x == 4;
            saw_hi |= x == 12;
        }
        assert!(saw_lo && saw_hi, "endpoints should be reachable");
    }

    #[test]
    fn range_single_point() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        assert_eq!(r.next_range_inclusive(9, 9), 9);
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
        assert!(!r.next_bool(-0.5));
        assert!(r.next_bool(1.5));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn derive_seed_is_deterministic_and_path_sensitive() {
        assert_eq!(derive_seed(1, &[2, 3, 4]), derive_seed(1, &[2, 3, 4]));
        assert_ne!(derive_seed(1, &[2, 3, 4]), derive_seed(1, &[2, 3, 5]));
        assert_ne!(derive_seed(1, &[2, 3, 4]), derive_seed(2, &[2, 3, 4]));
        // Order within the path matters.
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(1, &[3, 2]));
        // A longer path is not a continuation of the shorter one's value.
        assert_ne!(derive_seed(1, &[2]), derive_seed(1, &[2, 0]));
    }

    #[test]
    fn derive_point_seed_matches_generic_derivation() {
        assert_eq!(
            derive_point_seed(0xC0FFEE, 1, 25, 3),
            derive_seed(0xC0FFEE, &[1, 25, 3])
        );
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let streams = RngStreams::new(0xDEADBEEF);
        let mut s0a = streams.stream(0);
        let mut s0b = streams.stream(0);
        let mut s1 = streams.stream(1);
        assert_eq!(s0a.next_u64(), s0b.next_u64());
        // Stream 1 should not mirror stream 0.
        let mut same = 0;
        for _ in 0..100 {
            if s0a.next_u64() == s1.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }
}
