//! The event calendar: a priority queue of timestamped events.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (a monotone sequence number breaks ties), which makes
//! simulations fully deterministic. Cancellation is supported through
//! tombstones so that the common schedule/pop path stays allocation-free
//! beyond the heap itself.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, usable with [`Calendar::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event calendar.
///
/// ```
/// use ccsim_des::{Calendar, SimTime};
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::from_secs(2), "second");
/// cal.schedule(SimTime::from_secs(1), "first");
/// let (t, e) = cal.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Create an empty calendar with the clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — the simulated past
    /// is immutable.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. had not yet been delivered or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // We cannot tell delivered from cancelled without bookkeeping of
        // delivered ids; insert and let pop() reconcile. To keep `cancel`
        // truthful we only insert if a matching live entry could exist.
        self.cancelled.insert(id.0)
    }

    /// Remove and return the earliest event together with its timestamp,
    /// advancing the clock. Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event calendar went backwards");
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), 3u32);
        cal.schedule(SimTime::from_secs(1), 1u32);
        cal.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        assert!(cal.cancel(a));
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_unknown_returns_false() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId(99)));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), ());
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn schedule_same_time_as_now_is_ok() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(1), 1);
        cal.pop();
        // An event may fire "now" (zero-delay continuation).
        cal.schedule(cal.now() + SimDuration::ZERO, 2);
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut cal = Calendar::new();
        let ids: Vec<_> = (0..5)
            .map(|i| cal.schedule(SimTime::from_secs(i + 1), i))
            .collect();
        assert_eq!(cal.len(), 5);
        cal.cancel(ids[0]);
        cal.cancel(ids[3]);
        assert_eq!(cal.len(), 3);
        assert!(!cal.is_empty());
    }
}
