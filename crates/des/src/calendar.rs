//! The event calendar: a priority queue of timestamped events.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (a monotone sequence number breaks ties), which makes
//! simulations fully deterministic.
//!
//! Internally the calendar is **two-tiered** (a calendar-queue / ladder
//! hybrid): a bounded ring of *near-horizon* time buckets fronting an
//! indexed **4-ary min-heap** overflow tier, both over stable event
//! *slots*:
//!
//! * Nodes are small `(time, seq, slot)` records ordered by `(time, seq)`.
//!   The `seq` counter is global across both tiers, so FIFO tie-breaking
//!   is preserved no matter which tier an event lands in.
//! * Schedules within [`NEAR_BUCKETS`] buckets of the clock (each bucket
//!   spans `2^BUCKET_SHIFT` µs — a ~262 ms horizon) append to a ring
//!   bucket in O(1); everything farther out goes to the heap. In the
//!   paper's model the dominant traffic — CPU/disk service completions in
//!   the tens of milliseconds — lands in the lane, while second-scale
//!   think-time arrivals and batch boundaries take the heap. `pop`
//!   compares the lane's minimum against the heap's live root and takes
//!   the global `(time, seq)` minimum, so delivery order is identical to
//!   a single heap.
//! * A 4-ary heap layout halves the tree depth of a binary heap and keeps
//!   the four children of a node in at most two cache lines, so the
//!   pop-side sift touches far less memory than `BinaryHeap` did.
//! * Event payloads live in a slot arena addressed by the nodes. A slot
//!   is recycled through a free list when its event is delivered or
//!   cancelled, so the steady-state schedule/pop cycle allocates nothing.
//! * [`Calendar::cancel`] is O(1) in both tiers: it empties the slot and
//!   bumps its generation; the matching node becomes *stale* and is
//!   discarded when it surfaces (heap root or lane-bucket scan). There is
//!   no tombstone set to hash into on the hot pop path.

use crate::time::SimTime;

/// Near-lane geometry: [`NEAR_BUCKETS`] ring slots of `2^BUCKET_SHIFT`
/// microseconds each — 256 buckets of ~1.05 ms cover a ~268 ms horizon.
const BUCKET_SHIFT: u32 = 10;
/// Number of buckets in the near-horizon ring.
const NEAR_BUCKETS: u64 = 256;

/// Cumulative operation counters for one [`Calendar`], split by tier.
///
/// `lane_schedules + heap_schedules == schedules` and
/// `lane_pops + heap_pops == pops`; the lane/heap split shows how much
/// traffic the O(1) near-horizon lane absorbs vs the log-time heap.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CalendarStats {
    /// Total events scheduled.
    pub schedules: u64,
    /// Total events delivered by [`Calendar::pop`].
    pub pops: u64,
    /// Successful cancellations (pending events withdrawn).
    pub cancels: u64,
    /// Schedules that landed in the near-horizon lane.
    pub lane_schedules: u64,
    /// Schedules beyond the horizon, pushed to the overflow heap.
    pub heap_schedules: u64,
    /// Pops served from the near-horizon lane.
    pub lane_pops: u64,
    /// Pops served from the overflow heap.
    pub heap_pops: u64,
}

/// Handle to a scheduled event, usable with [`Calendar::cancel`].
///
/// Packs the event's slot index and the slot's generation at scheduling
/// time; a stale handle (delivered, cancelled, or recycled slot) never
/// matches again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> Self {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One heap node: the ordering key plus the slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct Node {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Node {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A payload slot. `seq` identifies the occupant; `event` is `None` once
/// the occupant was cancelled (the slot is then already on the free list,
/// waiting for its stale node to surface and be discarded). `in_lane`
/// records which tier holds the occupant's node so cancellation can keep
/// the lane's live count exact.
#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    seq: u64,
    in_lane: bool,
    event: Option<E>,
}

/// One ring bucket of the near-horizon lane. `bucket` is the *absolute*
/// bucket index currently mapped onto this ring slot (`u64::MAX` when
/// unused); after a full ring rotation a slot is reclaimed by clearing any
/// leftover nodes — provably all stale, since a bucket that far behind the
/// clock lies entirely in the popped past.
#[derive(Debug)]
struct LaneBucket {
    bucket: u64,
    nodes: Vec<Node>,
    /// Set when the min-scan first parks on this bucket: `nodes` is then
    /// a binary min-heap by `(time, seq)` — pops take the root, late
    /// schedules into the bucket sift in, both O(log bucket). Until then
    /// the bucket is a plain append vector. Without this, a bucket dense
    /// with same-millisecond events (a million-scale regime packs
    /// thousands into one bucket) would pay a full scan per pop —
    /// quadratic in bucket population. A sorted vector is no better: the
    /// model schedules lock-grant wakeups at the current instant, which
    /// insert mid-bucket and pay a memmove each.
    heaped: bool,
}

// -- per-bucket binary-heap primitives (by `(time, seq)` key) -----------

fn bucket_sift_up(nodes: &mut [Node], mut i: usize) {
    let node = nodes[i];
    let key = node.key();
    while i > 0 {
        let parent = (i - 1) / 2;
        if key < nodes[parent].key() {
            nodes[i] = nodes[parent];
            i = parent;
        } else {
            break;
        }
    }
    nodes[i] = node;
}

fn bucket_sift_down(nodes: &mut [Node], mut i: usize) {
    let len = nodes.len();
    let node = nodes[i];
    let key = node.key();
    loop {
        let mut child = 2 * i + 1;
        if child >= len {
            break;
        }
        if child + 1 < len && nodes[child + 1].key() < nodes[child].key() {
            child += 1;
        }
        if nodes[child].key() < key {
            nodes[i] = nodes[child];
            i = child;
        } else {
            break;
        }
    }
    nodes[i] = node;
}

fn bucket_heapify(nodes: &mut [Node]) {
    for i in (0..nodes.len() / 2).rev() {
        bucket_sift_down(nodes, i);
    }
}

fn bucket_pop_root(nodes: &mut Vec<Node>) -> Node {
    let root = nodes.swap_remove(0);
    if !nodes.is_empty() {
        bucket_sift_down(nodes, 0);
    }
    root
}

/// A deterministic event calendar.
///
/// ```
/// use ccsim_des::{Calendar, SimTime};
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::from_secs(2), "second");
/// cal.schedule(SimTime::from_secs(1), "first");
/// let (t, e) = cal.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
pub struct Calendar<E> {
    heap: Vec<Node>,
    /// When false, every schedule goes to the overflow heap — the
    /// single-tier baseline for ablation runs (see [`Calendar::heap_only`]).
    use_lane: bool,
    /// Near-horizon ring, indexed by `absolute_bucket % NEAR_BUCKETS`.
    lane: Vec<LaneBucket>,
    /// Live events currently stored in the lane (exact, not counting
    /// stale leftovers awaiting purge).
    lane_live: usize,
    /// Scan cursor: no live lane event sits in a bucket below this index.
    /// Lowered on schedule into an earlier bucket, advanced as the
    /// min-scan walks past drained buckets, keeping repeated scans
    /// amortized O(1).
    scan_from: u64,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Live (scheduled, neither delivered nor cancelled) events.
    live: usize,
    /// High-water mark of `live` over the calendar's lifetime.
    peak_live: usize,
    next_seq: u64,
    now: SimTime,
    stats: CalendarStats,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Create an empty calendar with the clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            use_lane: true,
            lane: (0..NEAR_BUCKETS)
                .map(|_| LaneBucket {
                    bucket: u64::MAX,
                    nodes: Vec::new(),
                    heaped: false,
                })
                .collect(),
            lane_live: 0,
            scan_from: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            stats: CalendarStats::default(),
        }
    }

    /// Create an empty calendar that bypasses the near-horizon lane: every
    /// event lands in the overflow heap. Delivery order is identical to
    /// [`Calendar::new`] — `(time, seq)` decides in both tiers — so the
    /// only difference is cost. This is the single-tier baseline that
    /// ablation benchmarks measure the lane against; simulations have no
    /// reason to use it.
    #[must_use]
    pub fn heap_only() -> Self {
        Calendar {
            use_lane: false,
            ..Self::new()
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The most live events ever pending at once (peak occupancy).
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Cumulative operation counters (schedules, pops, cancels, and the
    /// near-lane vs overflow-heap split).
    #[must_use]
    pub fn stats(&self) -> CalendarStats {
        self.stats
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — the simulated past
    /// is immutable.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let bucket = at.as_micros() >> BUCKET_SHIFT;
        let cur = self.now.as_micros() >> BUCKET_SHIFT;
        let near = self.use_lane && bucket < cur + NEAR_BUCKETS;
        let (slot, generation) = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.seq = seq;
                sl.in_lane = near;
                sl.event = Some(event);
                (s, sl.generation)
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("calendar slot index overflow");
                self.slots.push(Slot {
                    generation: 0,
                    seq,
                    in_lane: near,
                    event: Some(event),
                });
                (s, 0)
            }
        };
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        self.stats.schedules += 1;
        let node = Node { at, seq, slot };
        if near {
            self.stats.lane_schedules += 1;
            self.lane_live += 1;
            if bucket < self.scan_from {
                self.scan_from = bucket;
            }
            let slots = &self.slots;
            let ring = &mut self.lane[(bucket % NEAR_BUCKETS) as usize];
            if ring.bucket != bucket {
                // Ring-slot reuse after a full rotation: leftover nodes
                // belong to a bucket ≥ NEAR_BUCKETS behind the clock, i.e.
                // entirely in the popped past, so they can only be stale.
                debug_assert!(ring.nodes.iter().all(|n| {
                    let sl = &slots[n.slot as usize];
                    sl.seq != n.seq || sl.event.is_none()
                }));
                ring.nodes.clear();
                ring.heaped = false;
                ring.bucket = bucket;
            }
            ring.nodes.push(node);
            if ring.heaped {
                let last = ring.nodes.len() - 1;
                bucket_sift_up(&mut ring.nodes, last);
            }
        } else {
            self.stats.heap_schedules += 1;
            self.heap.push(node);
            self.sift_up(self.heap.len() - 1);
        }
        EventId::new(slot, generation)
    }

    /// Cancel a previously scheduled event in O(1). Returns `true` if the
    /// event was still pending (i.e. had not yet been delivered or
    /// cancelled). The stale node is discarded lazily when it surfaces in
    /// its tier.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot()) else {
            return false;
        };
        if slot.generation != id.generation() || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        slot.generation = slot.generation.wrapping_add(1);
        if slot.in_lane {
            self.lane_live -= 1;
        }
        self.free.push(id.slot() as u32);
        self.live -= 1;
        self.stats.cancels += 1;
        true
    }

    /// Locate the lane's live minimum: `(ring index, key)` — the minimum
    /// is always the parked bucket's heap root.
    ///
    /// Scans forward from the cursor and parks it on the first bucket with
    /// a live event, heapifying that bucket on first touch so the minimum
    /// — and every subsequent pop from the bucket — is a root read, not a
    /// scan. All live lane events sit in `[clock bucket, clock bucket +
    /// NEAR_BUCKETS)` and none below the cursor, so the walk is bounded;
    /// stale nodes are purged at heapify time or discarded once when they
    /// surface as the root.
    fn lane_min(&mut self) -> Option<(usize, (SimTime, u64))> {
        if self.lane_live == 0 {
            return None;
        }
        let cur = self.now.as_micros() >> BUCKET_SHIFT;
        let mut b = self.scan_from.max(cur);
        while b < cur + NEAR_BUCKETS {
            let ix = (b % NEAR_BUCKETS) as usize;
            if self.lane[ix].bucket == b {
                let slots = &self.slots;
                let ring = &mut self.lane[ix];
                if !ring.heaped {
                    ring.nodes.retain(|n| {
                        let sl = &slots[n.slot as usize];
                        sl.seq == n.seq && sl.event.is_some()
                    });
                    bucket_heapify(&mut ring.nodes);
                    ring.heaped = true;
                }
                while let Some(&root) = ring.nodes.first() {
                    let sl = &slots[root.slot as usize];
                    if sl.seq == root.seq && sl.event.is_some() {
                        self.scan_from = b;
                        return Some((ix, root.key()));
                    }
                    bucket_pop_root(&mut ring.nodes);
                }
                ring.heaped = false;
            }
            b += 1;
        }
        unreachable!(
            "lane accounting broken: {} live events unreachable within the horizon",
            self.lane_live
        );
    }

    /// Key of the heap's live root, purging stale roots on the way.
    fn heap_peek_key(&mut self) -> Option<(SimTime, u64)> {
        loop {
            let node = *self.heap.first()?;
            let slot = &self.slots[node.slot as usize];
            if slot.seq == node.seq && slot.event.is_some() {
                return Some(node.key());
            }
            self.remove_root();
        }
    }

    /// Remove and return the earliest event together with its timestamp,
    /// advancing the clock. Cancelled events are skipped silently.
    ///
    /// The winner is the global `(time, seq)` minimum across both tiers —
    /// `seq` is assigned at schedule time regardless of tier, so same-time
    /// events keep strict FIFO order even when one sits in the lane and
    /// the other in the heap.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let lane = self.lane_min();
        let heap = self.heap_peek_key();
        let use_lane = match (lane, heap) {
            (Some((_, lk)), Some(hk)) => lk < hk,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let node = if use_lane {
            let (ring_ix, _) = lane.expect("lane candidate vanished");
            self.stats.lane_pops += 1;
            self.lane_live -= 1;
            bucket_pop_root(&mut self.lane[ring_ix].nodes)
        } else {
            self.stats.heap_pops += 1;
            let node = self.heap[0];
            self.remove_root();
            node
        };
        let slot = &mut self.slots[node.slot as usize];
        debug_assert_eq!(slot.seq, node.seq, "popped a stale node");
        let event = slot.event.take().expect("popped a cancelled node");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(node.slot);
        self.live -= 1;
        self.stats.pops += 1;
        debug_assert!(node.at >= self.now, "event calendar went backwards");
        self.now = node.at;
        Some((node.at, event))
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let lane = self.lane_min().map(|(_, key)| key);
        let heap = self.heap_peek_key();
        match (lane, heap) {
            (Some(l), Some(h)) => Some(l.min(h).0),
            (Some(l), None) => Some(l.0),
            (None, Some(h)) => Some(h.0),
            (None, None) => None,
        }
    }

    // -- 4-ary heap primitives ------------------------------------------

    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("remove_root on empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let node = self.heap[i];
        let key = node.key();
        while i > 0 {
            let parent = (i - 1) / 4;
            if key < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = node;
    }

    /// Bottom-up sift: the displaced node comes from the heap's last
    /// position, so it almost always belongs near the bottom again. Descend
    /// along the min-child path unconditionally (skipping the
    /// node-vs-child test per level that would nearly never terminate
    /// early), then bubble the node back up the few levels it needs.
    fn sift_down(&mut self, start: usize) {
        let len = self.heap.len();
        let node = self.heap[start];
        let mut i = start;
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let end = (first + 4).min(len);
            let mut min = first;
            let mut min_key = self.heap[first].key();
            for c in first + 1..end {
                let k = self.heap[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            self.heap[i] = self.heap[min];
            i = min;
        }
        // `i` is now a leaf of the min-child path; bubble `node` up to its
        // place (never above `start`, whose subtree it came to fill).
        let key = node.key();
        while i > start {
            let parent = (i - 1) / 4;
            if key < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), 3u32);
        cal.schedule(SimTime::from_secs(1), 1u32);
        cal.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        assert!(cal.cancel(a));
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_unknown_returns_false() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId::new(99, 0)));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), ());
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), ());
        assert_eq!(cal.pop(), Some((SimTime::from_secs(1), ())));
        assert!(!cal.cancel(a));
    }

    #[test]
    fn recycled_slot_does_not_resurrect_old_handle() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        assert!(cal.cancel(a));
        // The slot is recycled for a new event; the old handle must not be
        // able to cancel the newcomer, and the newcomer must deliver.
        let b = cal.schedule(SimTime::from_secs(2), "b");
        assert!(!cal.cancel(a));
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(!cal.cancel(b));
    }

    #[test]
    fn fifo_order_survives_interleaved_cancellation() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        let ids: Vec<_> = (0..10).map(|i| cal.schedule(t, i)).collect();
        // Cancel the odd ones; evens must still come out in FIFO order.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                assert!(cal.cancel(*id));
            }
        }
        let order: Vec<usize> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn schedule_same_time_as_now_is_ok() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(1), 1);
        cal.pop();
        // An event may fire "now" (zero-delay continuation).
        cal.schedule(cal.now() + SimDuration::ZERO, 2);
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut cal = Calendar::new();
        let ids: Vec<_> = (0..5)
            .map(|i| cal.schedule(SimTime::from_secs(i + 1), i))
            .collect();
        assert_eq!(cal.len(), 5);
        cal.cancel(ids[0]);
        cal.cancel(ids[3]);
        assert_eq!(cal.len(), 3);
        assert!(!cal.is_empty());
    }

    #[test]
    fn cross_tier_same_time_ties_break_fifo() {
        // An event scheduled beyond the horizon (heap tier) and one
        // scheduled later — after the clock advanced — at the *same*
        // instant (lane tier) must still deliver in schedule order: the
        // seq counter is global across tiers.
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(300); // beyond the ~268 ms horizon at clock 0
        cal.schedule(t, "heap-first");
        cal.schedule(SimTime::from_millis(100), "filler");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("filler"));
        // Clock at 100 ms: 300 ms is now inside the horizon.
        cal.schedule(t, "lane-second");
        assert_eq!(cal.stats().heap_schedules, 1);
        assert_eq!(cal.stats().lane_schedules, 2);
        assert_eq!(cal.pop(), Some((t, "heap-first")));
        assert_eq!(cal.pop(), Some((t, "lane-second")));
    }

    #[test]
    fn far_events_overflow_to_heap_and_still_deliver_in_order() {
        let mut cal = Calendar::new();
        // Interleave near (lane) and far (heap) schedules.
        cal.schedule(SimTime::from_secs(2), 4u32);
        cal.schedule(SimTime::from_millis(1), 1u32);
        cal.schedule(SimTime::from_secs(1), 3u32);
        cal.schedule(SimTime::from_millis(50), 2u32);
        let stats = cal.stats();
        assert_eq!(stats.lane_schedules, 2);
        assert_eq!(stats.heap_schedules, 2);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        let stats = cal.stats();
        assert_eq!(stats.pops, 4);
        // The far events were still in the heap when they surfaced (the
        // clock only reaches them when they are the minimum).
        assert_eq!(stats.lane_pops, 2);
        assert_eq!(stats.heap_pops, 2);
    }

    #[test]
    fn horizon_rollover_reuses_ring_buckets() {
        // March the clock through many full ring rotations with a short
        // event chain; every bucket gets reused repeatedly and order must
        // survive. 10 ms steps × 1000 = 10 s ≈ 37 rotations.
        let mut cal = Calendar::new();
        let mut t = SimTime::ZERO;
        cal.schedule(t + SimDuration::from_millis(10), 0u32);
        for i in 0..1000u32 {
            let (at, e) = cal.pop().expect("chain event");
            assert_eq!(e, i);
            assert!(at > t);
            t = at;
            cal.schedule(t + SimDuration::from_millis(10), i + 1);
        }
        assert_eq!(cal.stats().lane_schedules, 1001);
        assert_eq!(cal.stats().heap_schedules, 0);
    }

    #[test]
    fn cancels_tracked_in_both_tiers() {
        let mut cal = Calendar::new();
        let near = cal.schedule(SimTime::from_millis(1), "near");
        let far = cal.schedule(SimTime::from_secs(5), "far");
        cal.schedule(SimTime::from_millis(2), "keep");
        assert!(cal.cancel(near));
        assert!(cal.cancel(far));
        assert_eq!(cal.stats().cancels, 2);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("keep"));
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn large_random_workload_pops_sorted_with_slot_reuse() {
        // Deterministic pseudo-random mix of schedules, cancels, and pops;
        // verifies heap order and slot recycling under churn.
        let mut cal = Calendar::new();
        let mut state = 0x9E37_79B9_u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut pending: Vec<EventId> = Vec::new();
        let mut last = SimTime::ZERO;
        let mut delivered = 0u32;
        let mut scheduled = 0u32;
        let mut cancelled = 0u32;
        for _ in 0..10_000 {
            match next(4) {
                0 | 1 => {
                    let at = cal.now() + SimDuration::from_micros(next(1_000) + 1);
                    pending.push(cal.schedule(at, ()));
                    scheduled += 1;
                }
                2 if !pending.is_empty() => {
                    let i = next(pending.len() as u64) as usize;
                    if cal.cancel(pending.swap_remove(i)) {
                        cancelled += 1;
                    }
                }
                _ => {
                    if let Some((at, ())) = cal.pop() {
                        assert!(at >= last);
                        last = at;
                        delivered += 1;
                    }
                }
            }
        }
        while cal.pop().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered + cancelled, scheduled);
        assert!(cal.is_empty());
    }

    #[test]
    fn heap_only_delivers_the_same_order_as_two_tier() {
        let mut two_tier: Calendar<u64> = Calendar::new();
        let mut heap_only: Calendar<u64> = Calendar::heap_only();
        // Mixed near-horizon and far-future timestamps, including ties
        // (seq must break them identically in both tiers).
        let mut x = 0x9E37_79B9u64;
        let mut next = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        for i in 0..5_000u64 {
            let at = SimTime::from_micros(next(2_000_000));
            two_tier.schedule(at, i);
            heap_only.schedule(at, i);
        }
        assert_eq!(heap_only.stats().lane_schedules, 0);
        assert!(two_tier.stats().lane_schedules > 0);
        loop {
            match (two_tier.pop(), heap_only.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }
}
