//! The event calendar: a priority queue of timestamped events.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (a monotone sequence number breaks ties), which makes
//! simulations fully deterministic.
//!
//! Internally the calendar is an indexed **4-ary min-heap** over stable
//! event *slots*:
//!
//! * Heap nodes are small `(time, seq, slot)` records ordered by
//!   `(time, seq)`. A 4-ary layout halves the tree depth of a binary heap
//!   and keeps the four children of a node in at most two cache lines, so
//!   the pop-side sift touches far less memory than `BinaryHeap` did.
//! * Event payloads live in a slot arena addressed by the heap nodes. A
//!   slot is recycled through a free list when its event is delivered or
//!   cancelled, so the steady-state schedule/pop cycle allocates nothing.
//! * [`Calendar::cancel`] is O(1): it empties the slot and bumps its
//!   generation; the matching heap node becomes *stale* and is skipped
//!   (and discarded) whenever it surfaces at the root. There is no
//!   tombstone set to hash into on the hot pop path.

use crate::time::SimTime;

/// Handle to a scheduled event, usable with [`Calendar::cancel`].
///
/// Packs the event's slot index and the slot's generation at scheduling
/// time; a stale handle (delivered, cancelled, or recycled slot) never
/// matches again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> Self {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One heap node: the ordering key plus the slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct Node {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Node {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A payload slot. `seq` identifies the occupant; `event` is `None` once
/// the occupant was cancelled (the slot is then already on the free list,
/// waiting for its stale heap node to surface and be discarded).
#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    seq: u64,
    event: Option<E>,
}

/// A deterministic event calendar.
///
/// ```
/// use ccsim_des::{Calendar, SimTime};
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::from_secs(2), "second");
/// cal.schedule(SimTime::from_secs(1), "first");
/// let (t, e) = cal.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
pub struct Calendar<E> {
    heap: Vec<Node>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Live (scheduled, neither delivered nor cancelled) events.
    live: usize,
    /// High-water mark of `live` over the calendar's lifetime.
    peak_live: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Create an empty calendar with the clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The most live events ever pending at once (peak occupancy).
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — the simulated past
    /// is immutable.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, generation) = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.seq = seq;
                sl.event = Some(event);
                (s, sl.generation)
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("calendar slot index overflow");
                self.slots.push(Slot {
                    generation: 0,
                    seq,
                    event: Some(event),
                });
                (s, 0)
            }
        };
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        self.heap.push(Node { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
        EventId::new(slot, generation)
    }

    /// Cancel a previously scheduled event in O(1). Returns `true` if the
    /// event was still pending (i.e. had not yet been delivered or
    /// cancelled). The stale heap node is discarded lazily when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot()) else {
            return false;
        };
        if slot.generation != id.generation() || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.slot() as u32);
        self.live -= 1;
        true
    }

    /// Remove and return the earliest event together with its timestamp,
    /// advancing the clock. Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let node = *self.heap.first()?;
            self.remove_root();
            let slot = &mut self.slots[node.slot as usize];
            if slot.seq != node.seq {
                continue; // stale: cancelled and the slot already recycled
            }
            let Some(event) = slot.event.take() else {
                continue; // stale: cancelled, slot awaiting reuse
            };
            slot.generation = slot.generation.wrapping_add(1);
            self.free.push(node.slot);
            self.live -= 1;
            debug_assert!(node.at >= self.now, "event calendar went backwards");
            self.now = node.at;
            return Some((node.at, event));
        }
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let node = *self.heap.first()?;
            let slot = &self.slots[node.slot as usize];
            if slot.seq == node.seq && slot.event.is_some() {
                return Some(node.at);
            }
            self.remove_root();
        }
    }

    // -- 4-ary heap primitives ------------------------------------------

    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("remove_root on empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let node = self.heap[i];
        let key = node.key();
        while i > 0 {
            let parent = (i - 1) / 4;
            if key < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = node;
    }

    /// Bottom-up sift: the displaced node comes from the heap's last
    /// position, so it almost always belongs near the bottom again. Descend
    /// along the min-child path unconditionally (skipping the
    /// node-vs-child test per level that would nearly never terminate
    /// early), then bubble the node back up the few levels it needs.
    fn sift_down(&mut self, start: usize) {
        let len = self.heap.len();
        let node = self.heap[start];
        let mut i = start;
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let end = (first + 4).min(len);
            let mut min = first;
            let mut min_key = self.heap[first].key();
            for c in first + 1..end {
                let k = self.heap[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            self.heap[i] = self.heap[min];
            i = min;
        }
        // `i` is now a leaf of the min-child path; bubble `node` up to its
        // place (never above `start`, whose subtree it came to fill).
        let key = node.key();
        while i > start {
            let parent = (i - 1) / 4;
            if key < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), 3u32);
        cal.schedule(SimTime::from_secs(1), 1u32);
        cal.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        assert!(cal.cancel(a));
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_unknown_returns_false() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId::new(99, 0)));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), ());
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), ());
        assert_eq!(cal.pop(), Some((SimTime::from_secs(1), ())));
        assert!(!cal.cancel(a));
    }

    #[test]
    fn recycled_slot_does_not_resurrect_old_handle() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        assert!(cal.cancel(a));
        // The slot is recycled for a new event; the old handle must not be
        // able to cancel the newcomer, and the newcomer must deliver.
        let b = cal.schedule(SimTime::from_secs(2), "b");
        assert!(!cal.cancel(a));
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(!cal.cancel(b));
    }

    #[test]
    fn fifo_order_survives_interleaved_cancellation() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        let ids: Vec<_> = (0..10).map(|i| cal.schedule(t, i)).collect();
        // Cancel the odd ones; evens must still come out in FIFO order.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                assert!(cal.cancel(*id));
            }
        }
        let order: Vec<usize> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1), "a");
        cal.schedule(SimTime::from_secs(2), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn schedule_same_time_as_now_is_ok() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(1), 1);
        cal.pop();
        // An event may fire "now" (zero-delay continuation).
        cal.schedule(cal.now() + SimDuration::ZERO, 2);
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut cal = Calendar::new();
        let ids: Vec<_> = (0..5)
            .map(|i| cal.schedule(SimTime::from_secs(i + 1), i))
            .collect();
        assert_eq!(cal.len(), 5);
        cal.cancel(ids[0]);
        cal.cancel(ids[3]);
        assert_eq!(cal.len(), 3);
        assert!(!cal.is_empty());
    }

    #[test]
    fn large_random_workload_pops_sorted_with_slot_reuse() {
        // Deterministic pseudo-random mix of schedules, cancels, and pops;
        // verifies heap order and slot recycling under churn.
        let mut cal = Calendar::new();
        let mut state = 0x9E37_79B9_u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut pending: Vec<EventId> = Vec::new();
        let mut last = SimTime::ZERO;
        let mut delivered = 0u32;
        let mut scheduled = 0u32;
        let mut cancelled = 0u32;
        for _ in 0..10_000 {
            match next(4) {
                0 | 1 => {
                    let at = cal.now() + SimDuration::from_micros(next(1_000) + 1);
                    pending.push(cal.schedule(at, ()));
                    scheduled += 1;
                }
                2 if !pending.is_empty() => {
                    let i = next(pending.len() as u64) as usize;
                    if cal.cancel(pending.swap_remove(i)) {
                        cancelled += 1;
                    }
                }
                _ => {
                    if let Some((at, ())) = cal.pop() {
                        assert!(at >= last);
                        last = at;
                        delivered += 1;
                    }
                }
            }
        }
        while cal.pop().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered + cancelled, scheduled);
        assert!(cal.is_empty());
    }
}
