//! `ccsim-des` — a small, deterministic discrete-event simulation engine.
//!
//! This crate provides the substrate on which the closed queuing model of
//! Agrawal, Carey & Livny's *"Models for Studying Concurrency Control
//! Performance"* (SIGMOD 1985) is built:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time;
//! * [`Calendar`] — an event calendar with FIFO tie-breaking and cancellation;
//! * [`Xoshiro256StarStar`] / [`RngStreams`] — reproducible random number
//!   streams (one per stochastic model component);
//! * [`Exponential`], [`UniformInclusive`], [`sample_distinct`] — the
//!   variate generators the workload model needs.
//!
//! # Example
//!
//! ```
//! use ccsim_des::{Calendar, Exponential, RngStreams, SimDuration, SimTime};
//!
//! let streams = RngStreams::new(1);
//! let mut rng = streams.stream(0);
//! let think = Exponential::new(SimDuration::from_secs(1));
//!
//! let mut cal: Calendar<u32> = Calendar::new();
//! cal.schedule(SimTime::ZERO + think.sample(&mut rng), 7);
//! while let Some((now, event)) = cal.pop() {
//!     assert_eq!(event, 7);
//!     assert!(now >= SimTime::ZERO);
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod calendar;
mod dist;
mod rng;
mod time;

pub use calendar::{Calendar, CalendarStats, EventId};
pub use dist::{
    sample_distinct, sample_distinct_into, sample_exponential, ExpBlock, ExpRefill, Exponential,
    UniformBlock, UniformInclusive,
};
pub use rng::{
    derive_point_seed, derive_seed, BufferedRng, RandomSource, RngStreams, SplitMix64,
    Xoshiro256StarStar,
};
pub use time::{SimDuration, SimTime, MICROS_PER_MILLI, MICROS_PER_SEC};
