//! Random variates used by the model.
//!
//! The paper draws external/internal think times and the adaptive restart
//! delay from exponential distributions, transaction sizes from a discrete
//! uniform distribution, write membership from a Bernoulli trial, and read
//! sets uniformly **without replacement** from the database.

use crate::rng::RandomSource;
use crate::time::SimDuration;

/// Exponential distribution over simulated durations.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: SimDuration,
}

impl Exponential {
    /// An exponential with the given mean.
    #[must_use]
    pub fn new(mean: SimDuration) -> Self {
        Exponential { mean }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// Draw one variate. A zero mean yields a zero duration (degenerate
    /// distribution), which the model uses to disable a think path.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> SimDuration {
        sample_exponential(self.mean, rng)
    }
}

/// Convert one uniform 64-bit word into exponential microseconds.
///
/// This is the single definition of the word → variate mapping: the scalar
/// path ([`sample_exponential`]) and the batched path ([`ExpBlock`]) both
/// call it, so the two agree bit-for-bit by construction — including at the
/// u → 1.0 boundary (word with all top 53 bits set), where `1 - u` is the
/// smallest representable positive step and `-ln` peaks at ~36.7 means.
#[inline]
fn exp_micros_from_word(mean_us: f64, word: u64) -> u64 {
    // Top 53 bits give U in [0, 1) — exactly `RandomSource::next_f64`.
    let u = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    // Inverse transform: -mean * ln(1 - U), U in [0,1) so 1-U in (0,1].
    let x = -mean_us * (1.0 - u).ln();
    x.round() as u64
}

/// Draw an exponential variate with the given mean without constructing a
/// distribution value (used where the mean changes every draw, e.g. the
/// adaptive restart delay).
pub fn sample_exponential<R: RandomSource>(mean: SimDuration, rng: &mut R) -> SimDuration {
    if mean.is_zero() {
        return SimDuration::ZERO;
    }
    SimDuration::from_micros(exp_micros_from_word(
        mean.as_micros() as f64,
        rng.next_u64(),
    ))
}

/// Variates buffered per refill in [`ExpBlock`] / [`UniformBlock`].
const DIST_BLOCK: usize = 16;

/// Batched exponential sampler for a **fixed** mean: draws uniform words a
/// block at a time and converts them with `ln` in one tight loop, then
/// serves variates from the buffer.
///
/// Because the refill consumes words from the stream in order and converts
/// each with the same [`exp_micros_from_word`] the scalar path uses, the
/// variate sequence is bit-identical to calling
/// [`sample_exponential`] per draw — provided this block is the stream's
/// sole consumer (otherwise the prefetch would reorder draws across
/// consumers). A zero mean is degenerate exactly like the scalar path:
/// every sample is zero and **no** randomness is consumed.
#[derive(Debug, Clone)]
pub struct ExpBlock {
    mean: SimDuration,
    mean_us: f64,
    buf: [u64; DIST_BLOCK],
    pos: usize,
}

impl ExpBlock {
    /// A batched sampler with the given fixed mean.
    #[must_use]
    pub fn new(mean: SimDuration) -> Self {
        ExpBlock {
            mean,
            mean_us: mean.as_micros() as f64,
            buf: [0; DIST_BLOCK],
            pos: DIST_BLOCK,
        }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// Draw one variate; refills the buffer from `rng` when it runs dry.
    #[inline]
    pub fn sample<R: RandomSource>(&mut self, rng: &mut R) -> SimDuration {
        if self.mean.is_zero() {
            return SimDuration::ZERO;
        }
        if self.pos == DIST_BLOCK {
            self.refill(rng);
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        SimDuration::from_micros(v)
    }

    #[cold]
    fn refill<R: RandomSource>(&mut self, rng: &mut R) {
        let mut words = [0u64; DIST_BLOCK];
        rng.fill_u64(&mut words);
        for (out, w) in self.buf.iter_mut().zip(words) {
            *out = exp_micros_from_word(self.mean_us, w);
        }
        self.pos = 0;
    }

    /// True when the buffer is exhausted: the next [`ExpBlock::sample`]
    /// will refill from the stream (unless the mean is zero, which never
    /// consumes randomness).
    #[must_use]
    pub fn is_dry(&self) -> bool {
        self.pos == DIST_BLOCK
    }

    /// Buffered variates still to be served before the next refill.
    #[must_use]
    pub fn remaining(&self) -> usize {
        DIST_BLOCK - self.pos
    }

    /// Compute the *next* refill of this block without touching the block
    /// or the live stream: the caller hands in a read-only view of the
    /// stream's current state and gets back the exact buffer the next
    /// [`ExpBlock::sample`]-triggered refill would produce, plus the
    /// stream state it would leave behind.
    ///
    /// This is the worker-lane half of the speculative refill protocol:
    /// a worker thread precomputes the refill off the critical path while
    /// the merge thread owns the live RNG, and the merge thread later
    /// installs it with [`ExpBlock::install_refill`]. Bit-identity holds
    /// because the refill consumes a fixed run of [`DIST_BLOCK`] words via
    /// the same `fill_u64` + [`exp_micros_from_word`] pipeline the
    /// in-place refill uses.
    #[must_use]
    pub fn precompute_refill(&self, rng: &crate::rng::Xoshiro256StarStar) -> ExpRefill {
        let before = rng.clone();
        let mut rng = rng.clone();
        let mut words = [0u64; DIST_BLOCK];
        rng.fill_u64(&mut words);
        let mut buf = [0u64; DIST_BLOCK];
        for (out, w) in buf.iter_mut().zip(words) {
            *out = exp_micros_from_word(self.mean_us, w);
        }
        ExpRefill {
            rng_before: before,
            rng_after: rng,
            buf,
        }
    }

    /// Install a refill precomputed by [`ExpBlock::precompute_refill`],
    /// advancing `rng` past the words the refill consumed. Returns `false`
    /// — installing nothing — unless the block is dry *and* `rng` still
    /// matches the state the refill was computed from; a `false` return
    /// means the caller should fall back to the ordinary
    /// [`ExpBlock::sample`] path, which produces the identical sequence.
    pub fn install_refill(
        &mut self,
        refill: &ExpRefill,
        rng: &mut crate::rng::Xoshiro256StarStar,
    ) -> bool {
        if !self.is_dry() || self.mean.is_zero() || *rng != refill.rng_before {
            return false;
        }
        self.buf = refill.buf;
        self.pos = 0;
        *rng = refill.rng_after.clone();
        true
    }

    /// Batched draw: fill `out` with variates. Equivalent bit-for-bit — in
    /// values, word consumption, and the buffer state left behind — to
    /// `out.len()` calls to [`ExpBlock::sample`], but served a buffered run
    /// at a time instead of one position check per draw.
    pub fn fill<R: RandomSource>(&mut self, rng: &mut R, out: &mut [SimDuration]) {
        if self.mean.is_zero() {
            out.fill(SimDuration::ZERO);
            return;
        }
        let mut out = out;
        while !out.is_empty() {
            if self.pos == DIST_BLOCK {
                self.refill(rng);
            }
            let take = (DIST_BLOCK - self.pos).min(out.len());
            let run = &self.buf[self.pos..self.pos + take];
            for (o, &v) in out[..take].iter_mut().zip(run) {
                *o = SimDuration::from_micros(v);
            }
            self.pos += take;
            out = &mut out[take..];
        }
    }
}

/// One precomputed [`ExpBlock`] refill: the buffer the next refill would
/// produce plus the RNG states bracketing it (see
/// [`ExpBlock::precompute_refill`]). The `rng_before` snapshot makes
/// installation self-validating: a refill computed from a state the live
/// stream has since moved past can never be applied.
#[derive(Debug, Clone)]
pub struct ExpRefill {
    rng_before: crate::rng::Xoshiro256StarStar,
    rng_after: crate::rng::Xoshiro256StarStar,
    buf: [u64; DIST_BLOCK],
}

/// Batched uniform-integer sampler over `[0, bound)` for a **fixed** bound:
/// buffers uniform words and applies Lemire's multiply-shift per draw, with
/// the rejection threshold precomputed once at construction.
///
/// Word consumption matches `RandomSource::next_below(bound)` exactly: the
/// power-of-two fast path masks one word per draw, and the Lemire path
/// accepts a word iff its low product half is ≥ `2^64 mod bound` — the same
/// accept/reject sequence as the scalar's lazy-threshold form — so the
/// value sequence is bit-identical when this block is the stream's sole
/// consumer.
#[derive(Debug, Clone)]
pub struct UniformBlock {
    bound: u64,
    /// `2^64 mod bound`; only consulted on the non-power-of-two path.
    threshold: u64,
    words: [u64; DIST_BLOCK],
    pos: usize,
}

impl UniformBlock {
    /// A batched sampler over `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "UniformBlock bound must be positive");
        UniformBlock {
            bound,
            threshold: bound.wrapping_neg() % bound,
            words: [0; DIST_BLOCK],
            pos: DIST_BLOCK,
        }
    }

    /// The exclusive upper bound.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draw one variate; refills the buffer from `rng` as words are used.
    #[inline]
    pub fn sample<R: RandomSource>(&mut self, rng: &mut R) -> u64 {
        loop {
            if self.pos == DIST_BLOCK {
                rng.fill_u64(&mut self.words);
                self.pos = 0;
            }
            let w = self.words[self.pos];
            self.pos += 1;
            if self.bound.is_power_of_two() {
                return w & (self.bound - 1);
            }
            let m = (w as u128) * (self.bound as u128);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Batched draw: fill `out` with variates, identical to `out.len()`
    /// calls to [`UniformBlock::sample`]. Rejection makes the per-draw word
    /// count data-dependent, so this stays a sample loop — the win is the
    /// block-refilled word stream underneath, not vectorized rejection.
    pub fn fill<R: RandomSource>(&mut self, rng: &mut R, out: &mut [u64]) {
        for o in out {
            *o = self.sample(rng);
        }
    }
}

/// Discrete uniform over an inclusive integer range.
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive {
    lo: u64,
    hi: u64,
}

impl UniformInclusive {
    /// Uniform over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "UniformInclusive: lo > hi");
        UniformInclusive { lo, hi }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    /// Draw one variate.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> u64 {
        rng.next_range_inclusive(self.lo, self.hi)
    }
}

/// Sample `k` **distinct** integers uniformly from `[0, n)` using Robert
/// Floyd's algorithm: O(k) draws, no O(n) allocation.
///
/// The returned order is randomized (the paper's transactions access their
/// read sets in an arbitrary but fixed order).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct<R: RandomSource>(n: u64, k: usize, rng: &mut R) -> Vec<u64> {
    let mut chosen: Vec<u64> = Vec::with_capacity(k);
    sample_distinct_into(n, k, rng, &mut chosen);
    chosen
}

/// As [`sample_distinct`], but writing into `out` (cleared first) so a
/// caller that draws a sample per transaction can recycle one buffer
/// instead of allocating each time. Consumes identical randomness.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct_into<R: RandomSource>(n: u64, k: usize, rng: &mut R, out: &mut Vec<u64>) {
    assert!(
        (k as u64) <= n,
        "sample_distinct: cannot draw {k} distinct values from a universe of {n}"
    );
    out.clear();
    out.reserve(k);
    // Floyd: for j = n-k .. n-1, pick t in [0, j]; if t already chosen, take j.
    let start = n - k as u64;
    for j in start..n {
        let t = rng.next_below(j + 1);
        if out.contains(&t) {
            out.push(j);
        } else {
            out.push(t);
        }
    }
    // Floyd's output is biased toward sorted insertion order; shuffle so the
    // access order is uniform too (Fisher-Yates).
    for i in (1..out.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        out.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::time::MICROS_PER_SEC;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(20260705)
    }

    /// A `RandomSource` that replays a fixed word sequence — lets the edge
    /// tests drive both sampler paths with hand-picked words.
    struct FixedWords {
        words: Vec<u64>,
        pos: usize,
    }

    impl FixedWords {
        fn new(words: Vec<u64>) -> Self {
            FixedWords { words, pos: 0 }
        }

        fn consumed(&self) -> usize {
            self.pos
        }
    }

    impl RandomSource for FixedWords {
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.pos % self.words.len()];
            self.pos += 1;
            w
        }
    }

    #[test]
    fn precomputed_refill_matches_plain_sampling() {
        let mean = SimDuration::from_secs(1);
        let mut live = rng();
        let mut plain = rng();
        let mut a = ExpBlock::new(mean);
        let mut b = ExpBlock::new(mean);
        // Walk several refill cycles, installing a precomputed refill at
        // every dry point; the draw sequence must match plain sampling
        // bit-for-bit and leave the streams in identical states.
        for i in 0..100 {
            if a.is_dry() {
                let refill = a.precompute_refill(&live);
                assert!(a.install_refill(&refill, &mut live), "install at {i}");
            }
            assert_eq!(
                a.sample(&mut live),
                b.sample(&mut plain),
                "draw {i} diverged"
            );
        }
        assert_eq!(live, plain, "stream states diverged");
        // A refill from a superseded stream state must refuse to install.
        let stale = a.precompute_refill(&live);
        while !a.is_dry() {
            let _ = a.sample(&mut live);
        }
        let _ = a.sample(&mut live); // triggers an ordinary refill
        while !a.is_dry() {
            let _ = a.sample(&mut live);
        }
        assert!(!a.install_refill(&stale, &mut live), "stale refill applied");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let d = Exponential::new(SimDuration::from_secs(2));
        let n = 200_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut r).as_micros()).sum();
        let mean = total as f64 / n as f64;
        let expect = 2.0 * MICROS_PER_SEC as f64;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_degenerate() {
        let mut r = rng();
        let d = Exponential::new(SimDuration::ZERO);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), SimDuration::ZERO);
        }
        // The zero-mean short-circuit must not consume randomness — on
        // either path. A perturbed stream would silently shift every later
        // draw and break CRN pairing.
        let mut scalar = FixedWords::new(vec![42]);
        assert_eq!(
            sample_exponential(SimDuration::ZERO, &mut scalar),
            SimDuration::ZERO
        );
        assert_eq!(scalar.consumed(), 0, "scalar zero-mean consumed a word");
        let mut batched_src = FixedWords::new(vec![42]);
        let mut batched = ExpBlock::new(SimDuration::ZERO);
        for _ in 0..100 {
            assert_eq!(batched.sample(&mut batched_src), SimDuration::ZERO);
        }
        assert_eq!(
            batched_src.consumed(),
            0,
            "batched zero-mean consumed words"
        );
    }

    #[test]
    fn exp_block_matches_scalar_bit_for_bit() {
        // Same stream, same mean: the batched sampler must reproduce the
        // scalar draw sequence exactly, across several refills.
        let mean = SimDuration::from_secs(1);
        let mut scalar_rng = rng();
        let mut batched_rng = rng();
        let mut block = ExpBlock::new(mean);
        for i in 0..1_000 {
            let s = sample_exponential(mean, &mut scalar_rng);
            let b = block.sample(&mut batched_rng);
            assert_eq!(s, b, "draw {i} diverged: scalar {s:?} vs batched {b:?}");
        }
    }

    #[test]
    fn exp_paths_agree_at_u_one_boundary() {
        // The largest representable U: all top 53 bits set, so 1 - U is one
        // ulp below 1.0 and -ln(1-U) is at its maximum (~36.7 means). Both
        // paths must map this word — and the all-zero word (U = 0, variate
        // 0) — to the same value.
        let max_u_word = u64::MAX; // top 53 bits all ones after >> 11
        let mean = SimDuration::from_secs(1);
        for word in [max_u_word, 0u64, 1u64 << 11, (1u64 << 63) | 0x7FF] {
            let mut scalar = FixedWords::new(vec![word]);
            let s = sample_exponential(mean, &mut scalar);
            let mut batched_src = FixedWords::new(vec![word]);
            let mut block = ExpBlock::new(mean);
            let b = block.sample(&mut batched_src);
            assert_eq!(s, b, "word {word:#x} diverged");
        }
        // And the boundary value itself is finite and near the analytic max.
        let mut src = FixedWords::new(vec![max_u_word]);
        let v = sample_exponential(mean, &mut src);
        let expect = -(MICROS_PER_SEC as f64)
            * (1.0 - (((u64::MAX >> 11) as f64) * (1.0 / (1u64 << 53) as f64))).ln();
        assert_eq!(v.as_micros(), expect.round() as u64);
    }

    #[test]
    fn uniform_block_matches_scalar_bit_for_bit() {
        // Power-of-two and Lemire-rejection bounds, across refills.
        for bound in [1u64, 2, 7, 1000, (1 << 20) - 1] {
            let mut scalar_rng = rng();
            let mut batched_rng = rng();
            let mut block = UniformBlock::new(bound);
            for i in 0..1_000 {
                let s = scalar_rng.next_below(bound);
                let b = block.sample(&mut batched_rng);
                assert_eq!(s, b, "bound {bound} draw {i} diverged");
            }
        }
    }

    #[test]
    fn exponential_variance_matches() {
        // For Exp(mean m), variance = m^2.
        let mut r = rng();
        let m = SimDuration::from_millis(500);
        let n = 200_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_exponential(m, &mut r).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 0.25).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn uniform_inclusive_covers_range() {
        let mut r = rng();
        let d = UniformInclusive::new(4, 12);
        let mut counts = [0u32; 13];
        for _ in 0..90_000 {
            counts[d.sample(&mut r) as usize] += 1;
        }
        for (v, &count) in counts.iter().enumerate().take(13).skip(4) {
            assert!(count > 8_000, "value {v} count {count}");
        }
        assert_eq!(counts[..4].iter().sum::<u32>(), 0);
        assert!((d.mean() - 8.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = rng();
        for _ in 0..200 {
            let v = sample_distinct(1000, 12, &mut r);
            assert_eq!(v.len(), 12);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 12, "duplicates in {v:?}");
            assert!(v.iter().all(|&x| x < 1000));
        }
    }

    #[test]
    fn sample_distinct_full_universe() {
        let mut r = rng();
        let mut v = sample_distinct(8, 8, &mut r);
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        // Each of 20 objects should appear in a 4-subset with p = 0.2.
        let mut r = rng();
        let mut counts = [0u32; 20];
        let trials = 50_000;
        for _ in 0..trials {
            for x in sample_distinct(20, 4, &mut r) {
                counts[x as usize] += 1;
            }
        }
        for &c in &counts {
            let p = c as f64 / trials as f64;
            assert!((p - 0.2).abs() < 0.02, "inclusion prob {p}");
        }
    }

    #[test]
    fn sample_distinct_order_is_shuffled() {
        // The first element should be roughly uniform over the universe,
        // not biased toward small ids.
        let mut r = rng();
        let trials = 30_000;
        let mut first_small = 0;
        for _ in 0..trials {
            let v = sample_distinct(100, 10, &mut r);
            if v[0] < 50 {
                first_small += 1;
            }
        }
        let p = first_small as f64 / trials as f64;
        assert!((p - 0.5).abs() < 0.03, "first-element small fraction {p}");
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn sample_distinct_overdraw_panics() {
        let mut r = rng();
        sample_distinct(4, 5, &mut r);
    }
}
