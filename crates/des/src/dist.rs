//! Random variates used by the model.
//!
//! The paper draws external/internal think times and the adaptive restart
//! delay from exponential distributions, transaction sizes from a discrete
//! uniform distribution, write membership from a Bernoulli trial, and read
//! sets uniformly **without replacement** from the database.

use crate::rng::Xoshiro256StarStar;
use crate::time::SimDuration;

/// Exponential distribution over simulated durations.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: SimDuration,
}

impl Exponential {
    /// An exponential with the given mean.
    #[must_use]
    pub fn new(mean: SimDuration) -> Self {
        Exponential { mean }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// Draw one variate. A zero mean yields a zero duration (degenerate
    /// distribution), which the model uses to disable a think path.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> SimDuration {
        sample_exponential(self.mean, rng)
    }
}

/// Draw an exponential variate with the given mean without constructing a
/// distribution value (used where the mean changes every draw, e.g. the
/// adaptive restart delay).
pub fn sample_exponential(mean: SimDuration, rng: &mut Xoshiro256StarStar) -> SimDuration {
    if mean.is_zero() {
        return SimDuration::ZERO;
    }
    // Inverse transform: -mean * ln(1 - U), U in [0,1) so 1-U in (0,1].
    let u = rng.next_f64();
    let x = -(mean.as_micros() as f64) * (1.0 - u).ln();
    SimDuration::from_micros(x.round() as u64)
}

/// Discrete uniform over an inclusive integer range.
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive {
    lo: u64,
    hi: u64,
}

impl UniformInclusive {
    /// Uniform over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "UniformInclusive: lo > hi");
        UniformInclusive { lo, hi }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    /// Draw one variate.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        rng.next_range_inclusive(self.lo, self.hi)
    }
}

/// Sample `k` **distinct** integers uniformly from `[0, n)` using Robert
/// Floyd's algorithm: O(k) draws, no O(n) allocation.
///
/// The returned order is randomized (the paper's transactions access their
/// read sets in an arbitrary but fixed order).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct(n: u64, k: usize, rng: &mut Xoshiro256StarStar) -> Vec<u64> {
    let mut chosen: Vec<u64> = Vec::with_capacity(k);
    sample_distinct_into(n, k, rng, &mut chosen);
    chosen
}

/// As [`sample_distinct`], but writing into `out` (cleared first) so a
/// caller that draws a sample per transaction can recycle one buffer
/// instead of allocating each time. Consumes identical randomness.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct_into(n: u64, k: usize, rng: &mut Xoshiro256StarStar, out: &mut Vec<u64>) {
    assert!(
        (k as u64) <= n,
        "sample_distinct: cannot draw {k} distinct values from a universe of {n}"
    );
    out.clear();
    out.reserve(k);
    // Floyd: for j = n-k .. n-1, pick t in [0, j]; if t already chosen, take j.
    let start = n - k as u64;
    for j in start..n {
        let t = rng.next_below(j + 1);
        if out.contains(&t) {
            out.push(j);
        } else {
            out.push(t);
        }
    }
    // Floyd's output is biased toward sorted insertion order; shuffle so the
    // access order is uniform too (Fisher-Yates).
    for i in (1..out.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        out.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MICROS_PER_SEC;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(20260705)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let d = Exponential::new(SimDuration::from_secs(2));
        let n = 200_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut r).as_micros()).sum();
        let mean = total as f64 / n as f64;
        let expect = 2.0 * MICROS_PER_SEC as f64;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_degenerate() {
        let mut r = rng();
        let d = Exponential::new(SimDuration::ZERO);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), SimDuration::ZERO);
        }
    }

    #[test]
    fn exponential_variance_matches() {
        // For Exp(mean m), variance = m^2.
        let mut r = rng();
        let m = SimDuration::from_millis(500);
        let n = 200_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_exponential(m, &mut r).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 0.25).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn uniform_inclusive_covers_range() {
        let mut r = rng();
        let d = UniformInclusive::new(4, 12);
        let mut counts = [0u32; 13];
        for _ in 0..90_000 {
            counts[d.sample(&mut r) as usize] += 1;
        }
        for (v, &count) in counts.iter().enumerate().take(13).skip(4) {
            assert!(count > 8_000, "value {v} count {count}");
        }
        assert_eq!(counts[..4].iter().sum::<u32>(), 0);
        assert!((d.mean() - 8.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = rng();
        for _ in 0..200 {
            let v = sample_distinct(1000, 12, &mut r);
            assert_eq!(v.len(), 12);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 12, "duplicates in {v:?}");
            assert!(v.iter().all(|&x| x < 1000));
        }
    }

    #[test]
    fn sample_distinct_full_universe() {
        let mut r = rng();
        let mut v = sample_distinct(8, 8, &mut r);
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        // Each of 20 objects should appear in a 4-subset with p = 0.2.
        let mut r = rng();
        let mut counts = [0u32; 20];
        let trials = 50_000;
        for _ in 0..trials {
            for x in sample_distinct(20, 4, &mut r) {
                counts[x as usize] += 1;
            }
        }
        for &c in &counts {
            let p = c as f64 / trials as f64;
            assert!((p - 0.2).abs() < 0.02, "inclusion prob {p}");
        }
    }

    #[test]
    fn sample_distinct_order_is_shuffled() {
        // The first element should be roughly uniform over the universe,
        // not biased toward small ids.
        let mut r = rng();
        let trials = 30_000;
        let mut first_small = 0;
        for _ in 0..trials {
            let v = sample_distinct(100, 10, &mut r);
            if v[0] < 50 {
                first_small += 1;
            }
        }
        let p = first_small as f64 / trials as f64;
        assert!((p - 0.5).abs() < 0.03, "first-element small fraction {p}");
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn sample_distinct_overdraw_panics() {
        let mut r = rng();
        sample_distinct(4, 5, &mut r);
    }
}
