//! Simulated time.
//!
//! Time is kept in **integer microseconds** to avoid floating-point ordering
//! hazards inside the event calendar. All of the paper's parameter values
//! (Table 2 of Agrawal/Carey/Livny) are exact in this resolution: object I/O
//! is 35 ms = 35 000 µs, object CPU is 15 ms = 15 000 µs, and think times are
//! whole seconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds per millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An instant on the simulation clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    /// Construct from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The raw microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    /// Construct from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative and non-finite inputs are clamped to zero: exponential draws
    /// are never negative, but callers computing means from measured data
    /// should not be able to corrupt the clock.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The raw microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This duration expressed in (fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// Sum of two durations.
    #[must_use]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// True if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(35).as_micros(), 35_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(15).as_millis_f64(), 15.0);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.since(SimTime::from_secs(1)).as_micros(), 500_000);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(42);
        assert_eq!(u.as_micros(), 42);
        let d = SimDuration::from_secs(2) - SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1_000);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(35).to_string(), "0.035000s");
    }
}
