//! Property-based tests for the DES engine.

use ccsim_des::{
    derive_point_seed, derive_seed, sample_distinct, BufferedRng, Calendar, ExpBlock, RandomSource,
    SimDuration, SimTime, UniformBlock, Xoshiro256StarStar,
};
use proptest::prelude::*;

proptest! {
    /// Popping the calendar always yields events in nondecreasing time order,
    /// regardless of insertion order.
    #[test]
    fn calendar_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = cal.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Events at identical timestamps come out in insertion (FIFO) order.
    #[test]
    fn calendar_fifo_at_equal_times(n in 1usize..100, t in 0u64..1_000) {
        let mut cal = Calendar::new();
        for i in 0..n {
            cal.schedule(SimTime::from_micros(t), i);
        }
        let mut expected = 0;
        while let Some((_, e)) = cal.pop() {
            prop_assert_eq!(e, expected);
            expected += 1;
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn calendar_cancellation(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut cal = Calendar::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, cal.schedule(SimTime::from_micros(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            let cancel = cancel_mask.get(*i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(cal.cancel(*id));
            } else {
                expected.push(*i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, e)) = cal.pop() {
            popped.push(e);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Model-based fuzz of interleaved schedule / cancel / pop against a
    /// reference priority queue (a plain sorted scan). Exercises the slot
    /// free list, lazy tombstone discard, and heap repair paths that the
    /// schedule-everything-then-pop tests above never interleave.
    #[test]
    fn calendar_interleaved_model(
        ops in proptest::collection::vec((0u8..8, 0u64..10_000, 0usize..64), 1..400),
    ) {
        let mut cal = Calendar::new();
        // Live events in insertion order: (time, payload, id). FIFO at equal
        // times means the reference pop is "min time, earliest insertion".
        let mut model: Vec<(SimTime, usize, ccsim_des::EventId)> = Vec::new();
        let mut next_payload = 0usize;
        for (kind, t, sel) in ops {
            match kind {
                // Schedule at or after the clock (the past is immutable).
                0..=3 => {
                    let at = cal.now() + SimDuration::from_micros(t);
                    let id = cal.schedule(at, next_payload);
                    model.push((at, next_payload, id));
                    next_payload += 1;
                }
                // Pop must agree with the reference scan exactly.
                4 | 5 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, (at, _, _))| (*at, *i))
                        .map(|(i, _)| i);
                    match expect {
                        None => prop_assert_eq!(cal.pop(), None),
                        Some(i) => {
                            let (at, payload, _) = model.remove(i);
                            let got = cal.pop();
                            prop_assert_eq!(got, Some((at, payload)));
                        }
                    }
                }
                // Cancel a random live event; a second cancel of the same
                // id must report stale.
                6 => {
                    if !model.is_empty() {
                        let (_, _, id) = model.remove(sel % model.len());
                        prop_assert!(cal.cancel(id));
                        prop_assert!(!cal.cancel(id));
                    }
                }
                // Occupancy bookkeeping survives the churn.
                _ => prop_assert_eq!(cal.len(), model.len()),
            }
        }
        prop_assert_eq!(cal.len(), model.len());
        // Drain: the full remaining order must match the reference.
        while !model.is_empty() {
            let i = model
                .iter()
                .enumerate()
                .min_by_key(|(i, (at, _, _))| (*at, *i))
                .map(|(i, _)| i)
                .expect("model not empty");
            let (at, payload, _) = model.remove(i);
            prop_assert_eq!(cal.pop(), Some((at, payload)));
        }
        prop_assert_eq!(cal.pop(), None);
        prop_assert!(cal.is_empty());
    }

    /// The interleaved model again, but with schedule offsets spanning a
    /// full second — far past the ~262 ms near-horizon lane — so events
    /// straddle the lane/heap boundary, cancels land in both tiers, and
    /// draining pops advance the clock far enough to reuse ring buckets
    /// (horizon rollover). The reference scan is tier-blind, so any
    /// cross-tier ordering or staleness bug shows up as a divergence.
    #[test]
    fn calendar_interleaved_model_two_tier(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000_000, 0usize..64), 1..400),
    ) {
        let mut cal = Calendar::new();
        let mut model: Vec<(SimTime, usize, ccsim_des::EventId)> = Vec::new();
        let mut next_payload = 0usize;
        for (kind, t, sel) in ops {
            match kind {
                0..=3 => {
                    let at = cal.now() + SimDuration::from_micros(t);
                    let id = cal.schedule(at, next_payload);
                    model.push((at, next_payload, id));
                    next_payload += 1;
                }
                4 | 5 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, (at, _, _))| (*at, *i))
                        .map(|(i, _)| i);
                    match expect {
                        None => prop_assert_eq!(cal.pop(), None),
                        Some(i) => {
                            let (at, payload, _) = model.remove(i);
                            prop_assert_eq!(cal.pop(), Some((at, payload)));
                        }
                    }
                }
                6 => {
                    if !model.is_empty() {
                        let (_, _, id) = model.remove(sel % model.len());
                        prop_assert!(cal.cancel(id));
                        prop_assert!(!cal.cancel(id));
                    }
                }
                _ => prop_assert_eq!(cal.len(), model.len()),
            }
        }
        while !model.is_empty() {
            let i = model
                .iter()
                .enumerate()
                .min_by_key(|(i, (at, _, _))| (*at, *i))
                .map(|(i, _)| i)
                .expect("model not empty");
            let (at, payload, _) = model.remove(i);
            prop_assert_eq!(cal.pop(), Some((at, payload)));
        }
        prop_assert_eq!(cal.pop(), None);
        // Tier accounting must exactly partition the totals: every
        // schedule went to exactly one tier, and every pop was served
        // from exactly one.
        let s = cal.stats();
        prop_assert_eq!(s.lane_schedules + s.heap_schedules, s.schedules);
        prop_assert_eq!(s.lane_pops + s.heap_pops, s.pops);
        prop_assert_eq!(s.pops + s.cancels, s.schedules);
    }

    /// `sample_distinct` yields exactly `k` distinct in-range values.
    #[test]
    fn sample_distinct_invariants(seed in any::<u64>(), n in 1u64..5_000, k_frac in 0.0f64..1.0) {
        let k = ((n as f64 * k_frac) as usize).min(n as usize).max(1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let v = sample_distinct(n, k, &mut rng);
        prop_assert_eq!(v.len(), k);
        prop_assert!(v.iter().all(|&x| x < n));
        let mut s = v;
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), k);
    }

    /// Hierarchical seed derivation never collides across an experiment-
    /// sized grid (3 series × 7 mpls × 10 replications = 210 coordinates),
    /// for any base seed.
    #[test]
    fn derive_point_seed_collision_free_on_grid(base in any::<u64>()) {
        let mpls = [5u64, 10, 25, 50, 75, 100, 200];
        let mut seeds = Vec::with_capacity(3 * mpls.len() * 10);
        for series in 0..3u64 {
            for &mpl in &mpls {
                for rep in 0..10u64 {
                    seeds.push(derive_point_seed(base, series, mpl, rep));
                }
            }
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), n, "seed collision inside one grid");
    }

    /// Derivation is a pure function of `(base, path)`.
    #[test]
    fn derive_seed_deterministic(
        base in any::<u64>(),
        path in proptest::collection::vec(any::<u64>(), 0..6),
    ) {
        prop_assert_eq!(derive_seed(base, &path), derive_seed(base, &path));
    }

    /// Flipping only the replication index scrambles roughly half the seed
    /// bits (avalanche): adjacent replications get unrelated streams.
    #[test]
    fn derive_point_seed_avalanche_on_replication(
        base in any::<u64>(),
        series in 0u64..8,
        mpl in 1u64..256,
    ) {
        let mut total = 0u32;
        const PAIRS: u64 = 16;
        for rep in 0..PAIRS {
            let a = derive_point_seed(base, series, mpl, rep);
            let b = derive_point_seed(base, series, mpl, rep + 1);
            total += (a ^ b).count_ones();
        }
        let mean = f64::from(total) / PAIRS as f64;
        // A perfect mixer averages 32 flipped bits; [24, 40] leaves ~5 sigma
        // of slack while catching affine or low-entropy derivations.
        prop_assert!((24.0..=40.0).contains(&mean), "mean hamming {mean}");
    }

    /// `BufferedRng::fill_u64` emits exactly the inner generator's word
    /// stream, for any interleaving of bulk fills and single draws and any
    /// chunk size relative to the 16-word buffer — partial drains, whole
    /// blocks served directly from the inner generator, and ragged tails
    /// that straddle a refill seam all included. Sizes 0..=40 span empty
    /// fills, sub-block, exactly-block, and multi-block-plus-tail requests.
    #[test]
    fn buffered_fill_matches_scalar_stream(
        seed in any::<u64>(),
        ops in proptest::collection::vec(0usize..=40, 1..30),
    ) {
        let mut buffered = BufferedRng::new(Xoshiro256StarStar::seed_from_u64(seed));
        let mut reference = Xoshiro256StarStar::seed_from_u64(seed);
        for size in ops {
            if size == 0 {
                // Interleave a scalar draw: the buffer position moves by
                // one, so subsequent fills start mid-block.
                prop_assert_eq!(buffered.next_u64(), reference.next_u64());
            } else {
                let mut got = vec![0u64; size];
                buffered.fill_u64(&mut got);
                let want: Vec<u64> = (0..size).map(|_| reference.next_u64()).collect();
                prop_assert_eq!(got, want);
            }
        }
    }

    /// `ExpBlock::fill` is bit-identical to the same number of scalar
    /// `sample` calls — values, word consumption, and the buffer state left
    /// behind — for any interleaving of batched and scalar draws across
    /// block-size boundaries and refill seams.
    #[test]
    fn exp_block_fill_matches_scalar(
        seed in any::<u64>(),
        mean_ms in 0u64..100_000,
        ops in proptest::collection::vec(0usize..=40, 1..30),
    ) {
        let mean = SimDuration::from_millis(mean_ms);
        let mut batched = ExpBlock::new(mean);
        let mut scalar = ExpBlock::new(mean);
        let mut rng_a = BufferedRng::new(Xoshiro256StarStar::seed_from_u64(seed));
        let mut rng_b = BufferedRng::new(Xoshiro256StarStar::seed_from_u64(seed));
        for size in ops {
            if size == 0 {
                // Interleaved scalar draw on both sides keeps the streams
                // aligned while shifting the batched side's buffer position.
                prop_assert_eq!(batched.sample(&mut rng_a), scalar.sample(&mut rng_b));
            } else {
                let mut got = vec![SimDuration::ZERO; size];
                batched.fill(&mut rng_a, &mut got);
                let want: Vec<SimDuration> =
                    (0..size).map(|_| scalar.sample(&mut rng_b)).collect();
                prop_assert_eq!(got, want);
            }
        }
        // Equal word consumption: the next draw from each stream agrees.
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    /// `UniformBlock::fill` is bit-identical to scalar `sample` calls for
    /// any bound (power-of-two mask path and Lemire rejection path alike)
    /// and any batched/scalar interleaving.
    #[test]
    fn uniform_block_fill_matches_scalar(
        seed in any::<u64>(),
        bound in 1u64..=u64::MAX,
        ops in proptest::collection::vec(0usize..=40, 1..30),
    ) {
        let mut batched = UniformBlock::new(bound);
        let mut scalar = UniformBlock::new(bound);
        let mut rng_a = BufferedRng::new(Xoshiro256StarStar::seed_from_u64(seed));
        let mut rng_b = BufferedRng::new(Xoshiro256StarStar::seed_from_u64(seed));
        for size in ops {
            if size == 0 {
                prop_assert_eq!(batched.sample(&mut rng_a), scalar.sample(&mut rng_b));
            } else {
                let mut got = vec![0u64; size];
                batched.fill(&mut rng_a, &mut got);
                let want: Vec<u64> = (0..size).map(|_| scalar.sample(&mut rng_b)).collect();
                prop_assert_eq!(got, want);
            }
        }
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    /// Exponential draws are nonnegative and finite in integer µs.
    #[test]
    fn exponential_draws_valid(seed in any::<u64>(), mean_ms in 0u64..100_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mean = SimDuration::from_millis(mean_ms);
        for _ in 0..100 {
            let d = ccsim_des::sample_exponential(mean, &mut rng);
            if mean.is_zero() {
                prop_assert!(d.is_zero());
            }
            // 30x the mean is astronomically unlikely (p < 1e-13 per draw);
            // mostly this guards against sign/overflow bugs.
            prop_assert!(d.as_micros() <= mean.as_micros().saturating_mul(100).max(1_000_000_000));
        }
    }
}
