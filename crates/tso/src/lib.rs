//! `ccsim-tso` — basic timestamp ordering (T/O), after Bernstein & Goodman.
//!
//! The concurrency control family behind several of the contradictory
//! studies the paper reconciles (`[Gall82]` and `[Lin83]` compared locking to
//! basic timestamp ordering with opposite conclusions). Every transaction
//! attempt carries a unique timestamp (its start time, with the transaction
//! id as tie-break); operations must execute in timestamp order per object:
//!
//! * **read(X, ts)** — rejected if a transaction with a *larger* timestamp
//!   already committed a write to `X` (the read arrived too late). If an
//!   *uncommitted* prewrite with a smaller timestamp is pending, the read
//!   must **wait** for that writer's fate (the version it should observe
//!   does not exist yet). Otherwise it is granted and raises the read
//!   timestamp.
//! * **prewrite(X, ts)** — rejected if a read or committed write with a
//!   larger timestamp exists (the write arrived too late). Otherwise it is
//!   buffered (deferred updates).
//! * **commit** — applies the buffered writes. A write whose timestamp is
//!   below the object's committed-write timestamp is *skipped*: the Thomas
//!   write rule (the newer version logically overwrites it anyway).
//! * **abort** — drops the pending prewrites, waking any waiting readers.
//!
//! Readers wait only for *smaller*-timestamp writers and writers never
//! wait, so waits-for chains strictly decrease in timestamp: basic T/O is
//! deadlock-free by construction.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::HashMap;

use ccsim_des::{SimDuration, SimTime};
use ccsim_workload::{ObjId, ObjMap, TxnId};

/// A transaction timestamp: attempt start time, transaction id as
/// tie-break. Totally ordered and unique per attempt.
pub type Ts = (SimTime, TxnId);

/// Outcome of a read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read may proceed.
    Granted,
    /// A smaller-timestamp prewrite is pending; the reader must wait for
    /// that writer to commit or abort, then retry the read.
    Wait,
    /// The read arrived too late (a larger-timestamp write committed);
    /// restart with a fresh timestamp.
    Reject,
}

/// Outcome of a prewrite request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The prewrite is buffered.
    Granted,
    /// The write arrived too late (a larger-timestamp read or committed
    /// write exists); restart with a fresh timestamp.
    Reject,
}

#[derive(Debug, Default)]
struct ObjState {
    /// Largest granted read timestamp.
    rts: Option<Ts>,
    /// Largest committed write timestamp.
    wts: Option<Ts>,
    /// Uncommitted buffered prewrites.
    pending: Vec<Ts>,
    /// Readers waiting for a smaller pending prewrite to resolve.
    waiting: Vec<TxnId>,
}

impl ObjState {
    fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.waiting.is_empty()
    }
}

/// The timestamp-ordering manager.
#[derive(Debug, Default)]
pub struct TsoManager {
    objects: HashMap<ObjId, ObjState>,
    /// Objects each live attempt has prewritten (for commit/abort).
    prewrites: HashMap<TxnId, Vec<ObjId>>,
    /// Objects each waiting reader is parked on.
    parked: HashMap<TxnId, ObjId>,
    rejects: u64,
    waits: u64,
}

impl TsoManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        TsoManager::default()
    }

    /// Request a read of `obj` at timestamp `ts` for `txn`.
    ///
    /// A [`ReadOutcome::Wait`] parks the reader; it is returned by the
    /// wake-up lists of [`TsoManager::commit`] / [`TsoManager::abort`] and
    /// must then re-issue the read.
    pub fn read(&mut self, txn: TxnId, obj: ObjId, ts: Ts) -> ReadOutcome {
        let state = self.objects.entry(obj).or_default();
        if state.wts.is_some_and(|w| w > ts) {
            self.rejects += 1;
            return ReadOutcome::Reject;
        }
        // The reader's own prewrites cannot exist (reads precede writes in
        // the transaction program), but be robust anyway.
        if state
            .pending
            .iter()
            .any(|&(at, t)| (at, t) < ts && t != txn)
        {
            state.waiting.push(txn);
            self.parked.insert(txn, obj);
            self.waits += 1;
            return ReadOutcome::Wait;
        }
        if state.rts.is_none_or(|r| r < ts) {
            state.rts = Some(ts);
        }
        ReadOutcome::Granted
    }

    /// Request a prewrite of `obj` at timestamp `ts` for `txn`.
    pub fn prewrite(&mut self, txn: TxnId, obj: ObjId, ts: Ts) -> WriteOutcome {
        let state = self.objects.entry(obj).or_default();
        if state.rts.is_some_and(|r| r > ts) || state.wts.is_some_and(|w| w > ts) {
            self.rejects += 1;
            return WriteOutcome::Reject;
        }
        state.pending.push(ts);
        self.prewrites.entry(txn).or_default().push(obj);
        WriteOutcome::Granted
    }

    /// Commit `txn` at timestamp `ts`: apply its buffered writes (Thomas
    /// write rule skips stale ones) and wake readers that were parked on
    /// them. Returns `(woken_readers, applied_writes)` — applied writes are
    /// the objects whose committed version this transaction now owns.
    pub fn commit(&mut self, txn: TxnId, ts: Ts) -> (Vec<TxnId>, Vec<ObjId>) {
        let objs = self.prewrites.remove(&txn).unwrap_or_default();
        let mut woken = Vec::new();
        let mut applied = Vec::new();
        for obj in objs {
            let state = self
                .objects
                .get_mut(&obj)
                .expect("prewritten object exists");
            state.pending.retain(|&p| p != ts);
            if state.wts.is_none_or(|w| w < ts) {
                state.wts = Some(ts);
                applied.push(obj);
            }
            // All waiting readers get a wake-up; they re-run their read
            // check and may wait again on another pending prewrite.
            for reader in state.waiting.drain(..) {
                self.parked.remove(&reader);
                woken.push(reader);
            }
            if state.is_quiescent() && state.rts.is_none() && state.wts.is_none() {
                self.objects.remove(&obj);
            }
        }
        (woken, applied)
    }

    /// Abort `txn`'s attempt with timestamp `ts`: drop its prewrites and
    /// cancel its parked read (if any). Returns the readers to wake.
    pub fn abort(&mut self, txn: TxnId, ts: Ts) -> Vec<TxnId> {
        let mut woken = Vec::new();
        if let Some(obj) = self.parked.remove(&txn) {
            if let Some(state) = self.objects.get_mut(&obj) {
                state.waiting.retain(|&t| t != txn);
            }
        }
        for obj in self.prewrites.remove(&txn).unwrap_or_default() {
            let Some(state) = self.objects.get_mut(&obj) else {
                continue;
            };
            state.pending.retain(|&p| p != ts);
            for reader in state.waiting.drain(..) {
                self.parked.remove(&reader);
                woken.push(reader);
            }
        }
        woken
    }

    /// The object a transaction is parked on, if any.
    #[must_use]
    pub fn parked_on(&self, txn: TxnId) -> Option<ObjId> {
        self.parked.get(&txn).copied()
    }

    /// Lifetime counters: `(rejects, waits)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.rejects, self.waits)
    }

    /// Verify internal invariants (test aid).
    ///
    /// # Panics
    /// Panics if the cross-indexes disagree with the object table.
    pub fn assert_consistent(&self) {
        for (txn, obj) in &self.parked {
            assert!(
                self.objects
                    .get(obj)
                    .is_some_and(|s| s.waiting.contains(txn)),
                "{txn} parked on {obj} but not in its waiting list"
            );
        }
        for (txn, objs) in &self.prewrites {
            for obj in objs {
                assert!(
                    self.objects
                        .get(obj)
                        .is_some_and(|s| s.pending.iter().any(|&(_, t)| t == *txn)),
                    "{txn} prewrite on {obj} missing from pending set"
                );
            }
        }
    }
}

/// One object's TicToc timestamp-interval state: the logical write
/// timestamp of its latest committed version and the furthest logical time
/// any committed reader has extended that version's validity to.
/// `wts <= rts` always; the default (never accessed) entry is `(0, 0)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtWord {
    /// Logical commit timestamp of the latest committed version.
    pub wts: SimTime,
    /// Latest logical time the version is known valid to (read extension).
    pub rts: SimTime,
}

/// Why a TicToc commit-timestamp derivation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtConflict {
    /// The read object whose observed version was superseded.
    pub obj: ObjId,
    /// The logical write timestamp of the superseding version.
    pub superseded_by: SimTime,
}

/// TicToc-style timestamp recomputation (Yu et al.).
///
/// Unlike basic T/O, transactions carry **no** a-priori timestamp: each
/// access records the version it observed (the object's `wts` at read
/// time), and the commit point *derives* a commit timestamp that lies
/// within every accessed interval — at or after every observed version, and
/// strictly after every read extension of the objects being written. A
/// transaction aborts only when a read version was superseded *and* the
/// derived timestamp cannot retreat inside the window the read observed
/// (`[wts, rts]` at access time), so neither physical arrival order nor a
/// concurrent writer by itself forces a restart.
///
/// Logical commit timestamps are [`SimTime`]s advanced in 1 µs ticks; they
/// order the serialization, not the simulation clock — a read-only
/// transaction can serialize logically *before* writers that physically
/// preceded it.
#[derive(Debug, Default)]
pub struct TicTocManager {
    words: ObjMap<TtWord>,
    validations: u64,
    failures: u64,
    extensions: u64,
}

impl TicTocManager {
    /// The logical tick separating a new version from the read extensions
    /// of its predecessor.
    const TICK: SimDuration = SimDuration::from_micros(1);

    /// An empty manager (every object at the `(0, 0)` interval).
    #[must_use]
    pub fn new() -> Self {
        TicTocManager::default()
    }

    /// The word a reader observes for `obj` right now.
    #[must_use]
    pub fn word(&self, obj: ObjId) -> TtWord {
        self.words.get(obj).unwrap_or_default()
    }

    /// The `wts` a read of `obj` records at access time.
    #[must_use]
    pub fn observe(&self, obj: ObjId) -> SimTime {
        self.word(obj).wts
    }

    /// Derive a commit timestamp for a transaction whose reads observed
    /// `reads` (`(object, word observed at read time)`) and whose write set
    /// is `writes` and, on success, publish it: extend the `rts` of every
    /// still-current read version to the commit timestamp and install the
    /// written objects' new versions at it. Writes must be a subset of
    /// reads (the workload always reads what it writes).
    ///
    /// This is where TicToc beats Silo: a read whose version *was*
    /// superseded is still valid when the commit timestamp fits inside the
    /// version's observed validity window (`commit_ts <= rts` recorded at
    /// read time) — the transaction simply serializes logically before the
    /// superseding writer. That is sound because every superseder installs
    /// strictly above the rts it saw, and rts only grows while a version
    /// is current, so the observed rts always undercuts the first
    /// superseding wts.
    ///
    /// # Errors
    /// Returns the first [`TtConflict`] found: a read version superseded by
    /// a later committed write *and* a commit timestamp forced past the
    /// version's observed validity, so no timestamp can make the read and
    /// the supersession coexist.
    pub fn validate_and_commit(
        &mut self,
        reads: &[(ObjId, TtWord)],
        writes: &[ObjId],
    ) -> Result<SimTime, TtConflict> {
        self.validations += 1;
        // The commit timestamp must cover every observed version and land
        // strictly after every read extension of the objects being written.
        let mut commit_ts = SimTime::ZERO;
        for &(_, observed) in reads {
            commit_ts = commit_ts.max(observed.wts);
        }
        for &obj in writes {
            let w = self.word(obj);
            commit_ts = commit_ts.max(w.rts + Self::TICK);
        }
        // A superseded read is fatal only if the commit timestamp cannot
        // retreat into the version's observed validity window.
        for &(obj, observed) in reads {
            let current = self.word(obj).wts;
            if current != observed.wts && commit_ts > observed.rts {
                self.failures += 1;
                return Err(TtConflict {
                    obj,
                    superseded_by: current,
                });
            }
        }
        for &(obj, observed) in reads {
            let mut word = self.word(obj);
            // Only a still-current version's entry may be extended; a
            // superseded read needs no extension (its validity through
            // `commit_ts` was already witnessed at read time).
            if word.wts == observed.wts && word.rts < commit_ts {
                word.rts = commit_ts;
                self.words.insert(obj, word);
                self.extensions += 1;
            }
        }
        for &obj in writes {
            self.words.insert(
                obj,
                TtWord {
                    wts: commit_ts,
                    rts: commit_ts,
                },
            );
        }
        Ok(commit_ts)
    }

    /// Number of objects with a non-default word.
    #[must_use]
    pub fn tracked_objects(&self) -> usize {
        self.words.len()
    }

    /// Lifetime counters: `(validations, failures, rts_extensions)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.validations, self.failures, self.extensions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64, id: u64) -> Ts {
        (SimTime::from_secs(s), TxnId(id))
    }
    fn o(v: u64) -> ObjId {
        ObjId(v)
    }
    fn t(v: u64) -> TxnId {
        TxnId(v)
    }

    #[test]
    fn reads_and_writes_in_timestamp_order_flow_through() {
        let mut m = TsoManager::new();
        assert_eq!(m.read(t(1), o(1), ts(1, 1)), ReadOutcome::Granted);
        assert_eq!(m.prewrite(t(2), o(1), ts(2, 2)), WriteOutcome::Granted);
        let (woken, applied) = m.commit(t(2), ts(2, 2));
        assert!(woken.is_empty());
        assert_eq!(applied, vec![o(1)]);
        assert_eq!(m.read(t(3), o(1), ts(3, 3)), ReadOutcome::Granted);
        m.assert_consistent();
    }

    #[test]
    fn late_read_is_rejected() {
        let mut m = TsoManager::new();
        m.prewrite(t(2), o(1), ts(5, 2));
        m.commit(t(2), ts(5, 2));
        assert_eq!(m.read(t(1), o(1), ts(3, 1)), ReadOutcome::Reject);
        assert_eq!(m.counters().0, 1);
    }

    #[test]
    fn late_write_is_rejected_by_read_timestamp() {
        let mut m = TsoManager::new();
        m.read(t(9), o(1), ts(9, 9));
        assert_eq!(m.prewrite(t(1), o(1), ts(3, 1)), WriteOutcome::Reject);
    }

    #[test]
    fn late_write_is_rejected_by_committed_write() {
        let mut m = TsoManager::new();
        m.prewrite(t(9), o(1), ts(9, 9));
        m.commit(t(9), ts(9, 9));
        assert_eq!(m.prewrite(t(1), o(1), ts(3, 1)), WriteOutcome::Reject);
    }

    #[test]
    fn reader_waits_for_smaller_pending_prewrite() {
        let mut m = TsoManager::new();
        assert_eq!(m.prewrite(t(1), o(1), ts(1, 1)), WriteOutcome::Granted);
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        assert_eq!(m.parked_on(t(5)), Some(o(1)));
        m.assert_consistent();
        // The writer commits: the reader wakes and its retry is granted.
        let (woken, _) = m.commit(t(1), ts(1, 1));
        assert_eq!(woken, vec![t(5)]);
        assert_eq!(m.parked_on(t(5)), None);
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Granted);
        m.assert_consistent();
    }

    #[test]
    fn reader_does_not_wait_for_larger_pending_prewrite() {
        let mut m = TsoManager::new();
        m.prewrite(t(9), o(1), ts(9, 9));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Granted);
    }

    #[test]
    fn aborting_writer_wakes_waiting_reader() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        let woken = m.abort(t(1), ts(1, 1));
        assert_eq!(woken, vec![t(5)]);
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Granted);
        m.assert_consistent();
    }

    #[test]
    fn thomas_write_rule_skips_stale_commit() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        m.prewrite(t(2), o(1), ts(2, 2));
        // The younger write commits first...
        let (_, applied) = m.commit(t(2), ts(2, 2));
        assert_eq!(applied, vec![o(1)]);
        // ...so the older one is skipped at its commit.
        let (_, applied) = m.commit(t(1), ts(1, 1));
        assert!(applied.is_empty(), "stale write must be skipped");
        // And readers between the two timestamps now reject.
        assert_eq!(
            m.read(t(9), o(1), (SimTime::from_millis(1500), t(9))),
            ReadOutcome::Reject
        );
    }

    #[test]
    fn aborted_attempt_cancels_parked_read() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        // The *reader* aborts (e.g. wounded elsewhere): its parking is
        // cancelled, and the writer's later commit wakes nobody.
        let woken = m.abort(t(5), ts(5, 5));
        assert!(woken.is_empty());
        let (woken, _) = m.commit(t(1), ts(1, 1));
        assert!(woken.is_empty());
        m.assert_consistent();
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        assert_eq!(m.read(t(6), o(1), ts(6, 6)), ReadOutcome::Wait);
        let (mut woken, _) = m.commit(t(1), ts(1, 1));
        woken.sort();
        assert_eq!(woken, vec![t(5), t(6)]);
    }

    #[test]
    fn rts_advances_monotonically() {
        let mut m = TsoManager::new();
        m.read(t(5), o(1), ts(5, 5));
        m.read(t(3), o(1), ts(3, 3)); // smaller read is fine
                                      // A write between 3 and 5 must still reject (rts = 5).
        assert_eq!(m.prewrite(t(4), o(1), ts(4, 4)), WriteOutcome::Reject);
    }

    #[test]
    fn counters_track() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(5, 1));
        m.commit(t(1), ts(5, 1));
        m.read(t(2), o(1), ts(1, 2)); // reject
        m.prewrite(t(3), o(2), ts(1, 3));
        m.read(t(4), o(2), ts(9, 4)); // wait
        assert_eq!(m.counters(), (1, 1));
    }

    fn fresh() -> TtWord {
        TtWord::default()
    }

    #[test]
    fn tictoc_reader_of_current_versions_commits_at_max_wts() {
        let mut m = TicTocManager::new();
        let w = m.validate_and_commit(&[(o(1), fresh())], &[o(1)]).unwrap();
        assert!(w > SimTime::ZERO);
        // A reader that observed the new version serializes at or after it.
        let word = m.word(o(1));
        let r = m.validate_and_commit(&[(o(1), word)], &[]).unwrap();
        assert_eq!(r, w);
        assert_eq!(m.word(o(1)).rts, w);
    }

    #[test]
    fn tictoc_superseded_read_aborts_when_pushed_past_its_window() {
        let mut m = TicTocManager::new();
        // Supersede obj1 and install a version on obj2.
        let w1 = m.validate_and_commit(&[(o(1), fresh())], &[o(1)]).unwrap();
        m.validate_and_commit(&[(o(2), fresh())], &[o(2)]).unwrap();
        let o2_now = m.word(o(2));
        // A reader of obj1's pre-write version whose obj2 read drags the
        // commit timestamp past obj1's observed validity (rts 0) must fail.
        let err = m
            .validate_and_commit(&[(o(1), fresh()), (o(2), o2_now)], &[])
            .unwrap_err();
        assert_eq!(err.obj, o(1));
        assert_eq!(err.superseded_by, w1);
        assert_eq!(m.counters().1, 1);
    }

    #[test]
    fn tictoc_superseded_read_commits_inside_its_observed_window() {
        let mut m = TicTocManager::new();
        // A first committer extends obj1's validity past time zero.
        m.validate_and_commit(&[(o(1), fresh()), (o(2), fresh())], &[o(2)])
            .unwrap();
        let observed = m.word(o(1));
        assert!(observed.rts > SimTime::ZERO);
        let o2_word = m.word(o(2));
        // Now obj1 is superseded...
        let sup = m.validate_and_commit(&[(o(1), observed)], &[o(1)]).unwrap();
        // ...yet a reader holding the old observation still commits, by
        // serializing logically before the superseder.
        let r = m
            .validate_and_commit(&[(o(1), observed), (o(2), o2_word)], &[])
            .unwrap();
        assert!(r <= observed.rts);
        assert!(r < sup, "past-commit must precede the superseder");
        assert_eq!(m.counters().1, 0, "no failures");
    }

    #[test]
    fn tictoc_write_of_a_superseded_object_still_aborts() {
        let mut m = TicTocManager::new();
        let w1 = m.validate_and_commit(&[(o(1), fresh())], &[o(1)]).unwrap();
        // A read-modify-write that observed the pre-write version cannot
        // retreat: its own write must land above the current rts.
        let err = m
            .validate_and_commit(&[(o(1), fresh())], &[o(1)])
            .unwrap_err();
        assert_eq!(err.obj, o(1));
        assert_eq!(err.superseded_by, w1);
    }

    #[test]
    fn tictoc_writer_lands_after_read_extensions() {
        let mut m = TicTocManager::new();
        // A committed reader extends obj1's rts to its commit timestamp...
        m.validate_and_commit(&[(o(1), fresh()), (o(2), fresh())], &[o(2)])
            .unwrap();
        let word = m.word(o(1));
        assert!(word.rts > SimTime::ZERO);
        // ...so a later writer of obj1 must serialize strictly after it.
        let w = m.validate_and_commit(&[(o(1), word)], &[o(1)]).unwrap();
        assert!(
            w > word.rts,
            "writer {w:?} must clear the read extension {:?}",
            word.rts
        );
        assert_eq!(m.word(o(1)), TtWord { wts: w, rts: w });
    }

    #[test]
    fn tictoc_physical_order_does_not_force_aborts() {
        // The signature TicToc behaviour: a late-arriving reader of an old
        // snapshot commits by serializing logically before a writer that
        // already committed, as long as its versions still stand.
        let mut m = TicTocManager::new();
        let w1 = m.validate_and_commit(&[(o(1), fresh())], &[o(1)]).unwrap();
        // Reader observed obj2 before any write; obj2 is untouched, so the
        // read version stands and the commit derives a timestamp (≤ w1,
        // logically "before" obj1's writer as far as obj2 is concerned).
        let r = m.validate_and_commit(&[(o(2), fresh())], &[]).unwrap();
        assert!(r <= w1);
    }

    #[test]
    fn tictoc_extensions_count() {
        let mut m = TicTocManager::new();
        m.validate_and_commit(&[(o(1), fresh())], &[o(1)]).unwrap();
        let word = m.word(o(1));
        m.validate_and_commit(&[(o(1), word), (o(2), fresh())], &[o(2)])
            .unwrap();
        let (validations, failures, extensions) = m.counters();
        assert_eq!(validations, 2);
        assert_eq!(failures, 0);
        assert!(extensions >= 1);
        assert_eq!(m.tracked_objects(), 2);
    }
}
