//! `ccsim-tso` — basic timestamp ordering (T/O), after Bernstein & Goodman.
//!
//! The concurrency control family behind several of the contradictory
//! studies the paper reconciles (`[Gall82]` and `[Lin83]` compared locking to
//! basic timestamp ordering with opposite conclusions). Every transaction
//! attempt carries a unique timestamp (its start time, with the transaction
//! id as tie-break); operations must execute in timestamp order per object:
//!
//! * **read(X, ts)** — rejected if a transaction with a *larger* timestamp
//!   already committed a write to `X` (the read arrived too late). If an
//!   *uncommitted* prewrite with a smaller timestamp is pending, the read
//!   must **wait** for that writer's fate (the version it should observe
//!   does not exist yet). Otherwise it is granted and raises the read
//!   timestamp.
//! * **prewrite(X, ts)** — rejected if a read or committed write with a
//!   larger timestamp exists (the write arrived too late). Otherwise it is
//!   buffered (deferred updates).
//! * **commit** — applies the buffered writes. A write whose timestamp is
//!   below the object's committed-write timestamp is *skipped*: the Thomas
//!   write rule (the newer version logically overwrites it anyway).
//! * **abort** — drops the pending prewrites, waking any waiting readers.
//!
//! Readers wait only for *smaller*-timestamp writers and writers never
//! wait, so waits-for chains strictly decrease in timestamp: basic T/O is
//! deadlock-free by construction.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::HashMap;

use ccsim_des::SimTime;
use ccsim_workload::{ObjId, TxnId};

/// A transaction timestamp: attempt start time, transaction id as
/// tie-break. Totally ordered and unique per attempt.
pub type Ts = (SimTime, TxnId);

/// Outcome of a read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read may proceed.
    Granted,
    /// A smaller-timestamp prewrite is pending; the reader must wait for
    /// that writer to commit or abort, then retry the read.
    Wait,
    /// The read arrived too late (a larger-timestamp write committed);
    /// restart with a fresh timestamp.
    Reject,
}

/// Outcome of a prewrite request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The prewrite is buffered.
    Granted,
    /// The write arrived too late (a larger-timestamp read or committed
    /// write exists); restart with a fresh timestamp.
    Reject,
}

#[derive(Debug, Default)]
struct ObjState {
    /// Largest granted read timestamp.
    rts: Option<Ts>,
    /// Largest committed write timestamp.
    wts: Option<Ts>,
    /// Uncommitted buffered prewrites.
    pending: Vec<Ts>,
    /// Readers waiting for a smaller pending prewrite to resolve.
    waiting: Vec<TxnId>,
}

impl ObjState {
    fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.waiting.is_empty()
    }
}

/// The timestamp-ordering manager.
#[derive(Debug, Default)]
pub struct TsoManager {
    objects: HashMap<ObjId, ObjState>,
    /// Objects each live attempt has prewritten (for commit/abort).
    prewrites: HashMap<TxnId, Vec<ObjId>>,
    /// Objects each waiting reader is parked on.
    parked: HashMap<TxnId, ObjId>,
    rejects: u64,
    waits: u64,
}

impl TsoManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        TsoManager::default()
    }

    /// Request a read of `obj` at timestamp `ts` for `txn`.
    ///
    /// A [`ReadOutcome::Wait`] parks the reader; it is returned by the
    /// wake-up lists of [`TsoManager::commit`] / [`TsoManager::abort`] and
    /// must then re-issue the read.
    pub fn read(&mut self, txn: TxnId, obj: ObjId, ts: Ts) -> ReadOutcome {
        let state = self.objects.entry(obj).or_default();
        if state.wts.is_some_and(|w| w > ts) {
            self.rejects += 1;
            return ReadOutcome::Reject;
        }
        // The reader's own prewrites cannot exist (reads precede writes in
        // the transaction program), but be robust anyway.
        if state
            .pending
            .iter()
            .any(|&(at, t)| (at, t) < ts && t != txn)
        {
            state.waiting.push(txn);
            self.parked.insert(txn, obj);
            self.waits += 1;
            return ReadOutcome::Wait;
        }
        if state.rts.is_none_or(|r| r < ts) {
            state.rts = Some(ts);
        }
        ReadOutcome::Granted
    }

    /// Request a prewrite of `obj` at timestamp `ts` for `txn`.
    pub fn prewrite(&mut self, txn: TxnId, obj: ObjId, ts: Ts) -> WriteOutcome {
        let state = self.objects.entry(obj).or_default();
        if state.rts.is_some_and(|r| r > ts) || state.wts.is_some_and(|w| w > ts) {
            self.rejects += 1;
            return WriteOutcome::Reject;
        }
        state.pending.push(ts);
        self.prewrites.entry(txn).or_default().push(obj);
        WriteOutcome::Granted
    }

    /// Commit `txn` at timestamp `ts`: apply its buffered writes (Thomas
    /// write rule skips stale ones) and wake readers that were parked on
    /// them. Returns `(woken_readers, applied_writes)` — applied writes are
    /// the objects whose committed version this transaction now owns.
    pub fn commit(&mut self, txn: TxnId, ts: Ts) -> (Vec<TxnId>, Vec<ObjId>) {
        let objs = self.prewrites.remove(&txn).unwrap_or_default();
        let mut woken = Vec::new();
        let mut applied = Vec::new();
        for obj in objs {
            let state = self
                .objects
                .get_mut(&obj)
                .expect("prewritten object exists");
            state.pending.retain(|&p| p != ts);
            if state.wts.is_none_or(|w| w < ts) {
                state.wts = Some(ts);
                applied.push(obj);
            }
            // All waiting readers get a wake-up; they re-run their read
            // check and may wait again on another pending prewrite.
            for reader in state.waiting.drain(..) {
                self.parked.remove(&reader);
                woken.push(reader);
            }
            if state.is_quiescent() && state.rts.is_none() && state.wts.is_none() {
                self.objects.remove(&obj);
            }
        }
        (woken, applied)
    }

    /// Abort `txn`'s attempt with timestamp `ts`: drop its prewrites and
    /// cancel its parked read (if any). Returns the readers to wake.
    pub fn abort(&mut self, txn: TxnId, ts: Ts) -> Vec<TxnId> {
        let mut woken = Vec::new();
        if let Some(obj) = self.parked.remove(&txn) {
            if let Some(state) = self.objects.get_mut(&obj) {
                state.waiting.retain(|&t| t != txn);
            }
        }
        for obj in self.prewrites.remove(&txn).unwrap_or_default() {
            let Some(state) = self.objects.get_mut(&obj) else {
                continue;
            };
            state.pending.retain(|&p| p != ts);
            for reader in state.waiting.drain(..) {
                self.parked.remove(&reader);
                woken.push(reader);
            }
        }
        woken
    }

    /// The object a transaction is parked on, if any.
    #[must_use]
    pub fn parked_on(&self, txn: TxnId) -> Option<ObjId> {
        self.parked.get(&txn).copied()
    }

    /// Lifetime counters: `(rejects, waits)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.rejects, self.waits)
    }

    /// Verify internal invariants (test aid).
    ///
    /// # Panics
    /// Panics if the cross-indexes disagree with the object table.
    pub fn assert_consistent(&self) {
        for (txn, obj) in &self.parked {
            assert!(
                self.objects
                    .get(obj)
                    .is_some_and(|s| s.waiting.contains(txn)),
                "{txn} parked on {obj} but not in its waiting list"
            );
        }
        for (txn, objs) in &self.prewrites {
            for obj in objs {
                assert!(
                    self.objects
                        .get(obj)
                        .is_some_and(|s| s.pending.iter().any(|&(_, t)| t == *txn)),
                    "{txn} prewrite on {obj} missing from pending set"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64, id: u64) -> Ts {
        (SimTime::from_secs(s), TxnId(id))
    }
    fn o(v: u64) -> ObjId {
        ObjId(v)
    }
    fn t(v: u64) -> TxnId {
        TxnId(v)
    }

    #[test]
    fn reads_and_writes_in_timestamp_order_flow_through() {
        let mut m = TsoManager::new();
        assert_eq!(m.read(t(1), o(1), ts(1, 1)), ReadOutcome::Granted);
        assert_eq!(m.prewrite(t(2), o(1), ts(2, 2)), WriteOutcome::Granted);
        let (woken, applied) = m.commit(t(2), ts(2, 2));
        assert!(woken.is_empty());
        assert_eq!(applied, vec![o(1)]);
        assert_eq!(m.read(t(3), o(1), ts(3, 3)), ReadOutcome::Granted);
        m.assert_consistent();
    }

    #[test]
    fn late_read_is_rejected() {
        let mut m = TsoManager::new();
        m.prewrite(t(2), o(1), ts(5, 2));
        m.commit(t(2), ts(5, 2));
        assert_eq!(m.read(t(1), o(1), ts(3, 1)), ReadOutcome::Reject);
        assert_eq!(m.counters().0, 1);
    }

    #[test]
    fn late_write_is_rejected_by_read_timestamp() {
        let mut m = TsoManager::new();
        m.read(t(9), o(1), ts(9, 9));
        assert_eq!(m.prewrite(t(1), o(1), ts(3, 1)), WriteOutcome::Reject);
    }

    #[test]
    fn late_write_is_rejected_by_committed_write() {
        let mut m = TsoManager::new();
        m.prewrite(t(9), o(1), ts(9, 9));
        m.commit(t(9), ts(9, 9));
        assert_eq!(m.prewrite(t(1), o(1), ts(3, 1)), WriteOutcome::Reject);
    }

    #[test]
    fn reader_waits_for_smaller_pending_prewrite() {
        let mut m = TsoManager::new();
        assert_eq!(m.prewrite(t(1), o(1), ts(1, 1)), WriteOutcome::Granted);
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        assert_eq!(m.parked_on(t(5)), Some(o(1)));
        m.assert_consistent();
        // The writer commits: the reader wakes and its retry is granted.
        let (woken, _) = m.commit(t(1), ts(1, 1));
        assert_eq!(woken, vec![t(5)]);
        assert_eq!(m.parked_on(t(5)), None);
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Granted);
        m.assert_consistent();
    }

    #[test]
    fn reader_does_not_wait_for_larger_pending_prewrite() {
        let mut m = TsoManager::new();
        m.prewrite(t(9), o(1), ts(9, 9));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Granted);
    }

    #[test]
    fn aborting_writer_wakes_waiting_reader() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        let woken = m.abort(t(1), ts(1, 1));
        assert_eq!(woken, vec![t(5)]);
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Granted);
        m.assert_consistent();
    }

    #[test]
    fn thomas_write_rule_skips_stale_commit() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        m.prewrite(t(2), o(1), ts(2, 2));
        // The younger write commits first...
        let (_, applied) = m.commit(t(2), ts(2, 2));
        assert_eq!(applied, vec![o(1)]);
        // ...so the older one is skipped at its commit.
        let (_, applied) = m.commit(t(1), ts(1, 1));
        assert!(applied.is_empty(), "stale write must be skipped");
        // And readers between the two timestamps now reject.
        assert_eq!(
            m.read(t(9), o(1), (SimTime::from_millis(1500), t(9))),
            ReadOutcome::Reject
        );
    }

    #[test]
    fn aborted_attempt_cancels_parked_read() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        // The *reader* aborts (e.g. wounded elsewhere): its parking is
        // cancelled, and the writer's later commit wakes nobody.
        let woken = m.abort(t(5), ts(5, 5));
        assert!(woken.is_empty());
        let (woken, _) = m.commit(t(1), ts(1, 1));
        assert!(woken.is_empty());
        m.assert_consistent();
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(1, 1));
        assert_eq!(m.read(t(5), o(1), ts(5, 5)), ReadOutcome::Wait);
        assert_eq!(m.read(t(6), o(1), ts(6, 6)), ReadOutcome::Wait);
        let (mut woken, _) = m.commit(t(1), ts(1, 1));
        woken.sort();
        assert_eq!(woken, vec![t(5), t(6)]);
    }

    #[test]
    fn rts_advances_monotonically() {
        let mut m = TsoManager::new();
        m.read(t(5), o(1), ts(5, 5));
        m.read(t(3), o(1), ts(3, 3)); // smaller read is fine
                                      // A write between 3 and 5 must still reject (rts = 5).
        assert_eq!(m.prewrite(t(4), o(1), ts(4, 4)), WriteOutcome::Reject);
    }

    #[test]
    fn counters_track() {
        let mut m = TsoManager::new();
        m.prewrite(t(1), o(1), ts(5, 1));
        m.commit(t(1), ts(5, 1));
        m.read(t(2), o(1), ts(1, 2)); // reject
        m.prewrite(t(3), o(2), ts(1, 3));
        m.read(t(4), o(2), ts(9, 4)); // wait
        assert_eq!(m.counters(), (1, 1));
    }
}
