//! A minimal JSON writer for archiving experiment results.
//!
//! The approved dependency list has `serde` but no `serde_json`, and our
//! output is a fixed shape, so a ~hundred-line emitter keeps the tree small
//! and honest. Only emission is needed — nothing reads JSON back.

use std::fmt::Write as _;

use crate::spec::{DataPoint, ExperimentResult};

/// Escape a string per RFC 8259.
fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float as JSON (finite only; NaN/inf become null).
fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn point_json(p: &DataPoint, out: &mut String) {
    out.push_str("{\"series\":");
    escape(&p.series, out);
    let _ = write!(out, ",\"mpl\":{},", p.mpl);
    let r = &p.report;
    out.push_str("\"throughput\":");
    number(r.throughput.mean, out);
    out.push_str(",\"throughput_ci90\":");
    number(r.throughput.half_width, out);
    out.push_str(",\"response_mean_s\":");
    number(r.response_time_mean, out);
    out.push_str(",\"response_std_s\":");
    number(r.response_time_std, out);
    out.push_str(",\"block_ratio\":");
    number(r.block_ratio, out);
    out.push_str(",\"restart_ratio\":");
    number(r.restart_ratio, out);
    out.push_str(",\"disk_util_total\":");
    number(r.disk_util_total.mean, out);
    out.push_str(",\"disk_util_useful\":");
    number(r.disk_util_useful.mean, out);
    out.push_str(",\"cpu_util_total\":");
    number(r.cpu_util_total.mean, out);
    out.push_str(",\"cpu_util_useful\":");
    number(r.cpu_util_useful.mean, out);
    out.push_str(",\"avg_active\":");
    number(r.avg_active, out);
    let _ = write!(
        out,
        ",\"commits\":{},\"blocks\":{},\"restarts\":{},\"deadlocks\":{}",
        r.commits, r.blocks, r.restarts, r.deadlocks
    );
    if p.replicates.len() > 1 {
        let _ = write!(out, ",\"replications\":{}", p.replicates.len());
        out.push_str(",\"rep_throughputs\":[");
        for (i, rep) in p.replicates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            number(rep.throughput.mean, out);
        }
        out.push(']');
    }
    if r.class_reports.len() > 1 {
        out.push_str(",\"classes\":[");
        for (i, c) in r.class_reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"commits\":{},\"restarts\":{},\"restart_ratio\":",
                c.commits, c.restarts
            );
            number(c.restart_ratio, out);
            out.push_str(",\"response_mean_s\":");
            number(c.response_time_mean, out);
            out.push_str(",\"response_std_s\":");
            number(c.response_time_std, out);
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
}

/// Serialize an experiment result to a JSON document.
#[must_use]
pub fn to_json(result: &ExperimentResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"id\":");
    escape(result.spec.id, &mut out);
    out.push_str(",\"title\":");
    escape(result.spec.title, &mut out);
    out.push_str(",\"figures\":[");
    for (i, v) in result.spec.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape(v.figure, &mut out);
    }
    out.push_str("],\"points\":[");
    for (i, p) in result.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        point_json(p, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExperimentSpec, FigureKind, FigureView, Series};
    use ccsim_core::{Estimate, Params, Report};

    fn tiny_result() -> ExperimentResult {
        ExperimentResult {
            spec: ExperimentSpec {
                id: "t",
                title: "tiny \"quoted\"",
                params: Params::paper_baseline(),
                series: Series::paper_trio(),
                mpls: vec![5],
                restart_delay_for_all: false,
                views: vec![FigureView {
                    figure: "Figure 5",
                    caption: "c",
                    kind: FigureKind::Throughput,
                }],
            },
            points: vec![DataPoint::single(
                "blocking".into(),
                5,
                Report {
                    throughput: Estimate {
                        mean: 1.5,
                        half_width: 0.25,
                    },
                    throughput_per_batch: vec![1.5],
                    throughput_lag1: 0.0,
                    response_time_mean: 2.0,
                    response_time_std: 1.0,
                    response_time_max: 4.0,
                    response_time_p50: 2.0,
                    response_time_p95: 3.5,
                    response_time_p99: 3.9,
                    block_ratio: 0.5,
                    restart_ratio: 0.25,
                    disk_util_total: Estimate {
                        mean: 0.9,
                        half_width: 0.0,
                    },
                    disk_util_useful: Estimate {
                        mean: 0.8,
                        half_width: 0.0,
                    },
                    cpu_util_total: Estimate {
                        mean: 0.3,
                        half_width: 0.0,
                    },
                    cpu_util_useful: Estimate {
                        mean: 0.3,
                        half_width: 0.0,
                    },
                    avg_active: 4.2,
                    class_reports: vec![],
                    commits: 10,
                    blocks: 5,
                    restarts: 2,
                    deadlocks: 1,
                },
            )],
            audit_failures: Vec::new(),
        }
    }

    #[test]
    fn replicated_points_emit_rep_throughputs() {
        let mut r = tiny_result();
        let single = r.points[0].report.clone();
        let mut second = single.clone();
        second.throughput.mean = 2.5;
        r.points[0].replicates = vec![single, second];
        let j = to_json(&r);
        assert!(j.contains("\"replications\":2"));
        assert!(j.contains("\"rep_throughputs\":[1.5,2.5]"));
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Single-replication points stay free of replication keys.
        assert!(!to_json(&tiny_result()).contains("\"replications\""));
    }

    #[test]
    fn class_breakdown_appears_only_for_multiclass_runs() {
        use ccsim_core::ClassReport;
        let mut r = tiny_result();
        // Single class: no breakdown emitted.
        r.points[0].report.class_reports = vec![ClassReport {
            commits: 10,
            restarts: 2,
            restart_ratio: 0.2,
            response_time_mean: 2.0,
            response_time_std: 1.0,
        }];
        assert!(!to_json(&r).contains("\"classes\""));
        // Two classes: emitted, well-formed.
        r.points[0].report.class_reports.push(ClassReport {
            commits: 3,
            restarts: 9,
            restart_ratio: 3.0,
            response_time_mean: 8.0,
            response_time_std: 4.0,
        });
        let j = to_json(&r);
        assert!(j.contains("\"classes\":[{"));
        assert!(j.contains("\"restart_ratio\":3"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn emits_valid_looking_json() {
        let j = to_json(&tiny_result());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"t\""));
        assert!(j.contains("\"title\":\"tiny \\\"quoted\\\"\""));
        assert!(j.contains("\"figures\":[\"Figure 5\"]"));
        assert!(j.contains("\"throughput\":1.5"));
        assert!(j.contains("\"commits\":10"));
        // Balanced braces and brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        escape("a\nb\tc\u{1}", &mut s);
        assert_eq!(s, "\"a\\nb\\tc\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut s = String::new();
        number(f64::NAN, &mut s);
        s.push(',');
        number(f64::INFINITY, &mut s);
        assert_eq!(s, "null,null");
    }
}
