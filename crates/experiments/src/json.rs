//! A minimal JSON writer (and parser) for archiving experiment results.
//!
//! The approved dependency list has `serde` but no `serde_json`, and our
//! output is a fixed shape, so a ~hundred-line emitter keeps the tree small
//! and honest. The checkpoint manifest (`crate::manifest`) additionally
//! needs to read its own lines back, so a small recursive-descent parser
//! lives here too. Numbers are kept as raw lexemes so `u64` seeds and
//! bit-exact `f64` round trips both survive.

use std::fmt::Write as _;

use crate::spec::{DataPoint, ExperimentResult};

/// Escape a string per RFC 8259.
pub fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float as JSON (finite only; NaN/inf become null).
fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn point_json(p: &DataPoint, out: &mut String) {
    out.push_str("{\"series\":");
    escape(&p.series, out);
    let _ = write!(out, ",\"mpl\":{},", p.mpl);
    let r = &p.report;
    out.push_str("\"throughput\":");
    number(r.throughput.mean, out);
    out.push_str(",\"throughput_ci90\":");
    number(r.throughput.half_width, out);
    out.push_str(",\"response_mean_s\":");
    number(r.response_time_mean, out);
    out.push_str(",\"response_std_s\":");
    number(r.response_time_std, out);
    out.push_str(",\"block_ratio\":");
    number(r.block_ratio, out);
    out.push_str(",\"restart_ratio\":");
    number(r.restart_ratio, out);
    out.push_str(",\"disk_util_total\":");
    number(r.disk_util_total.mean, out);
    out.push_str(",\"disk_util_useful\":");
    number(r.disk_util_useful.mean, out);
    out.push_str(",\"cpu_util_total\":");
    number(r.cpu_util_total.mean, out);
    out.push_str(",\"cpu_util_useful\":");
    number(r.cpu_util_useful.mean, out);
    out.push_str(",\"avg_active\":");
    number(r.avg_active, out);
    let _ = write!(
        out,
        ",\"commits\":{},\"blocks\":{},\"restarts\":{},\"deadlocks\":{}",
        r.commits, r.blocks, r.restarts, r.deadlocks
    );
    if p.replicates.len() > 1 {
        let _ = write!(out, ",\"replications\":{}", p.replicates.len());
        out.push_str(",\"rep_throughputs\":[");
        for (i, rep) in p.replicates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            number(rep.throughput.mean, out);
        }
        out.push(']');
    }
    if r.class_reports.len() > 1 {
        out.push_str(",\"classes\":[");
        for (i, c) in r.class_reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"commits\":{},\"restarts\":{},\"restart_ratio\":",
                c.commits, c.restarts
            );
            number(c.restart_ratio, out);
            out.push_str(",\"response_mean_s\":");
            number(c.response_time_mean, out);
            out.push_str(",\"response_std_s\":");
            number(c.response_time_std, out);
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
}

/// Serialize an experiment result to a JSON document.
#[must_use]
pub fn to_json(result: &ExperimentResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"id\":");
    escape(result.spec.id, &mut out);
    out.push_str(",\"title\":");
    escape(result.spec.title, &mut out);
    out.push_str(",\"figures\":[");
    for (i, v) in result.spec.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape(v.figure, &mut out);
    }
    out.push_str("],\"points\":[");
    for (i, p) in result.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        point_json(p, &mut out);
    }
    out.push(']');
    // Failure holes and interruption are emitted only when present, so a
    // clean sweep's JSON is byte-identical to what older archives hold.
    if !result.failures.is_empty() {
        out.push_str(",\"failures\":[");
        for (i, f) in result.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"series\":");
            escape(&f.series, &mut out);
            let _ = write!(out, ",\"mpl\":{},\"rep\":{},\"kind\":", f.mpl, f.rep);
            escape(f.kind.token(), &mut out);
            out.push_str(",\"detail\":");
            escape(&f.detail, &mut out);
            out.push_str(",\"retry\":");
            escape(f.retry.token(), &mut out);
            let _ = write!(out, ",\"retry_attempts\":{}", f.retry.attempts());
            out.push('}');
        }
        out.push(']');
    }
    if result.interrupted {
        out.push_str(",\"interrupted\":true");
    }
    out.push('}');
    out
}

/// A parsed JSON value. Numbers keep their raw lexeme so callers choose
/// the integer or float interpretation without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its unparsed lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as a `u64`, if it parses losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64` (`null` maps to NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            // `f64::from_str` accepts our non-finite lexemes (NaN, inf,
            // -inf) as well as ordinary JSON numbers.
            Value::Num(raw) => raw.parse().ok(),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document. Accepts the output of this module plus the
/// non-finite number lexemes `NaN` / `inf` / `-inf` that the manifest
/// writes for lossless float round trips.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        // Non-finite lexemes written by the manifest for lossless floats.
        for lit in ["-inf", "inf", "NaN"] {
            if self.eat_literal(lit) {
                return Ok(Value::Num(lit.to_string()));
            }
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a value at offset {start}"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .to_string();
        // Validate the lexeme parses as a float at all.
        raw.parse::<f64>()
            .map_err(|e| format!("bad number {raw:?}: {e}"))?;
        Ok(Value::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExperimentSpec, FigureKind, FigureView, Series};
    use ccsim_core::{Estimate, Params, Report};

    fn tiny_result() -> ExperimentResult {
        ExperimentResult {
            spec: ExperimentSpec {
                id: "t",
                title: "tiny \"quoted\"",
                params: Params::paper_baseline(),
                series: Series::paper_trio(),
                mpls: vec![5],
                restart_delay_for_all: false,
                views: vec![FigureView {
                    figure: "Figure 5",
                    caption: "c",
                    kind: FigureKind::Throughput,
                }],
            },
            points: vec![DataPoint::single(
                "blocking".into(),
                5,
                Report {
                    throughput: Estimate {
                        mean: 1.5,
                        half_width: 0.25,
                    },
                    throughput_per_batch: vec![1.5],
                    throughput_lag1: 0.0,
                    response_time_mean: 2.0,
                    response_time_std: 1.0,
                    response_time_max: 4.0,
                    response_time_p50: 2.0,
                    response_time_p95: 3.5,
                    response_time_p99: 3.9,
                    block_ratio: 0.5,
                    restart_ratio: 0.25,
                    disk_util_total: Estimate {
                        mean: 0.9,
                        half_width: 0.0,
                    },
                    disk_util_useful: Estimate {
                        mean: 0.8,
                        half_width: 0.0,
                    },
                    cpu_util_total: Estimate {
                        mean: 0.3,
                        half_width: 0.0,
                    },
                    cpu_util_useful: Estimate {
                        mean: 0.3,
                        half_width: 0.0,
                    },
                    avg_active: 4.2,
                    class_reports: vec![],
                    commits: 10,
                    blocks: 5,
                    restarts: 2,
                    deadlocks: 1,
                },
            )],
            audit_failures: Vec::new(),
            failures: Vec::new(),
            interrupted: false,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn replicated_points_emit_rep_throughputs() {
        let mut r = tiny_result();
        let single = r.points[0].report.clone();
        let mut second = single.clone();
        second.throughput.mean = 2.5;
        r.points[0].replicates = vec![single, second];
        let j = to_json(&r);
        assert!(j.contains("\"replications\":2"));
        assert!(j.contains("\"rep_throughputs\":[1.5,2.5]"));
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Single-replication points stay free of replication keys.
        assert!(!to_json(&tiny_result()).contains("\"replications\""));
    }

    #[test]
    fn class_breakdown_appears_only_for_multiclass_runs() {
        use ccsim_core::ClassReport;
        let mut r = tiny_result();
        // Single class: no breakdown emitted.
        r.points[0].report.class_reports = vec![ClassReport {
            commits: 10,
            restarts: 2,
            restart_ratio: 0.2,
            response_time_mean: 2.0,
            response_time_std: 1.0,
        }];
        assert!(!to_json(&r).contains("\"classes\""));
        // Two classes: emitted, well-formed.
        r.points[0].report.class_reports.push(ClassReport {
            commits: 3,
            restarts: 9,
            restart_ratio: 3.0,
            response_time_mean: 8.0,
            response_time_std: 4.0,
        });
        let j = to_json(&r);
        assert!(j.contains("\"classes\":[{"));
        assert!(j.contains("\"restart_ratio\":3"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn emits_valid_looking_json() {
        let j = to_json(&tiny_result());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"t\""));
        assert!(j.contains("\"title\":\"tiny \\\"quoted\\\"\""));
        assert!(j.contains("\"figures\":[\"Figure 5\"]"));
        assert!(j.contains("\"throughput\":1.5"));
        assert!(j.contains("\"commits\":10"));
        // Balanced braces and brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        escape("a\nb\tc\u{1}", &mut s);
        assert_eq!(s, "\"a\\nb\\tc\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut s = String::new();
        number(f64::NAN, &mut s);
        s.push(',');
        number(f64::INFINITY, &mut s);
        assert_eq!(s, "null,null");
    }

    #[test]
    fn failures_and_interruption_emit_only_when_present() {
        use crate::spec::{FailureKind, PointFailure, RetryOutcome};
        let clean = to_json(&tiny_result());
        assert!(!clean.contains("\"failures\""));
        assert!(!clean.contains("\"interrupted\""));
        let mut r = tiny_result();
        r.failures.push(PointFailure {
            series: "optimistic".into(),
            mpl: 25,
            rep: 1,
            kind: FailureKind::Panic,
            detail: "chaos: injected panic".into(),
            retry: RetryOutcome::Failed { attempts: 3 },
        });
        r.interrupted = true;
        let j = to_json(&r);
        assert!(j.contains(
            "\"failures\":[{\"series\":\"optimistic\",\"mpl\":25,\"rep\":1,\
             \"kind\":\"panic\",\"detail\":\"chaos: injected panic\",\
             \"retry\":\"failed\",\"retry_attempts\":3}]"
        ));
        assert!(j.ends_with(",\"interrupted\":true}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // And the parser reads its own output back.
        let v = parse(&j).expect("parses");
        let failures = v.get("failures").and_then(Value::as_arr).expect("array");
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].get("kind").and_then(Value::as_str),
            Some("panic")
        );
        assert_eq!(v.get("interrupted").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn retry_outcomes_round_trip_through_json() {
        use crate::spec::{FailureKind, PointFailure, RetryOutcome};
        for retry in [
            RetryOutcome::NotAttempted,
            RetryOutcome::Degraded { attempts: 2 },
            RetryOutcome::Recovered { attempts: 3 },
            RetryOutcome::Failed { attempts: 4 },
        ] {
            let mut r = tiny_result();
            r.failures.push(PointFailure {
                series: "blocking".into(),
                mpl: 5,
                rep: 0,
                kind: FailureKind::Budget,
                detail: "d".into(),
                retry,
            });
            let v = parse(&to_json(&r)).expect("parses");
            let f = &v.get("failures").and_then(Value::as_arr).expect("array")[0];
            let token = f.get("retry").and_then(Value::as_str).expect("token");
            let attempts = f
                .get("retry_attempts")
                .and_then(Value::as_u64)
                .expect("attempts") as u32;
            assert_eq!(RetryOutcome::from_parts(token, attempts), Some(retry));
        }
    }

    #[test]
    fn parser_round_trips_documents() {
        let j = to_json(&tiny_result());
        let v = parse(&j).expect("parses");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("t"));
        assert_eq!(
            v.get("title").and_then(Value::as_str),
            Some("tiny \"quoted\"")
        );
        let points = v.get("points").and_then(Value::as_arr).expect("points");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].get("mpl").and_then(Value::as_u64), Some(5));
        assert_eq!(
            points[0].get("throughput").and_then(Value::as_f64),
            Some(1.5)
        );
        assert_eq!(points[0].get("commits").and_then(Value::as_u64), Some(10));
    }

    #[test]
    fn parser_preserves_exact_lexemes() {
        // u64 beyond f64's 2^53 mantissa survives as an integer...
        let v = parse("{\"seed\":18446744073709551615}").expect("parses");
        assert_eq!(
            v.get("seed").and_then(Value::as_u64),
            Some(u64::MAX),
            "seed lexeme must not round-trip through f64"
        );
        // ...floats round-trip bit-exactly through shortest formatting...
        let x = 0.1f64 + 0.2f64;
        let v = parse(&format!("[{x}]")).expect("parses");
        assert_eq!(v.as_arr().unwrap()[0].as_f64(), Some(x));
        // ...and the manifest's non-finite lexemes are accepted.
        let v = parse("[NaN,inf,-inf,null]").expect("parses");
        let items = v.as_arr().unwrap();
        assert!(items[0].as_f64().unwrap().is_nan());
        assert_eq!(items[1].as_f64(), Some(f64::INFINITY));
        assert_eq!(items[2].as_f64(), Some(f64::NEG_INFINITY));
        assert!(items[3].as_f64().unwrap().is_nan());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("bogus").is_err());
    }

    #[test]
    fn parser_unescapes_strings() {
        let v = parse("\"a\\nb\\tc\\u0041\\\\\"").expect("parses");
        assert_eq!(v.as_str(), Some("a\nb\tc\u{41}\\"));
    }
}
