//! Markdown report generation: turns experiment results and their shape
//! checks into a self-contained results appendix (`repro ... --md <path>`).

use std::fmt::Write as _;

use crate::checks::CheckOutcome;
use crate::spec::{ExperimentResult, FigureKind, FigureView};

fn md_view(result: &ExperimentResult, view: &FigureView, out: &mut String) {
    let _ = writeln!(out, "### {} — {}\n", view.figure, view.caption);
    let labels: Vec<&str> = result
        .spec
        .series
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    // Header.
    let _ = write!(out, "| mpl |");
    for l in &labels {
        let col = match view.kind {
            FigureKind::Throughput => format!(" {l} (tps) |"),
            FigureKind::ConflictRatios => format!(" {l} (blk/rst per commit) |"),
            FigureKind::ResponseTime => format!(" {l} (mean/σ s) |"),
            FigureKind::DiskUtil => format!(" {l} (total/useful) |"),
        };
        out.push_str(&col);
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &labels {
        out.push_str("---|");
    }
    let _ = writeln!(out);
    // Rows.
    for &mpl in &result.spec.mpls {
        let _ = write!(out, "| {mpl} |");
        for l in &labels {
            let cell = result
                .points
                .iter()
                .find(|p| p.series == *l && p.mpl == mpl)
                .map_or("—".to_string(), |p| {
                    let r = &p.report;
                    match view.kind {
                        FigureKind::Throughput => {
                            format!("{:.2} ± {:.2}", r.throughput.mean, r.throughput.half_width)
                        }
                        FigureKind::ConflictRatios => {
                            format!("{:.2} / {:.2}", r.block_ratio, r.restart_ratio)
                        }
                        FigureKind::ResponseTime => {
                            format!("{:.1} / {:.1}", r.response_time_mean, r.response_time_std)
                        }
                        FigureKind::DiskUtil => format!(
                            "{:.0}% / {:.0}%",
                            100.0 * r.disk_util_total.mean,
                            100.0 * r.disk_util_useful.mean
                        ),
                    }
                });
            let _ = write!(out, " {cell} |");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
}

/// Render one experiment (tables plus check verdicts) as markdown.
#[must_use]
pub fn experiment_to_markdown(result: &ExperimentResult, checks: &[CheckOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {} (`{}`)\n", result.spec.title, result.spec.id);
    let reps = result.replications();
    if reps > 1 {
        let _ = writeln!(
            out,
            "_{reps} independent replications per point; ± is the Student-t interval across replication means (common random numbers pair the series)._\n"
        );
    }
    if result.interrupted {
        let _ = writeln!(
            out,
            "_Sweep interrupted: tables cover only the completed runs._\n"
        );
    }
    for view in &result.spec.views {
        md_view(result, view, &mut out);
    }
    if !result.failures.is_empty() {
        let _ = writeln!(out, "Run failures (missing cells above are holes):\n");
        for f in &result.failures {
            let _ = writeln!(out, "- ⚠️ {f}");
        }
        let _ = writeln!(out);
    }
    if !checks.is_empty() {
        let _ = writeln!(out, "Shape checks:\n");
        for c in checks {
            let mark = if c.passed { "✅" } else { "❌" };
            let _ = writeln!(out, "- {mark} {} — {}", c.description, c.detail);
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a full results appendix.
#[must_use]
pub fn report_to_markdown(results: &[(ExperimentResult, Vec<CheckOutcome>)]) -> String {
    let mut out = String::from("# Reproduction results\n\n");
    let total: usize = results.iter().map(|(_, c)| c.len()).sum();
    let passed: usize = results
        .iter()
        .flat_map(|(_, c)| c.iter())
        .filter(|c| c.passed)
        .count();
    let _ = writeln!(out, "Shape checks: **{passed}/{total} passed**.\n");
    for (result, checks) in results {
        out.push_str(&experiment_to_markdown(result, checks));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::checks;
    use crate::runner::{run_experiment, Fidelity, RunOptions};

    fn small_result() -> ExperimentResult {
        let mut spec = catalog::exp3();
        spec.mpls = vec![5, 25];
        run_experiment(
            &spec,
            &RunOptions {
                fidelity: Fidelity::Quick,
                base_seed: 3,
                ..RunOptions::default()
            },
        )
        .expect("sweep completes")
    }

    #[test]
    fn markdown_tables_are_well_formed() {
        let result = small_result();
        let evals = checks::evaluate(&result);
        let md = experiment_to_markdown(&result, &evals);
        assert!(md.contains("## Experiment 3"));
        assert!(md.contains("### Figure 8"));
        assert!(md.contains("| mpl |"));
        // One separator and two data rows per table, three tables.
        assert_eq!(md.matches("| 25 |").count(), 3);
        assert!(md.contains("Shape checks:"));
        // Every table row has a consistent column count.
        for line in md.lines().filter(|l| l.starts_with('|')) {
            assert_eq!(line.matches('|').count(), 5, "ragged markdown row: {line}");
        }
    }

    #[test]
    fn full_report_counts_checks() {
        let result = small_result();
        let evals = checks::evaluate(&result);
        let n = evals.len();
        let md = report_to_markdown(&[(result, evals)]);
        assert!(md.starts_with("# Reproduction results"));
        assert!(md.contains(&format!("/{n} passed")));
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut result = small_result();
        result.points.retain(|p| p.mpl != 25);
        let md = experiment_to_markdown(&result, &[]);
        assert!(md.contains('—'));
    }

    #[test]
    fn failures_render_as_hole_list() {
        let mut result = small_result();
        result.points.retain(|p| p.mpl != 25);
        result.failures.push(crate::spec::PointFailure {
            series: "optimistic".to_string(),
            mpl: 25,
            rep: 1,
            kind: crate::spec::FailureKind::Budget,
            detail: "budget exhausted".to_string(),
            retry: crate::spec::RetryOutcome::Failed { attempts: 2 },
        });
        let md = experiment_to_markdown(&result, &[]);
        assert!(md.contains("Run failures"));
        assert!(md.contains("⚠️ optimistic@25 rep 1 [budget]"));
        assert!(md.contains("(all 2 attempts failed)"));
    }
}
