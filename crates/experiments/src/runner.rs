//! Runs an experiment's `(series × mpl)` grid, in parallel across OS
//! threads. Each point is an independent simulation, so parallelism is
//! embarrassing; results are deterministic because every point derives its
//! seed from the experiment's base seed and its grid coordinates, not from
//! scheduling order.

use ccsim_core::{run as run_sim, MetricsConfig};
use crossbeam::channel;

use crate::spec::{DataPoint, ExperimentResult, ExperimentSpec};

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Paper-faithful: 20 batches of 150 s after warmup. Minutes per
    /// experiment.
    #[default]
    Paper,
    /// Shorter batches for smoke runs and CI. Seconds per experiment.
    Quick,
}

impl Fidelity {
    /// The metrics configuration this fidelity implies.
    #[must_use]
    pub fn metrics(self) -> MetricsConfig {
        match self {
            Fidelity::Paper => MetricsConfig::paper(),
            Fidelity::Quick => MetricsConfig::quick(),
        }
    }
}

/// Options for [`run_experiment`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Sweep fidelity.
    pub fidelity: Fidelity,
    /// Base seed; each grid point gets a distinct derived seed.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fidelity: Fidelity::Paper,
            base_seed: 0x0C55_1985,
            threads: 0,
        }
    }
}

/// Deterministic per-point seed: mix the base seed with grid coordinates.
fn point_seed(base: u64, series_ix: usize, mpl: u32) -> u64 {
    base ^ (series_ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(mpl).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Run every point of `spec` and collect the results (ordered by series,
/// then mpl, regardless of completion order).
#[must_use]
pub fn run_experiment(spec: &ExperimentSpec, opts: &RunOptions) -> ExperimentResult {
    let metrics = opts.fidelity.metrics();
    let jobs: Vec<(usize, u32)> = spec
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| spec.mpls.iter().map(move |&mpl| (si, mpl)))
        .collect();

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(jobs.len().max(1));

    let (job_tx, job_rx) = channel::unbounded::<(usize, u32)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, u32, DataPoint)>();
    for job in &jobs {
        job_tx.send(*job).expect("queueing jobs");
    }
    drop(job_tx);

    crossbeam::scope(|s| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let spec_ref = &*spec;
            s.spawn(move |_| {
                while let Ok((si, mpl)) = job_rx.recv() {
                    let series = &spec_ref.series[si];
                    let seed = point_seed(opts.base_seed, si, mpl);
                    let cfg = spec_ref.config(series, mpl, metrics, seed);
                    let report = run_sim(cfg).expect("catalog configs validate");
                    let point = DataPoint {
                        series: series.label.clone(),
                        mpl,
                        report,
                    };
                    res_tx.send((si, mpl, point)).expect("collecting results");
                }
            });
        }
        drop(res_tx);
    })
    .expect("worker panicked");

    let mut collected: Vec<(usize, u32, DataPoint)> = res_rx.iter().collect();
    collected.sort_by_key(|(si, mpl, _)| (*si, *mpl));
    ExperimentResult {
        spec: spec.clone(),
        points: collected.into_iter().map(|(_, _, p)| p).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            fidelity: Fidelity::Quick,
            base_seed: 42,
            threads: 0,
        }
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = catalog::exp3();
        spec.mpls = vec![5, 25];
        spec
    }

    #[test]
    fn runs_full_grid_in_order() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts());
        assert_eq!(result.points.len(), spec.num_runs());
        let labels: Vec<&str> = result.points.iter().map(|p| p.series.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "blocking",
                "blocking",
                "immediate-restart",
                "immediate-restart",
                "optimistic",
                "optimistic"
            ]
        );
        assert_eq!(result.points[0].mpl, 5);
        assert_eq!(result.points[1].mpl, 25);
        for p in &result.points {
            assert!(p.report.commits > 0, "{}@{} ran nothing", p.series, p.mpl);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let spec = tiny_spec();
        let par = run_experiment(&spec, &tiny_opts());
        let ser = run_experiment(
            &spec,
            &RunOptions {
                threads: 1,
                ..tiny_opts()
            },
        );
        for (a, b) in par.points.iter().zip(ser.points.iter()) {
            assert_eq!(a.series, b.series);
            assert_eq!(a.mpl, b.mpl);
            assert_eq!(a.report, b.report, "{}@{} differs", a.series, a.mpl);
        }
    }

    #[test]
    fn point_seeds_differ_across_grid() {
        let a = point_seed(1, 0, 5);
        let b = point_seed(1, 0, 10);
        let c = point_seed(1, 1, 5);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, point_seed(1, 0, 5));
    }

    #[test]
    fn result_accessors() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts());
        let pts = result.series_points("blocking");
        assert_eq!(pts.len(), 2);
        assert!(pts[0].mpl < pts[1].mpl);
        let peak = result.peak_throughput("blocking");
        assert!(peak > 0.0);
        assert!(result.throughput_at("blocking", 5).is_some());
        assert!(result.throughput_at("blocking", 999).is_none());
    }
}
