//! Runs an experiment's `(series × mpl × replication)` grid, in parallel
//! across OS threads. Each run is an independent simulation, so parallelism
//! is embarrassing; results are deterministic because every run derives its
//! seeds from the experiment's base seed and its grid coordinates, not from
//! scheduling order.
//!
//! Seeding implements **common random numbers**: a run's *workload* seed is
//! derived from `(mpl, replication)` only — never the series — so at a
//! given point the same replication index drives every algorithm with the
//! same arrival, think-time, and access-pattern streams. The *control*
//! seed (restart delays) does include the series, keeping the algorithms'
//! internal randomness independent. Paired comparisons across series then
//! cancel the shared workload noise (see
//! [`ExperimentResult::paired_throughput_t`]).

use ccsim_core::{run as run_sim, MetricsConfig, Report};
use ccsim_des::derive_seed;
use crossbeam::channel;

use crate::replicate::aggregate_reports;
use crate::spec::{DataPoint, ExperimentResult, ExperimentSpec};

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Paper-faithful: 20 batches of 150 s after warmup. Minutes per
    /// experiment.
    #[default]
    Paper,
    /// Shorter batches for smoke runs and CI. Seconds per experiment.
    Quick,
}

impl Fidelity {
    /// The metrics configuration this fidelity implies.
    #[must_use]
    pub fn metrics(self) -> MetricsConfig {
        match self {
            Fidelity::Paper => MetricsConfig::paper(),
            Fidelity::Quick => MetricsConfig::quick(),
        }
    }
}

/// Options for [`run_experiment`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Sweep fidelity.
    pub fidelity: Fidelity,
    /// Base seed; each grid point gets a distinct derived seed.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Independent replications per `(series, mpl)` point (0 is treated
    /// as 1). Replication `i` reuses one workload stream across all
    /// series — common random numbers.
    pub replications: u32,
    /// Attach the online invariant auditor (`ccsim-audit`) to every run.
    /// Violations do not abort the sweep; they are collected as summary
    /// lines in [`ExperimentResult::audit_failures`].
    pub audit: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fidelity: Fidelity::Paper,
            base_seed: 0x0C55_1985,
            threads: 0,
            replications: 1,
            audit: false,
        }
    }
}

/// Domain tags keeping the workload and control seed families disjoint.
const WORKLOAD_DOMAIN: u64 = 1;
const CONTROL_DOMAIN: u64 = 2;

/// Workload-stream seed for one run. Deliberately independent of the
/// series: all algorithms at `(mpl, rep)` see the same transaction mix.
fn workload_seed(base: u64, mpl: u32, rep: u32) -> u64 {
    derive_seed(base, &[WORKLOAD_DOMAIN, u64::from(mpl), u64::from(rep)])
}

/// Control-stream seed for one run (restart delays etc.); series-specific.
fn control_seed(base: u64, series_ix: usize, mpl: u32, rep: u32) -> u64 {
    derive_seed(
        base,
        &[
            CONTROL_DOMAIN,
            series_ix as u64 + 1,
            u64::from(mpl),
            u64::from(rep),
        ],
    )
}

/// Run every replication of every point of `spec` and collect the results
/// (ordered by series, then mpl, regardless of completion order).
#[must_use]
pub fn run_experiment(spec: &ExperimentSpec, opts: &RunOptions) -> ExperimentResult {
    let metrics = opts.fidelity.metrics();
    let reps = opts.replications.max(1);
    let jobs: Vec<(usize, u32, u32)> = spec
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            spec.mpls
                .iter()
                .flat_map(move |&mpl| (0..reps).map(move |rep| (si, mpl, rep)))
        })
        .collect();

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(jobs.len().max(1));

    let (job_tx, job_rx) = channel::unbounded::<(usize, u32, u32)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, u32, u32, Report, Vec<String>)>();
    for job in &jobs {
        job_tx.send(*job).expect("queueing jobs");
    }
    drop(job_tx);

    crossbeam::scope(|s| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let spec_ref = &*spec;
            s.spawn(move |_| {
                while let Ok((si, mpl, rep)) = job_rx.recv() {
                    let series = &spec_ref.series[si];
                    let cfg = spec_ref
                        .config(
                            series,
                            mpl,
                            metrics,
                            control_seed(opts.base_seed, si, mpl, rep),
                        )
                        .with_workload_seed(workload_seed(opts.base_seed, mpl, rep));
                    let (report, failures) = if opts.audit {
                        let (report, audit) =
                            ccsim_audit::run_with_audit(cfg).expect("catalog configs validate");
                        let failures = audit
                            .summaries()
                            .into_iter()
                            .map(|v| format!("{}@{} rep {rep}: {v}", series.label, mpl))
                            .collect();
                        (report, failures)
                    } else {
                        (run_sim(cfg).expect("catalog configs validate"), Vec::new())
                    };
                    res_tx
                        .send((si, mpl, rep, report, failures))
                        .expect("collecting results");
                }
            });
        }
        drop(res_tx);
    })
    .expect("worker panicked");

    let mut collected: Vec<(usize, u32, u32, Report, Vec<String>)> = res_rx.iter().collect();
    collected.sort_by_key(|(si, mpl, rep, _, _)| (*si, *mpl, *rep));
    let audit_failures: Vec<String> = collected
        .iter()
        .flat_map(|(_, _, _, _, f)| f.iter().cloned())
        .collect();
    let points = collected
        .chunk_by(|a, b| a.0 == b.0 && a.1 == b.1)
        .map(|chunk| {
            let (si, mpl, _, _, _) = chunk[0];
            let replicates: Vec<Report> = chunk.iter().map(|(_, _, _, r, _)| r.clone()).collect();
            DataPoint {
                series: spec.series[si].label.clone(),
                mpl,
                report: aggregate_reports(&replicates, metrics.confidence),
                replicates,
            }
        })
        .collect();
    ExperimentResult {
        spec: spec.clone(),
        points,
        audit_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            fidelity: Fidelity::Quick,
            base_seed: 42,
            threads: 0,
            replications: 1,
            audit: false,
        }
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = catalog::exp3();
        spec.mpls = vec![5, 25];
        spec
    }

    #[test]
    fn runs_full_grid_in_order() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts());
        assert_eq!(result.points.len(), spec.num_runs());
        let labels: Vec<&str> = result.points.iter().map(|p| p.series.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "blocking",
                "blocking",
                "immediate-restart",
                "immediate-restart",
                "optimistic",
                "optimistic"
            ]
        );
        assert_eq!(result.points[0].mpl, 5);
        assert_eq!(result.points[1].mpl, 25);
        for p in &result.points {
            assert!(p.report.commits > 0, "{}@{} ran nothing", p.series, p.mpl);
            assert_eq!(p.replicates.len(), 1);
            assert_eq!(p.replicates[0], p.report);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let spec = tiny_spec();
        let par = run_experiment(&spec, &tiny_opts());
        let ser = run_experiment(
            &spec,
            &RunOptions {
                threads: 1,
                ..tiny_opts()
            },
        );
        for (a, b) in par.points.iter().zip(ser.points.iter()) {
            assert_eq!(a.series, b.series);
            assert_eq!(a.mpl, b.mpl);
            assert_eq!(a.report, b.report, "{}@{} differs", a.series, a.mpl);
        }
    }

    #[test]
    fn replications_aggregate_per_point() {
        let mut spec = tiny_spec();
        spec.mpls = vec![5];
        let result = run_experiment(
            &spec,
            &RunOptions {
                replications: 2,
                ..tiny_opts()
            },
        );
        assert_eq!(result.points.len(), 3);
        assert_eq!(result.replications(), 2);
        for p in &result.points {
            assert_eq!(p.replicates.len(), 2);
            assert_ne!(
                p.replicates[0], p.replicates[1],
                "{}@{}: replications should differ",
                p.series, p.mpl
            );
            let mean = (p.replicates[0].throughput.mean + p.replicates[1].throughput.mean) / 2.0;
            assert!((p.report.throughput.mean - mean).abs() < 1e-12);
            assert_eq!(
                p.report.commits,
                p.replicates[0].commits + p.replicates[1].commits
            );
        }
    }

    #[test]
    fn audited_sweep_is_clean_and_identical_to_unaudited() {
        let mut spec = tiny_spec();
        spec.mpls = vec![5];
        let plain = run_experiment(&spec, &tiny_opts());
        let audited = run_experiment(
            &spec,
            &RunOptions {
                audit: true,
                ..tiny_opts()
            },
        );
        assert!(
            audited.audit_failures.is_empty(),
            "audit violations: {:?}",
            audited.audit_failures
        );
        assert!(plain.audit_failures.is_empty());
        // Observing the run must not perturb it.
        for (a, b) in plain.points.iter().zip(audited.points.iter()) {
            assert_eq!(
                a.report, b.report,
                "{}@{} differs under audit",
                a.series, a.mpl
            );
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        // Workload seeds ignore the series (common random numbers)...
        assert_eq!(workload_seed(1, 5, 0), workload_seed(1, 5, 0));
        assert_ne!(workload_seed(1, 5, 0), workload_seed(1, 5, 1));
        assert_ne!(workload_seed(1, 5, 0), workload_seed(1, 10, 0));
        // ...while control seeds are series-specific and never collide
        // with workload seeds.
        assert_ne!(control_seed(1, 0, 5, 0), control_seed(1, 1, 5, 0));
        assert_ne!(control_seed(1, 0, 5, 0), control_seed(1, 0, 5, 1));
        assert_ne!(control_seed(1, 0, 5, 0), workload_seed(1, 5, 0));
    }

    #[test]
    fn result_accessors() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts());
        let pts = result.series_points("blocking");
        assert_eq!(pts.len(), 2);
        assert!(pts[0].mpl < pts[1].mpl);
        let peak = result.peak_throughput("blocking");
        assert!(peak > 0.0);
        assert!(result.throughput_at("blocking", 5).is_some());
        assert!(result.throughput_at("blocking", 999).is_none());
    }
}
