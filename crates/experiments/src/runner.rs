//! The resilient sweep supervisor: runs an experiment's `(series × mpl ×
//! replication)` grid in parallel across OS threads, isolating each run so
//! one bad grid point cannot take down the sweep.
//!
//! Each run is an independent simulation, so parallelism is embarrassing;
//! results are deterministic because every run derives its seeds from the
//! experiment's base seed and its grid coordinates, not from scheduling
//! order.
//!
//! Seeding implements **common random numbers**: a run's *workload* seed is
//! derived from `(mpl, replication)` only — never the series — so at a
//! given point the same replication index drives every algorithm with the
//! same arrival, think-time, and access-pattern streams. The *control*
//! seed (restart delays) does include the series, keeping the algorithms'
//! internal randomness independent. Paired comparisons across series then
//! cancel the shared workload noise (see
//! [`ExperimentResult::paired_throughput_t`]).
//!
//! # Resilience
//!
//! Every run executes under `catch_unwind` with the engine's
//! [`ccsim_core::RunBudget`] active, so a panicking, misconfigured, or
//! livelocked run becomes a typed [`PointFailure`] hole in the result
//! instead of aborting the sweep (optionally retried once at quick
//! fidelity, see [`RunOptions::retry_quick`]). With a
//! [`SweepControl::checkpoint`] path, completed runs are journaled to a
//! manifest (atomic rewrite on every update); a later run with
//! [`SweepControl::resume`] skips journaled runs and — because seeds are
//! coordinate-derived — produces byte-identical final output.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use ccsim_core::{run as run_sim, MetricsConfig, Report, RunBudget, RunError};
use ccsim_des::derive_seed;
use crossbeam::channel;

#[cfg(feature = "chaos")]
use crate::chaos::{ChaosKind, ChaosPoint};
use crate::manifest::{Manifest, ManifestEntry, ManifestError};
use crate::replicate::aggregate_reports;
use crate::spec::{
    DataPoint, ExperimentResult, ExperimentSpec, FailureKind, PointFailure, RetryOutcome,
};

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Paper-faithful: 20 batches of 150 s after warmup. Minutes per
    /// experiment.
    #[default]
    Paper,
    /// Shorter batches for smoke runs and CI. Seconds per experiment.
    Quick,
}

impl Fidelity {
    /// The metrics configuration this fidelity implies.
    #[must_use]
    pub fn metrics(self) -> MetricsConfig {
        match self {
            Fidelity::Paper => MetricsConfig::paper(),
            Fidelity::Quick => MetricsConfig::quick(),
        }
    }

    /// Stable lowercase token (used in the checkpoint manifest header).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Fidelity::Paper => "paper",
            Fidelity::Quick => "quick",
        }
    }
}

/// Options for [`run_experiment`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Sweep fidelity.
    pub fidelity: Fidelity,
    /// Base seed; each grid point gets a distinct derived seed.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Independent replications per `(series, mpl)` point (0 is treated
    /// as 1). Replication `i` reuses one workload stream across all
    /// series — common random numbers.
    pub replications: u32,
    /// Attach the online invariant auditor (`ccsim-audit`) to every run.
    /// Violations do not abort the sweep; they are collected as summary
    /// lines in [`ExperimentResult::audit_failures`].
    pub audit: bool,
    /// Retry a failed run once at [`Fidelity::Quick`] to fill the hole
    /// with a degraded measurement. The original failure stays recorded
    /// with [`RetryOutcome::Succeeded`]; retried reports are never
    /// checkpointed, so a resumed sweep re-attempts the point at full
    /// fidelity.
    pub retry_quick: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fidelity: Fidelity::Paper,
            base_seed: 0x0C55_1985,
            threads: 0,
            replications: 1,
            audit: false,
            retry_quick: false,
        }
    }
}

/// Supervisor controls orthogonal to [`RunOptions`]: checkpointing,
/// resumption, and stop requests. `SweepControl::default()` runs a plain
/// uncheckpointed sweep.
#[derive(Debug, Default)]
pub struct SweepControl<'a> {
    /// Journal completed runs to this manifest path (see
    /// [`crate::manifest`]).
    pub checkpoint: Option<&'a std::path::Path>,
    /// Skip runs already journaled in the checkpoint manifest (which must
    /// match this sweep's spec and options).
    pub resume: bool,
    /// Cooperative stop flag (e.g. set by a SIGINT handler). Checked
    /// between run completions; in-flight runs finish and are journaled,
    /// queued runs are abandoned, and the result is marked
    /// [`ExperimentResult::interrupted`].
    pub interrupt: Option<&'a AtomicBool>,
    /// Stop (as if interrupted) after this many newly completed clean
    /// runs — the deterministic "kill after K points" hook used by
    /// resume tests.
    pub stop_after: Option<u64>,
    /// Deterministic fault injection (feature `chaos`): the targeted grid
    /// coordinate's first attempt fails.
    #[cfg(feature = "chaos")]
    pub chaos: Option<ChaosPoint>,
}

/// A sweep-level failure: the supervisor itself (not an individual run)
/// could not proceed.
#[derive(Debug)]
pub enum SweepError {
    /// The worker pool failed outside the per-run isolation guard.
    Pool(String),
    /// The checkpoint manifest could not be opened, validated, or written.
    Manifest(ManifestError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Pool(m) => write!(f, "worker pool failure: {m}"),
            SweepError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Pool(_) => None,
            SweepError::Manifest(e) => Some(e),
        }
    }
}

impl From<ManifestError> for SweepError {
    fn from(e: ManifestError) -> Self {
        SweepError::Manifest(e)
    }
}

/// Domain tags keeping the workload and control seed families disjoint.
const WORKLOAD_DOMAIN: u64 = 1;
const CONTROL_DOMAIN: u64 = 2;

/// Workload-stream seed for one run. Deliberately independent of the
/// series: all algorithms at `(mpl, rep)` see the same transaction mix.
fn workload_seed(base: u64, mpl: u32, rep: u32) -> u64 {
    derive_seed(base, &[WORKLOAD_DOMAIN, u64::from(mpl), u64::from(rep)])
}

/// Control-stream seed for one run (restart delays etc.); series-specific.
fn control_seed(base: u64, series_ix: usize, mpl: u32, rep: u32) -> u64 {
    derive_seed(
        base,
        &[
            CONTROL_DOMAIN,
            series_ix as u64 + 1,
            u64::from(mpl),
            u64::from(rep),
        ],
    )
}

/// Chaos plan resolved from [`SweepControl`]; a no-op without the feature.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosPlan {
    #[cfg(feature = "chaos")]
    point: Option<ChaosPoint>,
}

impl ChaosPlan {
    fn panic_at(self, series_ix: usize, mpl: u32, rep: u32) -> bool {
        #[cfg(feature = "chaos")]
        if let Some(p) = self.point {
            return p.kind == ChaosKind::Panic && p.targets(series_ix, mpl, rep);
        }
        let _ = (series_ix, mpl, rep);
        false
    }

    fn budget_cap_at(self, series_ix: usize, mpl: u32, rep: u32) -> Option<u64> {
        #[cfg(feature = "chaos")]
        if let Some(p) = self.point {
            if p.kind == ChaosKind::BudgetExhaust && p.targets(series_ix, mpl, rep) {
                return Some(ChaosPoint::TINY_EVENT_BUDGET);
            }
        }
        let _ = (series_ix, mpl, rep);
        None
    }
}

/// What a worker reports back for one grid coordinate. A clean run has
/// `success` only; an unretried (or retry-failed) failure has `failure`
/// only; a retry that succeeded carries both — the degraded report fills
/// the hole while the original failure stays on record.
struct PointMsg {
    series_ix: usize,
    mpl: u32,
    rep: u32,
    success: Option<(Report, Vec<String>)>,
    failure: Option<(FailureKind, String, RetryOutcome)>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Execute one run under panic isolation. `Err` carries the typed failure
/// for the hole record.
fn run_point(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    metrics: MetricsConfig,
    series_ix: usize,
    mpl: u32,
    rep: u32,
    chaos: ChaosPlan,
) -> Result<(Report, Vec<String>), (FailureKind, String)> {
    let series = &spec.series[series_ix];
    let mut cfg = spec
        .config(
            series,
            mpl,
            metrics,
            control_seed(opts.base_seed, series_ix, mpl, rep),
        )
        .with_workload_seed(workload_seed(opts.base_seed, mpl, rep));
    if let Some(cap) = chaos.budget_cap_at(series_ix, mpl, rep) {
        cfg = cfg.with_budget(RunBudget::unlimited().with_max_events(cap));
    }
    let inject_panic = chaos.panic_at(series_ix, mpl, rep);
    let audit = opts.audit;
    let label = series.label.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        assert!(
            !inject_panic,
            "chaos: injected panic at {label}@{mpl} rep {rep}"
        );
        if audit {
            ccsim_audit::run_with_audit(cfg).map(|(report, audit)| {
                let failures = audit
                    .summaries()
                    .into_iter()
                    .map(|v| format!("{label}@{mpl} rep {rep}: {v}"))
                    .collect();
                (report, failures)
            })
        } else {
            run_sim(cfg).map(|r| (r, Vec::new()))
        }
    }));
    match outcome {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e @ RunError::BudgetExhausted { .. })) => Err((FailureKind::Budget, e.to_string())),
        Ok(Err(e @ RunError::InvalidConfig(_))) => Err((FailureKind::Config, e.to_string())),
        Err(payload) => Err((FailureKind::Panic, panic_message(payload.as_ref()))),
    }
}

/// Run every replication of every point of `spec` and collect the results
/// (ordered by series, then mpl, regardless of completion order). Failed
/// runs become [`PointFailure`] holes; only a supervisor-level fault
/// (worker pool, checkpoint manifest) aborts the sweep.
///
/// # Errors
/// Returns [`SweepError`] on supervisor-level faults.
pub fn run_experiment(
    spec: &ExperimentSpec,
    opts: &RunOptions,
) -> Result<ExperimentResult, SweepError> {
    run_experiment_supervised(spec, opts, &SweepControl::default())
}

/// [`run_experiment`] with explicit supervisor controls: checkpointing,
/// resume, cooperative interruption, and (with feature `chaos`) fault
/// injection.
///
/// # Errors
/// Returns [`SweepError`] on supervisor-level faults — a manifest that
/// cannot be opened/validated/written, or a worker-pool failure outside
/// the per-run isolation guard.
pub fn run_experiment_supervised(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    ctl: &SweepControl<'_>,
) -> Result<ExperimentResult, SweepError> {
    let metrics = opts.fidelity.metrics();
    let reps = opts.replications.max(1);

    let mut manifest = match ctl.checkpoint {
        Some(path) => Some(Manifest::open(path, spec, opts, ctl.resume)?),
        None => None,
    };
    let done: HashSet<(usize, u32, u32)> = manifest
        .as_ref()
        .map(Manifest::completed)
        .unwrap_or_default();
    // Journaled runs enter the collection exactly as if they had just run.
    let mut collected: Vec<(usize, u32, u32, Report, Vec<String>)> = manifest
        .as_ref()
        .map(|m| {
            m.entries()
                .iter()
                .map(|e| (e.series_ix, e.mpl, e.rep, e.report.clone(), e.audit.clone()))
                .collect()
        })
        .unwrap_or_default();

    let jobs: Vec<(usize, u32, u32)> = spec
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            spec.mpls
                .iter()
                .flat_map(move |&mpl| (0..reps).map(move |rep| (si, mpl, rep)))
        })
        .filter(|coord| !done.contains(coord))
        .collect();

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(jobs.len().max(1));

    let chaos = ChaosPlan {
        #[cfg(feature = "chaos")]
        point: ctl.chaos,
    };

    let (job_tx, job_rx) = channel::unbounded::<(usize, u32, u32)>();
    let (res_tx, res_rx) = channel::unbounded::<PointMsg>();
    let mut interrupted = false;
    // An interrupt raised before the sweep starts abandons the whole queue
    // (checked here, before workers exist, so no run can slip through).
    if ctl.interrupt.is_some_and(|f| f.load(Ordering::Relaxed)) {
        interrupted = true;
    } else {
        for job in &jobs {
            job_tx.send(*job).expect("queueing jobs");
        }
    }
    drop(job_tx);

    let cancel = AtomicBool::new(false);
    let mut failures_raw: Vec<(usize, u32, u32, FailureKind, String, RetryOutcome)> = Vec::new();
    let mut manifest_err: Option<ManifestError> = None;
    let mut newly_completed: u64 = 0;

    let pool = crossbeam::scope(|s| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let cancel = &cancel;
            let spec_ref = &*spec;
            s.spawn(move |_| {
                while !cancel.load(Ordering::Relaxed) {
                    let Ok((si, mpl, rep)) = job_rx.recv() else {
                        break;
                    };
                    let msg = match run_point(spec_ref, opts, metrics, si, mpl, rep, chaos) {
                        Ok(success) => PointMsg {
                            series_ix: si,
                            mpl,
                            rep,
                            success: Some(success),
                            failure: None,
                        },
                        Err((kind, detail)) if opts.retry_quick => {
                            // One-shot retry at quick fidelity, chaos off
                            // (injected faults only hit first attempts).
                            match run_point(
                                spec_ref,
                                opts,
                                Fidelity::Quick.metrics(),
                                si,
                                mpl,
                                rep,
                                ChaosPlan::default(),
                            ) {
                                Ok(success) => PointMsg {
                                    series_ix: si,
                                    mpl,
                                    rep,
                                    success: Some(success),
                                    failure: Some((kind, detail, RetryOutcome::Succeeded)),
                                },
                                Err(_) => PointMsg {
                                    series_ix: si,
                                    mpl,
                                    rep,
                                    success: None,
                                    failure: Some((kind, detail, RetryOutcome::Failed)),
                                },
                            }
                        }
                        Err((kind, detail)) => PointMsg {
                            series_ix: si,
                            mpl,
                            rep,
                            success: None,
                            failure: Some((kind, detail, RetryOutcome::NotAttempted)),
                        },
                    };
                    if res_tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);

        // Supervisor drain loop (runs on the calling thread): journal
        // completions, record failures, honor stop requests. A stop lets
        // in-flight runs finish (and journals them) but abandons the
        // queue.
        let stop = |interrupted: &mut bool| {
            *interrupted = true;
            cancel.store(true, Ordering::Relaxed);
            while job_rx.try_recv().is_some() {}
        };
        while let Ok(msg) = res_rx.recv() {
            let clean = msg.failure.is_none();
            if let Some((report, audit)) = msg.success {
                if clean {
                    if let Some(m) = manifest.as_mut() {
                        if let Err(e) = m.record(ManifestEntry {
                            series_ix: msg.series_ix,
                            mpl: msg.mpl,
                            rep: msg.rep,
                            audit: audit.clone(),
                            report: report.clone(),
                        }) {
                            if manifest_err.is_none() {
                                manifest_err = Some(ManifestError::Io(e));
                                stop(&mut interrupted);
                            }
                        }
                    }
                    newly_completed += 1;
                }
                collected.push((msg.series_ix, msg.mpl, msg.rep, report, audit));
            }
            if let Some((kind, detail, retry)) = msg.failure {
                failures_raw.push((msg.series_ix, msg.mpl, msg.rep, kind, detail, retry));
            }
            let stop_hit = ctl.stop_after.is_some_and(|k| newly_completed >= k);
            let intr_hit = ctl.interrupt.is_some_and(|f| f.load(Ordering::Relaxed));
            if (stop_hit || intr_hit) && !cancel.load(Ordering::Relaxed) {
                stop(&mut interrupted);
            }
        }
    });
    if pool.is_err() {
        return Err(SweepError::Pool(
            "a worker thread died outside the per-run isolation guard".to_string(),
        ));
    }
    if let Some(e) = manifest_err {
        return Err(SweepError::Manifest(e));
    }

    collected.sort_by_key(|(si, mpl, rep, _, _)| (*si, *mpl, *rep));
    let audit_failures: Vec<String> = collected
        .iter()
        .flat_map(|(_, _, _, _, f)| f.iter().cloned())
        .collect();
    let points = collected
        .chunk_by(|a, b| a.0 == b.0 && a.1 == b.1)
        .map(|chunk| {
            let (si, mpl, _, _, _) = chunk[0];
            let replicates: Vec<Report> = chunk.iter().map(|(_, _, _, r, _)| r.clone()).collect();
            DataPoint {
                series: spec.series[si].label.clone(),
                mpl,
                report: aggregate_reports(&replicates, metrics.confidence)
                    .expect("chunks are non-empty by construction"),
                replicates,
            }
        })
        .collect();
    failures_raw.sort_by_key(|a| (a.0, a.1, a.2));
    let failures = failures_raw
        .into_iter()
        .map(|(si, mpl, rep, kind, detail, retry)| PointFailure {
            series: spec.series[si].label.clone(),
            mpl,
            rep,
            kind,
            detail,
            retry,
        })
        .collect();
    Ok(ExperimentResult {
        spec: spec.clone(),
        points,
        audit_failures,
        failures,
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            fidelity: Fidelity::Quick,
            base_seed: 42,
            threads: 0,
            replications: 1,
            audit: false,
            retry_quick: false,
        }
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = catalog::exp3();
        spec.mpls = vec![5, 25];
        spec
    }

    #[test]
    fn runs_full_grid_in_order() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        assert_eq!(result.points.len(), spec.num_runs());
        assert!(result.is_clean());
        let labels: Vec<&str> = result.points.iter().map(|p| p.series.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "blocking",
                "blocking",
                "immediate-restart",
                "immediate-restart",
                "optimistic",
                "optimistic"
            ]
        );
        assert_eq!(result.points[0].mpl, 5);
        assert_eq!(result.points[1].mpl, 25);
        for p in &result.points {
            assert!(p.report.commits > 0, "{}@{} ran nothing", p.series, p.mpl);
            assert_eq!(p.replicates.len(), 1);
            assert_eq!(p.replicates[0], p.report);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let spec = tiny_spec();
        let par = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        let ser = run_experiment(
            &spec,
            &RunOptions {
                threads: 1,
                ..tiny_opts()
            },
        )
        .expect("sweep completes");
        for (a, b) in par.points.iter().zip(ser.points.iter()) {
            assert_eq!(a.series, b.series);
            assert_eq!(a.mpl, b.mpl);
            assert_eq!(a.report, b.report, "{}@{} differs", a.series, a.mpl);
        }
    }

    #[test]
    fn replications_aggregate_per_point() {
        let mut spec = tiny_spec();
        spec.mpls = vec![5];
        let result = run_experiment(
            &spec,
            &RunOptions {
                replications: 2,
                ..tiny_opts()
            },
        )
        .expect("sweep completes");
        assert_eq!(result.points.len(), 3);
        assert_eq!(result.replications(), 2);
        for p in &result.points {
            assert_eq!(p.replicates.len(), 2);
            assert_ne!(
                p.replicates[0], p.replicates[1],
                "{}@{}: replications should differ",
                p.series, p.mpl
            );
            let mean = (p.replicates[0].throughput.mean + p.replicates[1].throughput.mean) / 2.0;
            assert!((p.report.throughput.mean - mean).abs() < 1e-12);
            assert_eq!(
                p.report.commits,
                p.replicates[0].commits + p.replicates[1].commits
            );
        }
    }

    #[test]
    fn audited_sweep_is_clean_and_identical_to_unaudited() {
        let mut spec = tiny_spec();
        spec.mpls = vec![5];
        let plain = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        let audited = run_experiment(
            &spec,
            &RunOptions {
                audit: true,
                ..tiny_opts()
            },
        )
        .expect("sweep completes");
        assert!(
            audited.audit_failures.is_empty(),
            "audit violations: {:?}",
            audited.audit_failures
        );
        assert!(plain.audit_failures.is_empty());
        // Observing the run must not perturb it.
        for (a, b) in plain.points.iter().zip(audited.points.iter()) {
            assert_eq!(
                a.report, b.report,
                "{}@{} differs under audit",
                a.series, a.mpl
            );
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        // Workload seeds ignore the series (common random numbers)...
        assert_eq!(workload_seed(1, 5, 0), workload_seed(1, 5, 0));
        assert_ne!(workload_seed(1, 5, 0), workload_seed(1, 5, 1));
        assert_ne!(workload_seed(1, 5, 0), workload_seed(1, 10, 0));
        // ...while control seeds are series-specific and never collide
        // with workload seeds.
        assert_ne!(control_seed(1, 0, 5, 0), control_seed(1, 1, 5, 0));
        assert_ne!(control_seed(1, 0, 5, 0), control_seed(1, 0, 5, 1));
        assert_ne!(control_seed(1, 0, 5, 0), workload_seed(1, 5, 0));
    }

    #[test]
    fn result_accessors() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        let pts = result.series_points("blocking");
        assert_eq!(pts.len(), 2);
        assert!(pts[0].mpl < pts[1].mpl);
        let peak = result.peak_throughput("blocking");
        assert!(peak > 0.0);
        assert!(result.throughput_at("blocking", 5).is_some());
        assert!(result.throughput_at("blocking", 999).is_none());
    }

    #[test]
    fn invalid_config_becomes_a_typed_hole_not_a_crash() {
        let mut spec = tiny_spec();
        spec.mpls = vec![0, 5]; // mpl 0 fails validation in every series
        let result = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        assert!(!result.is_clean());
        assert_eq!(result.failures.len(), 3, "one config failure per series");
        for f in &result.failures {
            assert_eq!(f.kind, FailureKind::Config);
            assert_eq!(f.mpl, 0);
            assert_eq!(f.retry, RetryOutcome::NotAttempted);
        }
        // The valid mpl still ran everywhere.
        assert_eq!(result.points.len(), 3);
        assert!(result.points.iter().all(|p| p.mpl == 5));
        assert_eq!(result.holes().len(), 3);
    }

    #[test]
    fn stop_after_marks_result_interrupted() {
        let spec = tiny_spec();
        let ctl = SweepControl {
            stop_after: Some(2),
            ..SweepControl::default()
        };
        let result = run_experiment_supervised(
            &spec,
            &RunOptions {
                threads: 1,
                ..tiny_opts()
            },
            &ctl,
        )
        .expect("sweep stops cleanly");
        assert!(result.interrupted);
        assert!(result.points.len() < spec.num_runs());
        assert!(!result.points.is_empty());
    }

    #[test]
    fn preset_interrupt_flag_stops_before_any_run() {
        let spec = tiny_spec();
        let flag = AtomicBool::new(true);
        let ctl = SweepControl {
            interrupt: Some(&flag),
            ..SweepControl::default()
        };
        let result =
            run_experiment_supervised(&spec, &tiny_opts(), &ctl).expect("sweep stops cleanly");
        assert!(result.interrupted);
        assert!(result.points.is_empty());
    }
}
