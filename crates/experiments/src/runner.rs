//! The resilient sweep supervisor: runs an experiment's `(series × mpl ×
//! replication)` grid in parallel across OS threads, isolating each run so
//! one bad grid point cannot take down the sweep.
//!
//! Each run is an independent simulation, so parallelism is embarrassing;
//! results are deterministic because every run derives its seeds from the
//! experiment's base seed and its grid coordinates, not from scheduling
//! order.
//!
//! Seeding implements **common random numbers**: a run's *workload* seed is
//! derived from `(mpl, replication)` only — never the series — so at a
//! given point the same replication index drives every algorithm with the
//! same arrival, think-time, and access-pattern streams. The *control*
//! seed (restart delays) does include the series, keeping the algorithms'
//! internal randomness independent. Paired comparisons across series then
//! cancel the shared workload noise (see
//! [`ExperimentResult::paired_throughput_t`]).
//!
//! # Resilience
//!
//! Every run executes under `catch_unwind` with the engine's
//! [`ccsim_core::RunBudget`] active, so a panicking, misconfigured, or
//! livelocked run becomes a typed [`PointFailure`] hole in the result
//! instead of aborting the sweep. A [`RetryPolicy`] re-attempts failed
//! runs with deterministic exponential backoff, optionally falling back to
//! one degraded quick-fidelity fill. With a [`SweepControl::checkpoint`]
//! path, completed runs are journaled to a manifest (atomic rewrite on
//! every update); a later run with [`SweepControl::resume`] skips
//! journaled runs and — because seeds are coordinate-derived — produces
//! byte-identical final output. A [`SweepControl::progress`] callback
//! streams every settled coordinate as it lands, which is how the sweep
//! service (`ccsim-serve`) relays live results to its clients.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ccsim_core::{run as run_sim, EventPool, MetricsConfig, Report, RunBudget, RunError};
use ccsim_des::derive_seed;
use crossbeam::channel;

#[cfg(feature = "chaos")]
use crate::chaos::{ChaosKind, ChaosPoint};
use crate::manifest::{Manifest, ManifestEntry, ManifestError};
use crate::replicate::aggregate_reports;
use crate::spec::{
    DataPoint, ExperimentResult, ExperimentSpec, FailureKind, PointFailure, RetryOutcome,
};

/// Fidelity of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Paper-faithful: 20 batches of 150 s after warmup. Minutes per
    /// experiment.
    #[default]
    Paper,
    /// Shorter batches for smoke runs and CI. Seconds per experiment.
    Quick,
}

impl Fidelity {
    /// The metrics configuration this fidelity implies.
    #[must_use]
    pub fn metrics(self) -> MetricsConfig {
        match self {
            Fidelity::Paper => MetricsConfig::paper(),
            Fidelity::Quick => MetricsConfig::quick(),
        }
    }

    /// Stable lowercase token (used in the checkpoint manifest header).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Fidelity::Paper => "paper",
            Fidelity::Quick => "quick",
        }
    }
}

/// Per-point retry discipline: how many times a failed grid point is
/// re-attempted, how long to wait between attempts, and whether to fall
/// back to one degraded quick-fidelity fill once full-fidelity attempts
/// are exhausted.
///
/// Backoff is exponential with **deterministic jitter**: the wait before
/// attempt `k` is `min(base · 2^(k-2), max)` plus a jitter term derived
/// from `jitter_seed` and the grid coordinate — two sweeps with the same
/// policy produce the identical backoff schedule, point for point, so
/// retry behavior is as replayable as the simulations themselves (and
/// concurrently failing points still de-synchronize, since the jitter
/// varies per coordinate).
///
/// Attempt numbering is 1-based and counts every execution: attempt 1 is
/// the original run, attempts `2..=max_attempts` are full-fidelity
/// retries, and the optional degraded fill (when [`degrade_to_quick`] is
/// set) is one further attempt. A full-fidelity retry that succeeds is
/// recorded as [`RetryOutcome::Recovered`] and **is** checkpointed — the
/// report is exactly what the first attempt should have produced, because
/// seeds derive from the coordinate, not the attempt. A degraded fill is
/// recorded as [`RetryOutcome::Degraded`] and is **never** checkpointed,
/// so a resumed sweep re-attempts the point at full fidelity.
///
/// [`degrade_to_quick`]: RetryPolicy::degrade_to_quick
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total full-fidelity attempts per point, including the first
    /// (0 is treated as 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds. 0 disables
    /// waiting entirely.
    pub base_backoff_ms: u64,
    /// Ceiling on the exponential backoff (before jitter), in
    /// milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// After the last failed full-fidelity attempt, run once more at
    /// [`Fidelity::Quick`] to fill the hole with a degraded measurement.
    pub degrade_to_quick: bool,
}

impl RetryPolicy {
    /// No retries at all: one attempt, failures become holes.
    #[must_use]
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_seed: 0,
            degrade_to_quick: false,
        }
    }

    /// The historical `--retry-quick` behavior: no full-fidelity retries,
    /// one degraded quick-fidelity fill.
    #[must_use]
    pub const fn quick_once() -> Self {
        RetryPolicy {
            degrade_to_quick: true,
            ..Self::none()
        }
    }

    /// `max_attempts` full-fidelity attempts with the default backoff
    /// curve (50 ms base, 2 s ceiling) and no degraded fill.
    #[must_use]
    pub const fn retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter_seed: 0xBACC_0FF5,
            degrade_to_quick: false,
        }
    }

    /// Deterministic backoff (milliseconds) to wait *before* attempt
    /// `attempt` at the given grid coordinate. Attempt 1 (the original
    /// run) never waits; retries wait `min(base · 2^(attempt-2), max)`
    /// plus a jitter of up to a quarter of that, derived from
    /// `jitter_seed` and the coordinate.
    #[must_use]
    pub fn backoff_ms(&self, series_ix: usize, mpl: u32, rep: u32, attempt: u32) -> u64 {
        if attempt <= 1 || self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = (attempt - 2).min(20);
        let ceiling = self.max_backoff_ms.max(self.base_backoff_ms);
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(ceiling);
        let span = raw / 4;
        let jitter = if span == 0 {
            0
        } else {
            derive_seed(
                self.jitter_seed,
                &[
                    series_ix as u64 + 1,
                    u64::from(mpl),
                    u64::from(rep),
                    u64::from(attempt),
                ],
            ) % (span + 1)
        };
        raw + jitter
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Options for [`run_experiment`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Sweep fidelity.
    pub fidelity: Fidelity,
    /// Base seed; each grid point gets a distinct derived seed.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Independent replications per `(series, mpl)` point (0 is treated
    /// as 1). Replication `i` reuses one workload stream across all
    /// series — common random numbers.
    pub replications: u32,
    /// Attach the online invariant auditor (`ccsim-audit`) to every run.
    /// Violations do not abort the sweep; they are collected as summary
    /// lines in [`ExperimentResult::audit_failures`].
    pub audit: bool,
    /// Retry discipline for failed grid points (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Optional shared event allowance attached to every run of the
    /// sweep. The sweep service uses one pool per client so a tenant's
    /// total simulated work is bounded across jobs; `None` (the default)
    /// leaves runs bounded only by their per-run [`ccsim_core::RunBudget`].
    pub event_pool: Option<EventPool>,
    /// Engine worker threads *inside* each run (the speculative
    /// window-parallel mode, [`SimConfig::workers`]) — orthogonal to
    /// `threads`, which parallelizes across grid points. `0`/`1` run each
    /// point sequentially. Like `threads`, this cannot change any result
    /// (window mode is byte-identical), so it is not part of the
    /// checkpoint-manifest fingerprint.
    pub workers: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fidelity: Fidelity::Paper,
            base_seed: 0x0C55_1985,
            threads: 0,
            replications: 1,
            audit: false,
            retry: RetryPolicy::none(),
            event_pool: None,
            workers: 1,
        }
    }
}

/// One settled grid coordinate, streamed to [`SweepControl::progress`] the
/// moment the supervisor records it. `report` is `None` for a point that
/// failed without a fill; `replayed` marks entries restored from a resumed
/// checkpoint manifest rather than freshly simulated (fired before any new
/// run completes, so a subscriber always sees the full history in order).
#[derive(Debug, Clone, Copy)]
pub struct PointProgress<'a> {
    /// Index of the series in the experiment spec.
    pub series_ix: usize,
    /// Multiprogramming level of the point.
    pub mpl: u32,
    /// Replication index of the point.
    pub rep: u32,
    /// Restored from the checkpoint manifest (resume), not newly run.
    pub replayed: bool,
    /// The point's report; `None` when the point failed unfilled.
    pub report: Option<&'a Report>,
}

/// Supervisor controls orthogonal to [`RunOptions`]: checkpointing,
/// resumption, stop requests, and progress streaming.
/// `SweepControl::default()` runs a plain uncheckpointed sweep.
#[derive(Default)]
pub struct SweepControl<'a> {
    /// Journal completed runs to this manifest path (see
    /// [`crate::manifest`]).
    pub checkpoint: Option<&'a std::path::Path>,
    /// Skip runs already journaled in the checkpoint manifest (which must
    /// match this sweep's spec and options).
    pub resume: bool,
    /// Cooperative stop flag (e.g. set by a SIGINT handler). Checked
    /// between run completions; in-flight runs finish and are journaled,
    /// queued runs are abandoned, and the result is marked
    /// [`ExperimentResult::interrupted`].
    pub interrupt: Option<&'a AtomicBool>,
    /// Stop (as if interrupted) after this many newly journaled runs —
    /// the deterministic "kill after K points" hook used by resume tests.
    pub stop_after: Option<u64>,
    /// Called (on the supervisor thread) for every settled coordinate:
    /// replayed manifest entries first, then fresh completions and
    /// failures as they land. This is the streaming hook the sweep
    /// service uses to relay per-point results to clients.
    pub progress: Option<&'a (dyn Fn(PointProgress<'_>) + Sync)>,
    /// Deterministic fault injection (feature `chaos`): the targeted grid
    /// coordinate's first `fail_attempts` attempts fail.
    #[cfg(feature = "chaos")]
    pub chaos: Option<ChaosPoint>,
}

impl std::fmt::Debug for SweepControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("SweepControl");
        d.field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume)
            .field("interrupt", &self.interrupt)
            .field("stop_after", &self.stop_after)
            .field("progress", &self.progress.map(|_| "<callback>"));
        #[cfg(feature = "chaos")]
        d.field("chaos", &self.chaos);
        d.finish()
    }
}

/// A sweep-level failure: the supervisor itself (not an individual run)
/// could not proceed.
#[derive(Debug)]
pub enum SweepError {
    /// The worker pool failed outside the per-run isolation guard.
    Pool(String),
    /// The checkpoint manifest could not be opened, validated, or written.
    Manifest(ManifestError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Pool(m) => write!(f, "worker pool failure: {m}"),
            SweepError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Pool(_) => None,
            SweepError::Manifest(e) => Some(e),
        }
    }
}

impl From<ManifestError> for SweepError {
    fn from(e: ManifestError) -> Self {
        SweepError::Manifest(e)
    }
}

/// Domain tags keeping the workload and control seed families disjoint.
const WORKLOAD_DOMAIN: u64 = 1;
const CONTROL_DOMAIN: u64 = 2;

/// Workload-stream seed for one run. Deliberately independent of the
/// series: all algorithms at `(mpl, rep)` see the same transaction mix.
fn workload_seed(base: u64, mpl: u32, rep: u32) -> u64 {
    derive_seed(base, &[WORKLOAD_DOMAIN, u64::from(mpl), u64::from(rep)])
}

/// Control-stream seed for one run (restart delays etc.); series-specific.
fn control_seed(base: u64, series_ix: usize, mpl: u32, rep: u32) -> u64 {
    derive_seed(
        base,
        &[
            CONTROL_DOMAIN,
            series_ix as u64 + 1,
            u64::from(mpl),
            u64::from(rep),
        ],
    )
}

/// Chaos plan resolved from [`SweepControl`]; a no-op without the feature.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosPlan {
    #[cfg(feature = "chaos")]
    point: Option<ChaosPoint>,
}

impl ChaosPlan {
    fn panic_at(self, series_ix: usize, mpl: u32, rep: u32, attempt: u32) -> bool {
        #[cfg(feature = "chaos")]
        if let Some(p) = self.point {
            return p.kind == ChaosKind::Panic && p.targets(series_ix, mpl, rep, attempt);
        }
        let _ = (series_ix, mpl, rep, attempt);
        false
    }

    fn budget_cap_at(self, series_ix: usize, mpl: u32, rep: u32, attempt: u32) -> Option<u64> {
        #[cfg(feature = "chaos")]
        if let Some(p) = self.point {
            if p.kind == ChaosKind::BudgetExhaust && p.targets(series_ix, mpl, rep, attempt) {
                return Some(ChaosPoint::TINY_EVENT_BUDGET);
            }
        }
        let _ = (series_ix, mpl, rep, attempt);
        None
    }
}

/// What a worker reports back for one grid coordinate. A clean run has
/// `success` only; an unfilled failure has `failure` only; a recovered or
/// degraded retry carries both — the filling report plugs the hole while
/// the original failure stays on record. `journal` marks reports safe to
/// checkpoint: clean runs and full-fidelity recoveries, never degraded
/// quick-fidelity fills.
struct PointMsg {
    series_ix: usize,
    mpl: u32,
    rep: u32,
    success: Option<(Report, Vec<String>)>,
    failure: Option<(FailureKind, String, RetryOutcome)>,
    journal: bool,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Execute one run under panic isolation. `Err` carries the typed failure
/// for the hole record.
#[allow(clippy::too_many_arguments)]
fn run_point(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    metrics: MetricsConfig,
    series_ix: usize,
    mpl: u32,
    rep: u32,
    chaos: ChaosPlan,
    attempt: u32,
) -> Result<(Report, Vec<String>), (FailureKind, String)> {
    let series = &spec.series[series_ix];
    let mut cfg = spec
        .config(
            series,
            mpl,
            metrics,
            control_seed(opts.base_seed, series_ix, mpl, rep),
        )
        .with_workload_seed(workload_seed(opts.base_seed, mpl, rep));
    if let Some(pool) = &opts.event_pool {
        cfg = cfg.with_event_pool(pool.clone());
    }
    cfg = cfg.with_workers(opts.workers);
    if let Some(cap) = chaos.budget_cap_at(series_ix, mpl, rep, attempt) {
        cfg = cfg.with_budget(RunBudget::unlimited().with_max_events(cap));
    }
    let inject_panic = chaos.panic_at(series_ix, mpl, rep, attempt);
    let audit = opts.audit;
    let label = series.label.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        assert!(
            !inject_panic,
            "chaos: injected panic at {label}@{mpl} rep {rep}"
        );
        if audit {
            ccsim_audit::run_with_audit(cfg).map(|(report, audit)| {
                let failures = audit
                    .summaries()
                    .into_iter()
                    .map(|v| format!("{label}@{mpl} rep {rep}: {v}"))
                    .collect();
                (report, failures)
            })
        } else {
            run_sim(cfg).map(|r| (r, Vec::new()))
        }
    }));
    match outcome {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e @ RunError::BudgetExhausted { .. })) => Err((FailureKind::Budget, e.to_string())),
        Ok(Err(e @ RunError::InvalidConfig(_))) => Err((FailureKind::Config, e.to_string())),
        Err(payload) => Err((FailureKind::Panic, panic_message(payload.as_ref()))),
    }
}

/// Sleep `ms` milliseconds in short slices, returning early (false) if the
/// sweep is cancelled — a long backoff must not delay shutdown.
fn backoff_sleep(ms: u64, cancel: &AtomicBool) -> bool {
    const SLICE_MS: u64 = 25;
    let mut left = ms;
    while left > 0 {
        if cancel.load(Ordering::Relaxed) {
            return false;
        }
        let step = left.min(SLICE_MS);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
    }
    !cancel.load(Ordering::Relaxed)
}

/// Drive one grid coordinate through the full retry discipline: the
/// original run, up to `max_attempts - 1` full-fidelity retries with
/// deterministic backoff, then (optionally) one degraded quick-fidelity
/// fill. The first failure's kind and detail are what gets recorded — the
/// later attempts exist to fill the hole, not to re-diagnose it.
#[allow(clippy::too_many_arguments)]
fn attempt_point(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    metrics: MetricsConfig,
    si: usize,
    mpl: u32,
    rep: u32,
    chaos: ChaosPlan,
    cancel: &AtomicBool,
) -> PointMsg {
    let policy = opts.retry;
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 1u32;
    let mut first_failure: Option<(FailureKind, String)> = None;
    loop {
        match run_point(spec, opts, metrics, si, mpl, rep, chaos, attempt) {
            Ok(success) => {
                let failure = first_failure.map(|(kind, detail)| {
                    (kind, detail, RetryOutcome::Recovered { attempts: attempt })
                });
                return PointMsg {
                    series_ix: si,
                    mpl,
                    rep,
                    success: Some(success),
                    failure,
                    journal: true,
                };
            }
            Err((kind, detail)) => {
                if first_failure.is_none() {
                    first_failure = Some((kind, detail));
                }
                if attempt < max_attempts {
                    attempt += 1;
                    if backoff_sleep(policy.backoff_ms(si, mpl, rep, attempt), cancel) {
                        continue;
                    }
                    // Cancelled mid-backoff: give up on the point without
                    // burning more attempts.
                    attempt -= 1;
                }
                break;
            }
        }
    }
    let (kind, detail) = first_failure.expect("loop only breaks after a failure");
    if policy.degrade_to_quick && !cancel.load(Ordering::Relaxed) {
        attempt += 1;
        return match run_point(
            spec,
            opts,
            Fidelity::Quick.metrics(),
            si,
            mpl,
            rep,
            chaos,
            attempt,
        ) {
            Ok(success) => PointMsg {
                series_ix: si,
                mpl,
                rep,
                success: Some(success),
                failure: Some((kind, detail, RetryOutcome::Degraded { attempts: attempt })),
                journal: false,
            },
            Err(_) => PointMsg {
                series_ix: si,
                mpl,
                rep,
                success: None,
                failure: Some((kind, detail, RetryOutcome::Failed { attempts: attempt })),
                journal: false,
            },
        };
    }
    let retry = if attempt > 1 {
        RetryOutcome::Failed { attempts: attempt }
    } else {
        RetryOutcome::NotAttempted
    };
    PointMsg {
        series_ix: si,
        mpl,
        rep,
        success: None,
        failure: Some((kind, detail, retry)),
        journal: false,
    }
}

/// Run every replication of every point of `spec` and collect the results
/// (ordered by series, then mpl, regardless of completion order). Failed
/// runs become [`PointFailure`] holes; only a supervisor-level fault
/// (worker pool, checkpoint manifest) aborts the sweep.
///
/// # Errors
/// Returns [`SweepError`] on supervisor-level faults.
pub fn run_experiment(
    spec: &ExperimentSpec,
    opts: &RunOptions,
) -> Result<ExperimentResult, SweepError> {
    run_experiment_supervised(spec, opts, &SweepControl::default())
}

/// [`run_experiment`] with explicit supervisor controls: checkpointing,
/// resume, cooperative interruption, and (with feature `chaos`) fault
/// injection.
///
/// # Errors
/// Returns [`SweepError`] on supervisor-level faults — a manifest that
/// cannot be opened/validated/written, or a worker-pool failure outside
/// the per-run isolation guard.
pub fn run_experiment_supervised(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    ctl: &SweepControl<'_>,
) -> Result<ExperimentResult, SweepError> {
    let metrics = opts.fidelity.metrics();
    let reps = opts.replications.max(1);

    let mut manifest = match ctl.checkpoint {
        Some(path) => Some(Manifest::open(path, spec, opts, ctl.resume)?),
        None => None,
    };
    let done: HashSet<(usize, u32, u32)> = manifest
        .as_ref()
        .map(Manifest::completed)
        .unwrap_or_default();
    // Journaled runs enter the collection exactly as if they had just run.
    let mut collected: Vec<(usize, u32, u32, Report, Vec<String>)> = manifest
        .as_ref()
        .map(|m| {
            m.entries()
                .iter()
                .map(|e| (e.series_ix, e.mpl, e.rep, e.report.clone(), e.audit.clone()))
                .collect()
        })
        .unwrap_or_default();
    // Stream the replayed history first so a subscriber sees every settled
    // point in order, whether it was simulated this run or a prior one.
    if let Some(cb) = ctl.progress {
        for (si, mpl, rep, report, _) in &collected {
            cb(PointProgress {
                series_ix: *si,
                mpl: *mpl,
                rep: *rep,
                replayed: true,
                report: Some(report),
            });
        }
    }

    let jobs: Vec<(usize, u32, u32)> = spec
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            spec.mpls
                .iter()
                .flat_map(move |&mpl| (0..reps).map(move |rep| (si, mpl, rep)))
        })
        .filter(|coord| !done.contains(coord))
        .collect();

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(jobs.len().max(1));

    let chaos = ChaosPlan {
        #[cfg(feature = "chaos")]
        point: ctl.chaos,
    };

    let (job_tx, job_rx) = channel::unbounded::<(usize, u32, u32)>();
    let (res_tx, res_rx) = channel::unbounded::<PointMsg>();
    let mut interrupted = false;
    // An interrupt raised before the sweep starts abandons the whole queue
    // (checked here, before workers exist, so no run can slip through).
    if ctl.interrupt.is_some_and(|f| f.load(Ordering::Relaxed)) {
        interrupted = true;
    } else {
        for job in &jobs {
            job_tx.send(*job).expect("queueing jobs");
        }
    }
    drop(job_tx);

    let cancel = AtomicBool::new(false);
    let mut failures_raw: Vec<(usize, u32, u32, FailureKind, String, RetryOutcome)> = Vec::new();
    let mut manifest_err: Option<ManifestError> = None;
    let mut newly_completed: u64 = 0;

    let pool = crossbeam::scope(|s| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let cancel = &cancel;
            let spec_ref = &*spec;
            s.spawn(move |_| {
                while !cancel.load(Ordering::Relaxed) {
                    let Ok((si, mpl, rep)) = job_rx.recv() else {
                        break;
                    };
                    let msg = attempt_point(spec_ref, opts, metrics, si, mpl, rep, chaos, cancel);
                    if res_tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);

        // Supervisor drain loop (runs on the calling thread): journal
        // completions, record failures, honor stop requests. A stop lets
        // in-flight runs finish (and journals them) but abandons the
        // queue.
        let stop = |interrupted: &mut bool| {
            *interrupted = true;
            cancel.store(true, Ordering::Relaxed);
            while job_rx.try_recv().is_some() {}
        };
        while let Ok(msg) = res_rx.recv() {
            if let Some((report, audit)) = msg.success {
                // Clean runs and full-fidelity recoveries are journaled
                // and count toward stop_after; degraded fills are neither.
                if msg.journal {
                    if let Some(m) = manifest.as_mut() {
                        if let Err(e) = m.record(ManifestEntry {
                            series_ix: msg.series_ix,
                            mpl: msg.mpl,
                            rep: msg.rep,
                            audit: audit.clone(),
                            report: report.clone(),
                        }) {
                            if manifest_err.is_none() {
                                manifest_err = Some(ManifestError::Io(e));
                                stop(&mut interrupted);
                            }
                        }
                    }
                    newly_completed += 1;
                }
                if let Some(cb) = ctl.progress {
                    cb(PointProgress {
                        series_ix: msg.series_ix,
                        mpl: msg.mpl,
                        rep: msg.rep,
                        replayed: false,
                        report: Some(&report),
                    });
                }
                collected.push((msg.series_ix, msg.mpl, msg.rep, report, audit));
            } else if let Some(cb) = ctl.progress {
                cb(PointProgress {
                    series_ix: msg.series_ix,
                    mpl: msg.mpl,
                    rep: msg.rep,
                    replayed: false,
                    report: None,
                });
            }
            if let Some((kind, detail, retry)) = msg.failure {
                failures_raw.push((msg.series_ix, msg.mpl, msg.rep, kind, detail, retry));
            }
            let stop_hit = ctl.stop_after.is_some_and(|k| newly_completed >= k);
            let intr_hit = ctl.interrupt.is_some_and(|f| f.load(Ordering::Relaxed));
            if (stop_hit || intr_hit) && !cancel.load(Ordering::Relaxed) {
                stop(&mut interrupted);
            }
        }
    });
    if pool.is_err() {
        return Err(SweepError::Pool(
            "a worker thread died outside the per-run isolation guard".to_string(),
        ));
    }
    if let Some(e) = manifest_err {
        return Err(SweepError::Manifest(e));
    }

    collected.sort_by_key(|(si, mpl, rep, _, _)| (*si, *mpl, *rep));
    let audit_failures: Vec<String> = collected
        .iter()
        .flat_map(|(_, _, _, _, f)| f.iter().cloned())
        .collect();
    let points = collected
        .chunk_by(|a, b| a.0 == b.0 && a.1 == b.1)
        .map(|chunk| {
            let (si, mpl, _, _, _) = chunk[0];
            let replicates: Vec<Report> = chunk.iter().map(|(_, _, _, r, _)| r.clone()).collect();
            DataPoint {
                series: spec.series[si].label.clone(),
                mpl,
                report: aggregate_reports(&replicates, metrics.confidence)
                    .expect("chunks are non-empty by construction"),
                replicates,
            }
        })
        .collect();
    failures_raw.sort_by_key(|a| (a.0, a.1, a.2));
    let failures = failures_raw
        .into_iter()
        .map(|(si, mpl, rep, kind, detail, retry)| PointFailure {
            series: spec.series[si].label.clone(),
            mpl,
            rep,
            kind,
            detail,
            retry,
        })
        .collect();
    Ok(ExperimentResult {
        spec: spec.clone(),
        points,
        audit_failures,
        failures,
        interrupted,
        warnings: manifest
            .as_ref()
            .map(|m| m.warnings().to_vec())
            .unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            fidelity: Fidelity::Quick,
            base_seed: 42,
            threads: 0,
            replications: 1,
            audit: false,
            retry: RetryPolicy::none(),
            event_pool: None,
            workers: 1,
        }
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = catalog::exp3();
        spec.mpls = vec![5, 25];
        spec
    }

    #[test]
    fn runs_full_grid_in_order() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        assert_eq!(result.points.len(), spec.num_runs());
        assert!(result.is_clean());
        let labels: Vec<&str> = result.points.iter().map(|p| p.series.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "blocking",
                "blocking",
                "immediate-restart",
                "immediate-restart",
                "optimistic",
                "optimistic"
            ]
        );
        assert_eq!(result.points[0].mpl, 5);
        assert_eq!(result.points[1].mpl, 25);
        for p in &result.points {
            assert!(p.report.commits > 0, "{}@{} ran nothing", p.series, p.mpl);
            assert_eq!(p.replicates.len(), 1);
            assert_eq!(p.replicates[0], p.report);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let spec = tiny_spec();
        let par = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        let ser = run_experiment(
            &spec,
            &RunOptions {
                threads: 1,
                ..tiny_opts()
            },
        )
        .expect("sweep completes");
        for (a, b) in par.points.iter().zip(ser.points.iter()) {
            assert_eq!(a.series, b.series);
            assert_eq!(a.mpl, b.mpl);
            assert_eq!(a.report, b.report, "{}@{} differs", a.series, a.mpl);
        }
    }

    #[test]
    fn replications_aggregate_per_point() {
        let mut spec = tiny_spec();
        spec.mpls = vec![5];
        let result = run_experiment(
            &spec,
            &RunOptions {
                replications: 2,
                ..tiny_opts()
            },
        )
        .expect("sweep completes");
        assert_eq!(result.points.len(), 3);
        assert_eq!(result.replications(), 2);
        for p in &result.points {
            assert_eq!(p.replicates.len(), 2);
            assert_ne!(
                p.replicates[0], p.replicates[1],
                "{}@{}: replications should differ",
                p.series, p.mpl
            );
            let mean = (p.replicates[0].throughput.mean + p.replicates[1].throughput.mean) / 2.0;
            assert!((p.report.throughput.mean - mean).abs() < 1e-12);
            assert_eq!(
                p.report.commits,
                p.replicates[0].commits + p.replicates[1].commits
            );
        }
    }

    #[test]
    fn audited_sweep_is_clean_and_identical_to_unaudited() {
        let mut spec = tiny_spec();
        spec.mpls = vec![5];
        let plain = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        let audited = run_experiment(
            &spec,
            &RunOptions {
                audit: true,
                ..tiny_opts()
            },
        )
        .expect("sweep completes");
        assert!(
            audited.audit_failures.is_empty(),
            "audit violations: {:?}",
            audited.audit_failures
        );
        assert!(plain.audit_failures.is_empty());
        // Observing the run must not perturb it.
        for (a, b) in plain.points.iter().zip(audited.points.iter()) {
            assert_eq!(
                a.report, b.report,
                "{}@{} differs under audit",
                a.series, a.mpl
            );
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        // Workload seeds ignore the series (common random numbers)...
        assert_eq!(workload_seed(1, 5, 0), workload_seed(1, 5, 0));
        assert_ne!(workload_seed(1, 5, 0), workload_seed(1, 5, 1));
        assert_ne!(workload_seed(1, 5, 0), workload_seed(1, 10, 0));
        // ...while control seeds are series-specific and never collide
        // with workload seeds.
        assert_ne!(control_seed(1, 0, 5, 0), control_seed(1, 1, 5, 0));
        assert_ne!(control_seed(1, 0, 5, 0), control_seed(1, 0, 5, 1));
        assert_ne!(control_seed(1, 0, 5, 0), workload_seed(1, 5, 0));
    }

    #[test]
    fn result_accessors() {
        let spec = tiny_spec();
        let result = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        let pts = result.series_points("blocking");
        assert_eq!(pts.len(), 2);
        assert!(pts[0].mpl < pts[1].mpl);
        let peak = result.peak_throughput("blocking");
        assert!(peak > 0.0);
        assert!(result.throughput_at("blocking", 5).is_some());
        assert!(result.throughput_at("blocking", 999).is_none());
    }

    #[test]
    fn invalid_config_becomes_a_typed_hole_not_a_crash() {
        let mut spec = tiny_spec();
        spec.mpls = vec![0, 5]; // mpl 0 fails validation in every series
        let result = run_experiment(&spec, &tiny_opts()).expect("sweep completes");
        assert!(!result.is_clean());
        assert_eq!(result.failures.len(), 3, "one config failure per series");
        for f in &result.failures {
            assert_eq!(f.kind, FailureKind::Config);
            assert_eq!(f.mpl, 0);
            assert_eq!(f.retry, RetryOutcome::NotAttempted);
        }
        // The valid mpl still ran everywhere.
        assert_eq!(result.points.len(), 3);
        assert!(result.points.iter().all(|p| p.mpl == 5));
        assert_eq!(result.holes().len(), 3);
    }

    #[test]
    fn stop_after_marks_result_interrupted() {
        let spec = tiny_spec();
        let ctl = SweepControl {
            stop_after: Some(2),
            ..SweepControl::default()
        };
        let result = run_experiment_supervised(
            &spec,
            &RunOptions {
                threads: 1,
                ..tiny_opts()
            },
            &ctl,
        )
        .expect("sweep stops cleanly");
        assert!(result.interrupted);
        assert!(result.points.len() < spec.num_runs());
        assert!(!result.points.is_empty());
    }

    #[test]
    fn progress_streams_every_settled_point() {
        use std::sync::Mutex;
        type Seen = (usize, u32, u32, bool, bool);
        let spec = tiny_spec();
        let seen: Mutex<Vec<Seen>> = Mutex::new(Vec::new());
        let cb = |p: PointProgress<'_>| {
            seen.lock()
                .unwrap()
                .push((p.series_ix, p.mpl, p.rep, p.replayed, p.report.is_some()));
        };
        let ctl = SweepControl {
            progress: Some(&cb),
            ..SweepControl::default()
        };
        let result = run_experiment_supervised(&spec, &tiny_opts(), &ctl).expect("sweep completes");
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), spec.num_runs());
        assert!(seen.iter().all(|&(.., replayed, ok)| !replayed && ok));
        assert_eq!(result.points.len(), spec.num_runs());
    }

    #[test]
    fn backoff_schedule_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 100,
            max_backoff_ms: 800,
            jitter_seed: 7,
            degrade_to_quick: false,
        };
        // Attempt 1 (the original run) never waits.
        assert_eq!(policy.backoff_ms(0, 50, 0, 1), 0);
        // Identical inputs give identical waits...
        assert_eq!(
            policy.backoff_ms(0, 50, 0, 2),
            policy.backoff_ms(0, 50, 0, 2)
        );
        // ...and different coordinates de-synchronize via jitter (the
        // probability all three agree by chance is ~(1/26)^2).
        let waits: Vec<u64> = [(0usize, 0u32), (1, 0), (0, 1)]
            .iter()
            .map(|&(si, rep)| policy.backoff_ms(si, 50, rep, 2))
            .collect();
        assert!(
            waits[0] != waits[1] || waits[0] != waits[2],
            "jitter failed to separate coordinates: {waits:?}"
        );
        for attempt in 2..=8 {
            let raw_exp = 100u64 << (attempt - 2);
            let raw = raw_exp.min(800);
            let w = policy.backoff_ms(2, 10, 3, attempt);
            assert!(
                w >= raw && w <= raw + raw / 4,
                "attempt {attempt}: wait {w} outside [{raw}, {}]",
                raw + raw / 4
            );
        }
        // Zero base disables waiting entirely.
        assert_eq!(RetryPolicy::none().backoff_ms(0, 50, 0, 5), 0);
        // quick_once reproduces the historical one-shot degraded retry.
        let q = RetryPolicy::quick_once();
        assert_eq!(q.max_attempts, 1);
        assert!(q.degrade_to_quick);
    }

    #[test]
    fn preset_interrupt_flag_stops_before_any_run() {
        let spec = tiny_spec();
        let flag = AtomicBool::new(true);
        let ctl = SweepControl {
            interrupt: Some(&flag),
            ..SweepControl::default()
        };
        let result =
            run_experiment_supervised(&spec, &tiny_opts(), &ctl).expect("sweep stops cleanly");
        assert!(result.interrupted);
        assert!(result.points.is_empty());
    }
}
