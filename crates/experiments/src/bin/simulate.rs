//! `simulate` — run one configuration of the model and print the full
//! report (the exploratory companion to `repro`'s fixed figure catalog).
//!
//! ```text
//! simulate --algo blocking --mpl 25 --cpus 1 --disks 2
//! simulate --algo optimistic --mpl 200 --infinite --db 1000 --check-serializable
//!
//! flags (defaults = the paper's Table 2 baseline):
//!   --algo <name>           blocking | immediate-restart | optimistic |
//!                           wait-die | wound-wait | no-waiting |
//!                           static-locking | no-cc
//!   --mpl <n>               multiprogramming level
//!   --db <n>                database size in pages
//!   --terminals <n>         number of terminals
//!   --write-prob <p>        probability a read is also written
//!   --min-size/--max-size   readset size range
//!   --cpus <n> --disks <n>  physical resources
//!   --infinite              infinite resources
//!   --ext-think <secs> --int-think <secs>
//!   --seed <u64>            master seed
//!   --workers <n>           engine worker threads (speculative window-
//!                           parallel mode; 0/1 = sequential). Reports are
//!                           byte-identical at any worker count
//!   --reps <n>              independent replications (default 1); prints
//!                           per-replication throughput and the Student-t
//!                           interval across replication means
//!   --batches <n> --batch-secs <n> --warmup <n>
//!   --max-events <n>        run-budget event ceiling (0 = unlimited;
//!                           default 2000000000); an exhausted budget is a
//!                           structured error, not a hang
//!   --out <path>            also write the report to <path> (atomic
//!                           temp-then-rename write)
//!   --check-serializable    record the history and run the checker
//!   --perf                  also print engine throughput (events/sec) and
//!                           peak calendar / lock-table occupancy
//!   --profile               also print the per-stage cycle breakdown from
//!                           the in-engine stage profiler (requires a build
//!                           with `--features profile`; implies the --perf
//!                           lines)
//!   --audit                 attach the online invariant auditor; any
//!                           violation is printed with its event context
//!                           and fails the command
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use ccsim_core::{
    check_conflict_serializable, run, run_collecting, run_with_history, run_with_perf, CcAlgorithm,
    Confidence, MetricsConfig, Params, PerfStats, Report, ResourceSpec, RunBudget, RunError,
    SimConfig, STAGE_PROFILER_COMPILED,
};
use ccsim_des::{derive_seed, SimDuration};
use ccsim_experiments::{aggregate_reports, write_atomic};
use ccsim_stats::Replications;

fn algo_by_name(name: &str) -> Option<CcAlgorithm> {
    CcAlgorithm::ALL
        .into_iter()
        .chain([CcAlgorithm::NoCc])
        .find(|a| a.label() == name)
}

struct Cli {
    cfg: SimConfig,
    check_serializable: bool,
    audit: bool,
    perf: bool,
    profile: bool,
    reps: u32,
    out: Option<PathBuf>,
}

fn parse() -> Result<Cli, String> {
    let mut algo = CcAlgorithm::Blocking;
    let mut params = Params::paper_baseline();
    let mut metrics = MetricsConfig::paper();
    let mut budget = RunBudget::default();
    let mut seed = 0xCC85_u64;
    let mut workers = 1_u32;
    let mut reps = 1_u32;
    let mut check_serializable = false;
    let mut audit = false;
    let mut perf = false;
    let mut profile = false;
    let mut out = None;
    let mut cpus: Option<u32> = None;
    let mut disks: Option<u32> = None;
    let mut infinite = false;

    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--algo" => {
                let v = next_val(&mut args, "--algo")?;
                algo = algo_by_name(&v).ok_or(format!("unknown algorithm {v:?}"))?;
            }
            "--mpl" => params.mpl = parse_num(&next_val(&mut args, "--mpl")?)?,
            "--db" => params.db_size = parse_num(&next_val(&mut args, "--db")?)?,
            "--terminals" => params.num_terms = parse_num(&next_val(&mut args, "--terminals")?)?,
            "--write-prob" => {
                params.write_prob = parse_num(&next_val(&mut args, "--write-prob")?)?;
            }
            "--min-size" => params.min_size = parse_num(&next_val(&mut args, "--min-size")?)?,
            "--max-size" => params.max_size = parse_num(&next_val(&mut args, "--max-size")?)?,
            "--cpus" => cpus = Some(parse_num(&next_val(&mut args, "--cpus")?)?),
            "--disks" => disks = Some(parse_num(&next_val(&mut args, "--disks")?)?),
            "--infinite" => infinite = true,
            "--ext-think" => {
                params.ext_think_time =
                    SimDuration::from_secs_f64(parse_num(&next_val(&mut args, "--ext-think")?)?);
            }
            "--int-think" => {
                params.int_think_time =
                    SimDuration::from_secs_f64(parse_num(&next_val(&mut args, "--int-think")?)?);
            }
            "--seed" => seed = parse_num(&next_val(&mut args, "--seed")?)?,
            "--workers" => workers = parse_num(&next_val(&mut args, "--workers")?)?,
            "--reps" => {
                reps = parse_num(&next_val(&mut args, "--reps")?)?;
                if reps == 0 {
                    return Err("--reps must be at least 1".to_string());
                }
            }
            "--batches" => metrics.batches = parse_num(&next_val(&mut args, "--batches")?)?,
            "--warmup" => {
                metrics.warmup_batches = parse_num(&next_val(&mut args, "--warmup")?)?;
            }
            "--batch-secs" => {
                metrics.batch_time =
                    SimDuration::from_secs(parse_num(&next_val(&mut args, "--batch-secs")?)?);
            }
            "--max-events" => {
                let cap: u64 = parse_num(&next_val(&mut args, "--max-events")?)?;
                budget.max_events = (cap > 0).then_some(cap);
            }
            "--out" => out = Some(PathBuf::from(next_val(&mut args, "--out")?)),
            "--check-serializable" => check_serializable = true,
            "--perf" => perf = true,
            "--profile" => profile = true,
            "--audit" => audit = true,
            "--quick" => metrics = MetricsConfig::quick(),
            other => return Err(format!("unknown flag {other} (see --help in the source)")),
        }
    }
    if infinite {
        params.resources = ResourceSpec::Infinite;
    } else if cpus.is_some() || disks.is_some() {
        params.resources = ResourceSpec::Physical {
            num_cpus: cpus.unwrap_or(1),
            num_disks: disks.unwrap_or(2),
        };
    }
    let cfg = SimConfig::new(algo)
        .with_params(params)
        .with_metrics(metrics)
        .with_budget(budget)
        .with_seed(seed)
        .with_workers(workers);
    cfg.validate().map_err(|e| e.to_string())?;
    if check_serializable && reps > 1 {
        return Err("--check-serializable works on a single run; use --reps 1".to_string());
    }
    if audit && check_serializable {
        return Err("--audit and --check-serializable cannot be combined".to_string());
    }
    if audit && reps > 1 {
        return Err("--audit works on a single run; use --reps 1".to_string());
    }
    if perf && (audit || check_serializable || reps > 1) {
        return Err(
            "--perf measures the bare engine; drop --audit/--check-serializable/--reps".to_string(),
        );
    }
    if profile && (audit || check_serializable || reps > 1) {
        return Err(
            "--profile measures the bare engine; drop --audit/--check-serializable/--reps"
                .to_string(),
        );
    }
    if profile && !STAGE_PROFILER_COMPILED {
        return Err(
            "the stage profiler is not compiled into this binary; rebuild with \
             `cargo run -p ccsim-experiments --features profile --bin simulate`"
                .to_string(),
        );
    }
    Ok(Cli {
        cfg,
        check_serializable,
        audit,
        perf,
        profile,
        reps,
        out,
    })
}

fn parse_num<T: std::str::FromStr>(v: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| format!("bad value {v:?}: {e}"))
}

fn render_report(cfg: &SimConfig, r: &Report) -> String {
    let mut s = String::with_capacity(1024);
    let p = &cfg.params;
    let _ = writeln!(s, "configuration");
    let _ = writeln!(s, "  algorithm        {}", cfg.algorithm.label());
    let _ = writeln!(
        s,
        "  database         {} pages, readset U[{}, {}], write_prob {}",
        p.db_size, p.min_size, p.max_size, p.write_prob
    );
    match p.resources {
        ResourceSpec::Infinite => {
            let _ = writeln!(s, "  resources        infinite");
        }
        ResourceSpec::Physical {
            num_cpus,
            num_disks,
        } => {
            let _ = writeln!(
                s,
                "  resources        {num_cpus} CPU(s), {num_disks} disk(s)"
            );
        }
    }
    let _ = writeln!(
        s,
        "  population       {} terminals, mpl {}, think {:.1}s ext / {:.1}s int",
        p.num_terms,
        p.mpl,
        p.ext_think_time.as_secs_f64(),
        p.int_think_time.as_secs_f64()
    );
    let conf = match cfg.metrics.confidence {
        Confidence::Ninety => "90%",
        Confidence::NinetyFive => "95%",
    };
    let _ = writeln!(
        s,
        "  measurement      {} batches x {:.0}s after {} warmup, {} CIs",
        cfg.metrics.batches,
        cfg.metrics.batch_time.as_secs_f64(),
        cfg.metrics.warmup_batches,
        conf
    );
    let _ = writeln!(s);
    let _ = writeln!(s, "results");
    let _ = writeln!(
        s,
        "  throughput       {:.3} ± {:.3} tps",
        r.throughput.mean, r.throughput.half_width
    );
    let _ = writeln!(
        s,
        "  response time    mean {:.2}s  sd {:.2}s  p50 {:.2}s  p95 {:.2}s  p99 {:.2}s  max {:.2}s",
        r.response_time_mean,
        r.response_time_std,
        r.response_time_p50,
        r.response_time_p95,
        r.response_time_p99,
        r.response_time_max
    );
    let _ = writeln!(
        s,
        "  conflicts        {:.3} blocks/commit, {:.3} restarts/commit ({} deadlocks)",
        r.block_ratio, r.restart_ratio, r.deadlocks
    );
    let _ = writeln!(
        s,
        "  disk utilization {:.1}% total / {:.1}% useful",
        100.0 * r.disk_util_total.mean,
        100.0 * r.disk_util_useful.mean
    );
    let _ = writeln!(
        s,
        "  cpu utilization  {:.1}% total / {:.1}% useful",
        100.0 * r.cpu_util_total.mean,
        100.0 * r.cpu_util_useful.mean
    );
    let _ = writeln!(
        s,
        "  population       avg {:.1} active of mpl {}; {} commits observed",
        r.avg_active, p.mpl, r.commits
    );
    let _ = writeln!(
        s,
        "  diagnostics      batch lag-1 autocorrelation {:.3}",
        r.throughput_lag1
    );
    s
}

/// Append the `--perf` engine-counter lines to a rendered report.
fn append_perf(text: &mut String, perf: &PerfStats) {
    let _ = writeln!(
        text,
        "  engine perf      {} events in {:.3}s wall = {:.0} events/sec",
        perf.events,
        perf.wall.as_secs_f64(),
        perf.events_per_sec()
    );
    let _ = writeln!(
        text,
        "  peak occupancy   {} calendar events, {} locks in table",
        perf.peak_calendar, perf.peak_lock_table
    );
    let cs = perf.calendar;
    let _ = writeln!(
        text,
        "  calendar ops     {} schedules, {} pops, {} cancels",
        cs.schedules, cs.pops, cs.cancels
    );
    let _ = writeln!(
        text,
        "  near-lane split  {} lane / {} heap schedules, {} lane / {} heap pops",
        cs.lane_schedules, cs.heap_schedules, cs.lane_pops, cs.heap_pops
    );
    let _ = writeln!(
        text,
        "  elided hops      {} cpu, {} disk (uncontended fast path)",
        perf.elided_cpu_hops, perf.elided_disk_hops
    );
    if let Some(p) = &perf.parallel {
        let _ = writeln!(
            text,
            "  window mode      {} workers, {} windows, {} planned events ({} overlay)",
            p.workers, p.windows, p.planned, p.overlay_events
        );
        let _ = writeln!(
            text,
            "  speculation      {} speculated: {} applied, {} rolled back + replayed \
             ({:.1}% rollback), {} chunk conflicts, {} refills installed",
            p.speculated,
            p.applied,
            p.rolled_back,
            100.0 * p.rollback_ratio(),
            p.conflicts,
            p.refills_installed
        );
        let busy: Vec<String> = (0..p.workers.min(ccsim_core::MAX_LANES as u32) as usize)
            .map(|lane| format!("{:.0}%", 100.0 * p.busy_fraction(lane)))
            .collect();
        let _ = writeln!(
            text,
            "  lane busy        [{}] of loop wall {:.3}s",
            busy.join(" "),
            p.loop_wall_us as f64 / 1e6
        );
    }
}

/// Report a failed run and exit: exit code 2 for configuration errors
/// (caller mistake), 1 for budget exhaustion (the run itself failed).
fn exit_run_error(e: &RunError) -> ! {
    eprintln!("error: {e}");
    match e {
        RunError::InvalidConfig(_) => std::process::exit(2),
        RunError::BudgetExhausted { .. } => {
            eprintln!(
                "hint: raise the ceiling with --max-events <n> (0 = unlimited) \
                 or shorten the run (--quick, --batches)"
            );
            std::process::exit(1);
        }
    }
}

fn emit(cli: &Cli, text: &str) {
    print!("{text}");
    if let Some(path) = &cli.out {
        if let Err(e) = write_atomic(path, text.as_bytes()) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let cli = match parse() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if cli.audit {
        let (report, audit) = match ccsim_audit::run_with_audit(cli.cfg.clone()) {
            Ok(ra) => ra,
            Err(e) => exit_run_error(&e),
        };
        let mut text = render_report(&cli.cfg, &report);
        if audit.is_clean() {
            let _ = writeln!(
                text,
                "  invariant audit  clean ({} events checked)",
                audit.events_seen
            );
            emit(&cli, &text);
        } else {
            let _ = writeln!(text);
            let _ = writeln!(text, "{}", audit.render());
            emit(&cli, &text);
            std::process::exit(1);
        }
    } else if cli.check_serializable {
        let (report, history) = match run_with_history(cli.cfg.clone()) {
            Ok(rh) => rh,
            Err(e) => exit_run_error(&e),
        };
        let mut text = render_report(&cli.cfg, &report);
        match check_conflict_serializable(&history) {
            Ok(order) => {
                let _ = writeln!(
                    text,
                    "  serializability  OK ({} committed transactions, witness order found)",
                    order.len()
                );
                emit(&cli, &text);
            }
            Err(cycle) => {
                let _ = writeln!(text, "  serializability  VIOLATED: {cycle}");
                emit(&cli, &text);
                std::process::exit(1);
            }
        }
    } else if cli.reps > 1 {
        // Replication r's seeds derive from the master seed and r alone, so
        // the sequence is reproducible and extending --reps only appends
        // runs. The workload/control split matches the experiment runner's.
        let replicates: Vec<Report> = (0..cli.reps)
            .map(|r| {
                let cfg = cli
                    .cfg
                    .clone()
                    .with_seed(derive_seed(cli.cfg.seed, &[2, u64::from(r)]))
                    .with_workload_seed(derive_seed(cli.cfg.seed, &[1, u64::from(r)]));
                match run(cfg) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("replication {r} failed:");
                        exit_run_error(&e);
                    }
                }
            })
            .collect();
        let agg = aggregate_reports(&replicates, cli.cfg.metrics.confidence)
            .expect("at least one replication ran");
        let mut text = render_report(&cli.cfg, &agg);
        let _ = writeln!(text);
        let _ = writeln!(text, "replications");
        let mut est = Replications::new(cli.cfg.metrics.confidence);
        for (i, r) in replicates.iter().enumerate() {
            let _ = writeln!(
                text,
                "  rep {:<3} throughput {:.3} ± {:.3} tps (batch means)",
                i, r.throughput.mean, r.throughput.half_width
            );
            est.push(r.throughput.mean);
        }
        let e = est.estimate();
        let _ = writeln!(
            text,
            "  across {} replications: {:.3} ± {:.3} tps (Student-t over replication means)",
            cli.reps, e.mean, e.half_width
        );
        emit(&cli, &text);
    } else if cli.profile {
        // Collecting run: same engine loop, plus the per-stage cycle
        // counters the `profile` feature compiles in.
        let out = match run_collecting(cli.cfg.clone()) {
            Ok(o) => o,
            Err(e) => exit_run_error(&e),
        };
        let mut text = render_report(&cli.cfg, &out.report);
        append_perf(&mut text, &out.perf);
        let _ = writeln!(text);
        match &out.stages {
            Some(p) => text.push_str(&p.render(out.perf.wall)),
            None => {
                let _ = writeln!(text, "  stage profile    unavailable (no stages recorded)");
            }
        }
        emit(&cli, &text);
    } else if cli.perf {
        let (report, perf) = match run_with_perf(cli.cfg.clone()) {
            Ok(rp) => rp,
            Err(e) => exit_run_error(&e),
        };
        let mut text = render_report(&cli.cfg, &report);
        append_perf(&mut text, &perf);
        emit(&cli, &text);
    } else {
        let report = match run(cli.cfg.clone()) {
            Ok(r) => r,
            Err(e) => exit_run_error(&e),
        };
        emit(&cli, &render_report(&cli.cfg, &report));
    }
}
