//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                    show the experiment catalog
//! repro <id|figN|all> [flags]   run experiments
//!
//! flags:
//!   --list          show the experiment catalog and exit
//!   --quick         smoke fidelity (short batches) instead of paper fidelity
//!   --audit         attach the online invariant auditor to every run; any
//!                   violation fails the command
//!   --seed <u64>    base seed (default 0x0C551985)
//!   --reps <n>      independent replications per point (default 1); means
//!                   and 90% CIs are then taken across replications, with
//!                   common random numbers pairing the algorithms
//!   --threads <n>   worker threads (default: all cores)
//!   --out <dir>     also write <dir>/<id>.json and <dir>/<id>.txt, and
//!                   journal completed runs to <dir>/<id>.manifest.jsonl
//!   --resume        skip runs already journaled in the checkpoint manifest
//!                   (requires --out); the final output is byte-identical
//!                   to an uninterrupted run. A final manifest line cut
//!                   short by a crash is discarded with a warning and its
//!                   run re-executed
//!   --retries <n>   attempt each grid point up to n times at full fidelity
//!                   with deterministic exponential backoff; a recovery is
//!                   journaled and does not fail the command's measurements
//!   --backoff-ms <ms>  base backoff before the first retry (default 50;
//!                   doubles per attempt, capped at 2000, plus jitter)
//!   --retry-quick   after full-fidelity attempts are exhausted, retry once
//!                   at quick fidelity so the hole carries a degraded
//!                   measurement (the failure stays on record and still
//!                   fails the command)
//!   --md <path>     write a combined markdown results appendix
//!   --chart         print an ASCII throughput chart per experiment
//!   --submit <addr> do not run locally: submit each experiment to a
//!                   running `ccsim-serve` daemon at HOST:PORT and relay
//!                   its event stream (ack, per-point progress, done) to
//!                   stdout. Local-output flags (--out, --md, --chart,
//!                   --resume, --threads) do not apply; the daemon owns
//!                   checkpointing, retries, and the result archive
//! ```
//!
//! A failed run (panic, budget exhaustion, invalid configuration) never
//! aborts the sweep: it is reported as an explicit hole and the command
//! exits non-zero. SIGINT and SIGTERM both request a cooperative shutdown:
//! in-flight runs finish and are journaled, then the command exits 130
//! with a `--resume` hint — so a service manager's stop signal checkpoints
//! exactly like a ctrl-C.

use std::path::PathBuf;
use std::time::Instant;

use ccsim_experiments::{
    catalog, checks, json, md, report, run_experiment_supervised, write_atomic, ExperimentSpec,
    Fidelity, RetryPolicy, RunOptions, SweepControl,
};

/// Cooperative shutdown flag, set by SIGINT *and* SIGTERM and installed
/// via the raw C `signal` interface so no extra dependency is needed. The
/// handlers only flip an atomic; the supervisor notices between run
/// completions.
mod shutdown {
    use std::sync::atomic::AtomicBool;

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    pub fn install() {
        use std::sync::atomic::Ordering;
        extern "C" fn on_signal(_sig: i32) {
            INTERRUPTED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// Client mode for a `ccsim-serve` daemon: build the wire spec, submit
/// it, and relay the event stream. Lives here (not in `ccsim-serve`)
/// so `repro --submit` needs nothing beyond the standard library — the
/// protocol is plain line-delimited JSON over TCP.
mod service {
    use std::fmt::Write as _;
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::TcpStream;

    use ccsim_experiments::{json, RunOptions};

    /// The `submit` request line for one experiment under these options.
    pub fn submit_request(spec_id: &str, opts: &RunOptions) -> String {
        let mut out =
            String::from("{\"op\":\"submit\",\"spec\":{\"client\":\"repro\",\"experiment\":");
        json::escape(spec_id, &mut out);
        let _ = write!(
            out,
            ",\"fidelity\":\"{}\",\"seed\":{},\"replications\":{},\"audit\":{}}}}}",
            opts.fidelity.token(),
            opts.base_seed,
            opts.replications.max(1),
            opts.audit
        );
        out
    }

    /// Send one request and print every event line; returns `true` when
    /// the stream ended with a `done` event.
    pub fn relay(addr: &str, request: &str) -> Result<bool, String> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("cannot send request: {e}"))?;
        let reader = BufReader::new(stream);
        let mut completed = false;
        for line in reader.lines() {
            let line = line.map_err(|e| format!("connection lost: {e}"))?;
            println!("{line}");
            completed = line.starts_with("{\"event\":\"done\"");
        }
        Ok(completed)
    }
}

struct Cli {
    targets: Vec<String>,
    opts: RunOptions,
    out: Option<PathBuf>,
    md_out: Option<PathBuf>,
    chart: bool,
    resume: bool,
    submit: Option<String>,
}

fn parse_args(raw: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut targets = Vec::new();
    let mut opts = RunOptions::default();
    let mut out = None;
    let mut md_out = None;
    let mut chart = false;
    let mut resume = false;
    let mut submit = None;
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.fidelity = Fidelity::Quick,
            "--audit" => opts.audit = true,
            "--chart" => chart = true,
            "--resume" => resume = true,
            "--retry-quick" => opts.retry.degrade_to_quick = true,
            "--retries" => {
                let v = args.next().ok_or("--retries needs a value")?;
                let n: u32 = v
                    .parse()
                    .map_err(|e| format!("bad retry count {v:?}: {e}"))?;
                if n == 0 {
                    return Err("--retries must be at least 1".to_string());
                }
                // Only fill in backoff defaults that weren't set
                // explicitly, so flag order doesn't matter.
                let defaults = RetryPolicy::retries(n);
                opts.retry.max_attempts = n;
                if opts.retry.base_backoff_ms == 0 {
                    opts.retry.base_backoff_ms = defaults.base_backoff_ms;
                }
                opts.retry.max_backoff_ms = defaults.max_backoff_ms;
                opts.retry.jitter_seed = defaults.jitter_seed;
            }
            "--backoff-ms" => {
                let v = args.next().ok_or("--backoff-ms needs a value")?;
                opts.retry.base_backoff_ms =
                    v.parse().map_err(|e| format!("bad backoff {v:?}: {e}"))?;
            }
            "--list" => targets.push("list".to_string()),
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.base_seed = v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v
                    .parse()
                    .map_err(|e| format!("bad thread count {v:?}: {e}"))?;
            }
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                opts.replications = v
                    .parse()
                    .map_err(|e| format!("bad replication count {v:?}: {e}"))?;
                if opts.replications == 0 {
                    return Err("--reps must be at least 1".to_string());
                }
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--md" => {
                let v = args.next().ok_or("--md needs a file path")?;
                md_out = Some(PathBuf::from(v));
            }
            "--submit" => {
                let v = args.next().ok_or("--submit needs HOST:PORT")?;
                submit = Some(v);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            target => targets.push(target.to_string()),
        }
    }
    if resume && out.is_none() {
        return Err("--resume needs --out <dir> (the manifest lives there)".to_string());
    }
    if submit.is_some() && (resume || chart || out.is_some() || md_out.is_some()) {
        return Err(
            "--submit delegates the sweep to the daemon; it cannot combine with \
             --out, --md, --chart, or --resume"
                .to_string(),
        );
    }
    if targets.is_empty() {
        targets.push("list".to_string());
    }
    Ok(Cli {
        targets,
        opts,
        out,
        md_out,
        chart,
        resume,
        submit,
    })
}

/// Resolve run targets to catalog entries: exact id, figure name, or a
/// shared id prefix (e.g. `exp1` matching `exp1-inf` and `exp1-1cpu2dk`).
/// `None` means a target asked for the catalog listing instead.
fn resolve_specs(targets: &[String]) -> Result<Option<Vec<ExperimentSpec>>, String> {
    let mut specs = Vec::new();
    for t in targets {
        match t.as_str() {
            "list" => return Ok(None),
            "all" => specs = catalog::all(),
            other => {
                let found = catalog::by_id(other).or_else(|| catalog::by_figure(other));
                match found {
                    Some(s) => specs.push(s),
                    None => {
                        let group = catalog::by_id_prefix(other);
                        if group.is_empty() {
                            return Err(format!(
                                "no experiment or figure matches {other:?} (try `repro list`)"
                            ));
                        }
                        specs.extend(group);
                    }
                }
            }
        }
    }
    specs.dedup_by_key(|s| s.id);
    Ok(Some(specs))
}

fn list_catalog() {
    println!("{:<20} {:<28} {:>5}  title", "id", "figures", "runs");
    for e in catalog::all() {
        let figures: Vec<&str> = e.views.iter().map(|v| v.figure).collect();
        println!(
            "{:<20} {:<28} {:>5}  {}",
            e.id,
            figures.join(", "),
            e.num_runs(),
            e.title
        );
    }
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let specs = match resolve_specs(&cli.targets) {
        Ok(Some(specs)) => specs,
        Ok(None) => {
            list_catalog();
            return;
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if let Some(addr) = &cli.submit {
        let mut incomplete = 0usize;
        for spec in &specs {
            eprintln!(">> submitting {} to {addr}...", spec.id);
            match service::relay(addr, &service::submit_request(spec.id, &cli.opts)) {
                Ok(true) => {}
                Ok(false) => incomplete += 1,
                Err(e) => {
                    eprintln!("error: {}: {e}", spec.id);
                    std::process::exit(1);
                }
            }
        }
        if incomplete > 0 {
            eprintln!("{incomplete} submission(s) did not complete (rejected, paused, or failed)");
            std::process::exit(1);
        }
        return;
    }

    if let Some(dir) = &cli.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    #[cfg(feature = "chaos")]
    let chaos = match ccsim_experiments::ChaosPoint::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: CCSIM_CHAOS: {e}");
            std::process::exit(2);
        }
    };

    shutdown::install();

    let mut failures = 0usize;
    let mut collected = Vec::new();
    for spec in &specs {
        let started = Instant::now();
        eprintln!(
            ">> {} ({} runs x {} rep(s), {:?} fidelity{}{})...",
            spec.id,
            spec.num_runs(),
            cli.opts.replications.max(1),
            cli.opts.fidelity,
            if cli.opts.audit { ", audited" } else { "" },
            if cli.resume { ", resuming" } else { "" }
        );
        let manifest_path = cli
            .out
            .as_ref()
            .map(|dir| dir.join(format!("{}.manifest.jsonl", spec.id)));
        let ctl = SweepControl {
            checkpoint: manifest_path.as_deref(),
            resume: cli.resume,
            interrupt: Some(&shutdown::INTERRUPTED),
            stop_after: None,
            progress: None,
            #[cfg(feature = "chaos")]
            chaos,
        };
        let result = match run_experiment_supervised(spec, &cli.opts, &ctl) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", spec.id);
                std::process::exit(1);
            }
        };
        let elapsed = started.elapsed();
        for w in &result.warnings {
            eprintln!("warning: {}: {w}", spec.id);
        }

        if result.interrupted {
            // Partial results are not written (a stale complete .json must
            // not be overwritten by a truncated one); the manifest already
            // holds every completed run.
            eprintln!(
                "interrupted: {} with {} point(s) collected",
                spec.id,
                result.points.len()
            );
            match &manifest_path {
                Some(m) => eprintln!(
                    "hint: completed runs are journaled in {}; re-run with --resume to continue",
                    m.display()
                ),
                None => eprintln!(
                    "hint: run with --out <dir> to checkpoint progress so --resume can continue"
                ),
            }
            std::process::exit(130);
        }

        let text = report::render_experiment(&result);
        println!("{text}");
        if cli.chart {
            println!("{}", report::ascii_chart(&result, 3));
        }
        if cli.opts.audit {
            if result.audit_failures.is_empty() {
                println!("Invariant audit: clean across all runs.");
            } else {
                failures += result.audit_failures.len();
                println!(
                    "Invariant audit: {} violation(s):",
                    result.audit_failures.len()
                );
                for v in &result.audit_failures {
                    println!("  [FAIL] {v}");
                }
            }
        }
        if !result.failures.is_empty() {
            failures += result.failures.len();
            println!(
                "Run failures ({} hole(s) in the grid):",
                result.failures.len()
            );
            for f in &result.failures {
                println!("  [HOLE] {f}");
            }
        }
        println!("Shape checks vs. the paper:");
        let outcomes = checks::evaluate(&result);
        for c in &outcomes {
            let mark = if c.passed { "PASS" } else { "FAIL" };
            if !c.passed {
                failures += 1;
            }
            println!("  [{mark}] {} — {}", c.description, c.detail);
        }
        println!("  ({:.1}s wall clock)\n", elapsed.as_secs_f64());

        if let Some(dir) = &cli.out {
            let write =
                |name: String, contents: &str| write_atomic(&dir.join(name), contents.as_bytes());
            if let Err(e) = write(format!("{}.json", spec.id), &json::to_json(&result))
                .and_then(|()| write(format!("{}.txt", spec.id), &text))
            {
                eprintln!("error: writing outputs for {}: {e}", spec.id);
                std::process::exit(1);
            }
        }
        collected.push((result, outcomes));
    }
    if let Some(path) = &cli.md_out {
        let doc = md::report_to_markdown(&collected);
        if let Err(e) = write_atomic(path, doc.as_bytes()) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if failures > 0 {
        eprintln!("{failures} check(s) FAILED");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_args(args.iter().map(ToString::to_string))
    }

    #[test]
    fn defaults_to_listing() {
        let cli = parse(&[]).expect("parses");
        assert_eq!(cli.targets, vec!["list"]);
        assert!(!cli.opts.audit);
        assert!(!cli.resume);
        assert_eq!(cli.opts.retry, RetryPolicy::none());
        assert!(resolve_specs(&cli.targets).expect("resolves").is_none());
    }

    #[test]
    fn flags_parse() {
        let cli = parse(&[
            "exp3",
            "--quick",
            "--audit",
            "--seed",
            "9",
            "--reps",
            "3",
            "--threads",
            "2",
            "--retry-quick",
            "--out",
            "results",
            "--resume",
        ])
        .expect("parses");
        assert_eq!(cli.targets, vec!["exp3"]);
        assert_eq!(cli.opts.fidelity, Fidelity::Quick);
        assert!(cli.opts.audit);
        assert_eq!(cli.opts.base_seed, 9);
        assert_eq!(cli.opts.replications, 3);
        assert_eq!(cli.opts.threads, 2);
        assert!(cli.opts.retry.degrade_to_quick);
        assert!(cli.resume);
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("results")));
    }

    #[test]
    fn retry_flags_compose_in_any_order() {
        let cli = parse(&["exp3", "--retries", "3"]).expect("parses");
        assert_eq!(cli.opts.retry.max_attempts, 3);
        assert_eq!(cli.opts.retry.base_backoff_ms, 50);
        assert_eq!(cli.opts.retry.max_backoff_ms, 2_000);
        assert!(!cli.opts.retry.degrade_to_quick);
        // Explicit backoff survives regardless of flag order.
        let a = parse(&["exp3", "--backoff-ms", "10", "--retries", "3"]).expect("parses");
        let b = parse(&["exp3", "--retries", "3", "--backoff-ms", "10"]).expect("parses");
        assert_eq!(a.opts.retry, b.opts.retry);
        assert_eq!(a.opts.retry.base_backoff_ms, 10);
        // --retry-quick composes with full-fidelity retries.
        let c = parse(&["exp3", "--retry-quick", "--retries", "2"]).expect("parses");
        assert_eq!(c.opts.retry.max_attempts, 2);
        assert!(c.opts.retry.degrade_to_quick);
        assert!(parse(&["exp3", "--retries", "0"]).is_err());
        assert!(parse(&["exp3", "--backoff-ms", "x"]).is_err());
    }

    #[test]
    fn list_flag_lists() {
        let cli = parse(&["--list"]).expect("parses");
        assert!(resolve_specs(&cli.targets).expect("resolves").is_none());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err(), "missing value");
        assert!(parse(&["--reps", "0"]).is_err(), "reps must be positive");
    }

    #[test]
    fn resume_requires_out() {
        assert!(parse(&["exp3", "--resume"]).is_err());
        assert!(parse(&["exp3", "--resume", "--out", "r"]).is_ok());
    }

    #[test]
    fn submit_mode_excludes_local_output_flags() {
        let cli = parse(&[
            "exp3",
            "--submit",
            "127.0.0.1:7077",
            "--quick",
            "--seed",
            "9",
        ])
        .expect("parses");
        assert_eq!(cli.submit.as_deref(), Some("127.0.0.1:7077"));
        assert_eq!(
            service::submit_request("exp3", &cli.opts),
            "{\"op\":\"submit\",\"spec\":{\"client\":\"repro\",\"experiment\":\"exp3\",\
             \"fidelity\":\"quick\",\"seed\":9,\"replications\":1,\"audit\":false}}"
        );
        assert!(parse(&["exp3", "--submit", "a:1"]).is_ok());
        for conflicting in [
            vec!["exp3", "--submit", "a:1", "--out", "r"],
            vec!["exp3", "--submit", "a:1", "--md", "m.md"],
            vec!["exp3", "--submit", "a:1", "--chart"],
            vec!["exp3", "--submit", "a:1", "--out", "r", "--resume"],
        ] {
            assert!(parse(&conflicting).is_err(), "{conflicting:?}");
        }
    }

    #[test]
    fn exact_id_and_figure_resolve() {
        let specs = resolve_specs(&["exp3".to_string()])
            .expect("resolves")
            .expect("runs");
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].id, "exp3");
        let by_fig =
            resolve_specs(&[specs[0].views[0].figure.replace("Figure ", "fig")]).expect("resolves");
        assert!(by_fig.is_some());
    }

    #[test]
    fn id_prefix_matches_a_group() {
        let specs = resolve_specs(&["exp1".to_string()])
            .expect("resolves")
            .expect("runs");
        assert!(
            specs.len() >= 2,
            "exp1 should expand to the infinite- and limited-resource variants"
        );
        assert!(specs.iter().all(|s| s.id.starts_with("exp1")));
    }

    #[test]
    fn unknown_target_is_an_error() {
        assert!(resolve_specs(&["nope".to_string()]).is_err());
    }

    #[test]
    fn duplicate_targets_dedupe() {
        let specs = resolve_specs(&["exp3".to_string(), "exp3".to_string()])
            .expect("resolves")
            .expect("runs");
        assert_eq!(specs.len(), 1);
    }
}
