//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                    show the experiment catalog
//! repro <id|figN|all> [flags]   run experiments
//!
//! flags:
//!   --quick         smoke fidelity (short batches) instead of paper fidelity
//!   --seed <u64>    base seed (default 0x0C551985)
//!   --reps <n>      independent replications per point (default 1); means
//!                   and 90% CIs are then taken across replications, with
//!                   common random numbers pairing the algorithms
//!   --threads <n>   worker threads (default: all cores)
//!   --out <dir>     also write <dir>/<id>.json and <dir>/<id>.txt
//!   --md <path>     write a combined markdown results appendix
//!   --chart         print an ASCII throughput chart per experiment
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ccsim_experiments::{catalog, checks, json, md, report, run_experiment, Fidelity, RunOptions};

struct Cli {
    targets: Vec<String>,
    opts: RunOptions,
    out: Option<PathBuf>,
    md_out: Option<PathBuf>,
    chart: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut targets = Vec::new();
    let mut opts = RunOptions::default();
    let mut out = None;
    let mut md_out = None;
    let mut chart = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.fidelity = Fidelity::Quick,
            "--chart" => chart = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.base_seed = v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|e| format!("bad thread count {v:?}: {e}"))?;
            }
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                opts.replications = v
                    .parse()
                    .map_err(|e| format!("bad replication count {v:?}: {e}"))?;
                if opts.replications == 0 {
                    return Err("--reps must be at least 1".to_string());
                }
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--md" => {
                let v = args.next().ok_or("--md needs a file path")?;
                md_out = Some(PathBuf::from(v));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("list".to_string());
    }
    Ok(Cli {
        targets,
        opts,
        out,
        md_out,
        chart,
    })
}

fn list_catalog() {
    println!("{:<20} {:<28} title", "id", "figures");
    for e in catalog::all() {
        let figures: Vec<&str> = e.views.iter().map(|v| v.figure).collect();
        println!("{:<20} {:<28} {}", e.id, figures.join(", "), e.title);
    }
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut specs = Vec::new();
    for t in &cli.targets {
        match t.as_str() {
            "list" => {
                list_catalog();
                return;
            }
            "all" => specs = catalog::all(),
            other => {
                let found = catalog::by_id(other).or_else(|| catalog::by_figure(other));
                match found {
                    Some(s) => specs.push(s),
                    None => {
                        let group = catalog::by_id_prefix(other);
                        if group.is_empty() {
                            eprintln!("error: no experiment or figure matches {other:?} (try `repro list`)");
                            std::process::exit(2);
                        }
                        specs.extend(group);
                    }
                }
            }
        }
    }
    specs.dedup_by_key(|s| s.id);

    if let Some(dir) = &cli.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut failures = 0usize;
    let mut collected = Vec::new();
    for spec in &specs {
        let started = Instant::now();
        eprintln!(
            ">> {} ({} runs x {} rep(s), {:?} fidelity)...",
            spec.id,
            spec.num_runs(),
            cli.opts.replications.max(1),
            cli.opts.fidelity
        );
        let result = run_experiment(spec, &cli.opts);
        let elapsed = started.elapsed();
        let text = report::render_experiment(&result);
        println!("{text}");
        if cli.chart {
            println!("{}", report::ascii_chart(&result, 3));
        }
        println!("Shape checks vs. the paper:");
        let outcomes = checks::evaluate(&result);
        for c in &outcomes {
            let mark = if c.passed { "PASS" } else { "FAIL" };
            if !c.passed {
                failures += 1;
            }
            println!("  [{mark}] {} — {}", c.description, c.detail);
        }
        println!("  ({:.1}s wall clock)\n", elapsed.as_secs_f64());

        if let Some(dir) = &cli.out {
            let write = |name: String, contents: &str| -> std::io::Result<()> {
                let mut f = std::fs::File::create(dir.join(name))?;
                f.write_all(contents.as_bytes())
            };
            if let Err(e) = write(format!("{}.json", spec.id), &json::to_json(&result))
                .and_then(|()| write(format!("{}.txt", spec.id), &text))
            {
                eprintln!("error: writing outputs for {}: {e}", spec.id);
                std::process::exit(1);
            }
        }
        collected.push((result, outcomes));
    }
    if let Some(path) = &cli.md_out {
        let doc = md::report_to_markdown(&collected);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if failures > 0 {
        eprintln!("{failures} shape check(s) FAILED");
        std::process::exit(1);
    }
}
