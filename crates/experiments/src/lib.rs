//! `ccsim-experiments` — the reproduction harness.
//!
//! Every table and figure in the paper's evaluation section is encoded as an
//! [`ExperimentSpec`] in [`catalog`]; [`run_experiment`] sweeps its
//! `(algorithm × mpl)` grid in parallel; [`report`] renders the same tables
//! the paper plots; [`checks::evaluate`] verifies the paper's qualitative
//! claims against the measured data.
//!
//! The `repro` binary ties it together:
//!
//! ```text
//! repro list                  # show the catalog
//! repro exp3 --quick          # regenerate Figures 8-10 at smoke fidelity
//! repro fig5                  # select by paper figure number
//! repro all --out results/    # full paper reproduction + EXPERIMENTS.md data
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod checks;
pub mod json;
pub mod manifest;
pub mod md;
mod replicate;
pub mod report;
mod runner;
mod spec;

#[cfg(feature = "chaos")]
pub use chaos::{ChaosKind, ChaosPoint};
pub use manifest::{write_atomic, Manifest, ManifestEntry, ManifestError};
pub use replicate::{aggregate_reports, NoReplications};
pub use runner::{
    run_experiment, run_experiment_supervised, Fidelity, PointProgress, RetryPolicy, RunOptions,
    SweepControl, SweepError,
};
pub use spec::{
    DataPoint, ExperimentResult, ExperimentSpec, FailureKind, FigureKind, FigureView, PointFailure,
    RetryOutcome, Series,
};
