//! Deterministic fault injection for supervisor tests (feature `chaos`).
//!
//! A [`ChaosPoint`] targets one grid coordinate by `(series index, mpl,
//! replication)` and makes its first `fail_attempts` attempts fail —
//! either by panicking inside the worker (exercising `catch_unwind`
//! isolation) or by shrinking the run's budget to a few events (exercising
//! the engine's [`ccsim_core::RunError::BudgetExhausted`] path). Attempt
//! `fail_attempts + 1` and resumed runs are left alone, so retry and
//! recovery paths can be proven to converge on the clean result. Injection
//! is coordinate-keyed, never time- or scheduling-keyed, so chaos runs are
//! exactly reproducible.
//!
//! The `repro` binary reads the `CCSIM_CHAOS` environment variable (e.g.
//! `CCSIM_CHAOS=panic@1:50:0` or, failing the first two attempts,
//! `CCSIM_CHAOS=panic@1:50:0*2`) when built with this feature; integration
//! tests construct [`ChaosPoint`]s directly.

/// How the targeted run should fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Panic in the worker before the run starts.
    Panic,
    /// Replace the run's budget with a tiny one so the engine reports
    /// budget exhaustion.
    BudgetExhaust,
}

/// One injected fault, keyed by grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPoint {
    /// Series index into the spec's `series`.
    pub series_ix: usize,
    /// Multiprogramming level.
    pub mpl: u32,
    /// Replication index.
    pub rep: u32,
    /// Failure mode.
    pub kind: ChaosKind,
    /// How many leading attempts at the coordinate fail (default 1).
    /// Attempt `fail_attempts + 1` succeeds — the hook retry tests use to
    /// prove a point recovers on exactly the attempt the policy allows.
    pub fail_attempts: u32,
}

impl ChaosPoint {
    /// Event ceiling used for [`ChaosKind::BudgetExhaust`] — small enough
    /// to trip within milliseconds, large enough to pass engine priming.
    pub const TINY_EVENT_BUDGET: u64 = 64;

    /// Parse `panic@si:mpl:rep` or `budget@si:mpl:rep`, with an optional
    /// `*N` suffix failing the first `N` attempts instead of just the
    /// first (`panic@1:50:0*2`).
    ///
    /// # Errors
    /// Returns a description of the malformed field.
    pub fn parse(s: &str) -> Result<ChaosPoint, String> {
        let (kind, coord) = s
            .split_once('@')
            .ok_or_else(|| format!("chaos spec {s:?} has no '@' (want kind@si:mpl:rep[*n])"))?;
        let kind = match kind {
            "panic" => ChaosKind::Panic,
            "budget" => ChaosKind::BudgetExhaust,
            other => return Err(format!("unknown chaos kind {other:?} (panic|budget)")),
        };
        let (coord, fail_attempts) = match coord.split_once('*') {
            Some((c, n)) => (
                c,
                n.parse::<u32>()
                    .map_err(|e| format!("bad attempt count {n:?}: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err("attempt count must be at least 1".to_string())
                        } else {
                            Ok(n)
                        }
                    })?,
            ),
            None => (coord, 1),
        };
        let fields: Vec<&str> = coord.split(':').collect();
        let [si, mpl, rep] = fields.as_slice() else {
            return Err(format!("chaos coordinate {coord:?} is not si:mpl:rep"));
        };
        Ok(ChaosPoint {
            series_ix: si
                .parse()
                .map_err(|e| format!("bad series index {si:?}: {e}"))?,
            mpl: mpl.parse().map_err(|e| format!("bad mpl {mpl:?}: {e}"))?,
            rep: rep
                .parse()
                .map_err(|e| format!("bad replication {rep:?}: {e}"))?,
            kind,
            fail_attempts,
        })
    }

    /// Read a chaos point from the `CCSIM_CHAOS` environment variable.
    ///
    /// # Errors
    /// Returns the parse error for a malformed value; `Ok(None)` when the
    /// variable is unset or empty.
    pub fn from_env() -> Result<Option<ChaosPoint>, String> {
        match std::env::var("CCSIM_CHAOS") {
            Ok(v) if !v.is_empty() => Self::parse(&v).map(Some),
            _ => Ok(None),
        }
    }

    /// Does this fault hit the given grid coordinate on this attempt?
    #[must_use]
    pub fn targets(&self, series_ix: usize, mpl: u32, rep: u32, attempt: u32) -> bool {
        self.series_ix == series_ix
            && self.mpl == mpl
            && self.rep == rep
            && attempt <= self.fail_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_kinds() {
        assert_eq!(
            ChaosPoint::parse("panic@1:50:0"),
            Ok(ChaosPoint {
                series_ix: 1,
                mpl: 50,
                rep: 0,
                kind: ChaosKind::Panic,
                fail_attempts: 1,
            })
        );
        assert_eq!(
            ChaosPoint::parse("budget@0:5:2"),
            Ok(ChaosPoint {
                series_ix: 0,
                mpl: 5,
                rep: 2,
                kind: ChaosKind::BudgetExhaust,
                fail_attempts: 1,
            })
        );
    }

    #[test]
    fn parses_attempt_count_suffix() {
        let p = ChaosPoint::parse("panic@1:50:0*3").unwrap();
        assert_eq!(p.fail_attempts, 3);
        assert!(ChaosPoint::parse("panic@1:50:0*0").is_err());
        assert!(ChaosPoint::parse("panic@1:50:0*x").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ChaosPoint::parse("panic").is_err());
        assert!(ChaosPoint::parse("explode@1:2:3").is_err());
        assert!(ChaosPoint::parse("panic@1:2").is_err());
        assert!(ChaosPoint::parse("panic@a:2:3").is_err());
    }

    #[test]
    fn targeting_is_exact_and_attempt_bounded() {
        let p = ChaosPoint::parse("panic@1:50:0").unwrap();
        assert!(p.targets(1, 50, 0, 1));
        assert!(!p.targets(1, 50, 0, 2), "only the first attempt fails");
        assert!(!p.targets(1, 50, 1, 1));
        assert!(!p.targets(0, 50, 0, 1));
        assert!(!p.targets(1, 25, 0, 1));
        let p = ChaosPoint::parse("budget@1:50:0*2").unwrap();
        assert!(p.targets(1, 50, 0, 1));
        assert!(p.targets(1, 50, 0, 2));
        assert!(!p.targets(1, 50, 0, 3), "attempt 3 recovers");
    }
}
