//! Shape checks: the paper's qualitative claims, encoded as assertions over
//! experiment results. Reproduction means the *shapes* hold — who wins, by
//! roughly what factor, where the crossovers fall — not the absolute
//! numbers (the paper's hardware was a room of VAX 11/750s).

use crate::spec::ExperimentResult;

/// One qualitative expectation and whether the measured data satisfied it.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The claim, phrased as in the paper.
    pub description: String,
    /// Did the measured result satisfy it?
    pub passed: bool,
    /// The measured quantities behind the verdict.
    pub detail: String,
}

fn outcome(description: &str, passed: bool, detail: String) -> CheckOutcome {
    CheckOutcome {
        description: description.to_string(),
        passed,
        detail,
    }
}

const B: &str = "blocking";
const IR: &str = "immediate-restart";
const O: &str = "optimistic";

/// "`a` beats `b` at `mpl`". With two or more replications this is a paired
/// Student-t over per-replication throughputs — sharp because the runner's
/// common random numbers give both series the same workload per
/// replication, so the pairing cancels shared noise. With a single
/// replication it degrades to the plain mean comparison.
fn beats_at(result: &ExperimentResult, a: &str, b: &str, mpl: u32) -> (bool, String) {
    match result.paired_throughput_t(a, b, mpl) {
        Some(t) => (
            t.significantly_positive(),
            format!(
                "{a}−{b} @{mpl}: Δ {:+.3} ± {:.3} tps (paired-t, n={})",
                t.mean_diff, t.half_width, t.n
            ),
        ),
        None => {
            let ta = result.throughput_at(a, mpl).unwrap_or(0.0);
            let tb = result.throughput_at(b, mpl).unwrap_or(0.0);
            (
                ta > tb,
                format!("@{mpl}: {a} {ta:.2} vs {b} {tb:.2} (single run)"),
            )
        }
    }
}

/// "`a` has caught up to `b` at `mpl`": `b` is no longer significantly
/// ahead of `a` under the paired test — the crossover point has been
/// reached even if `a` is not yet significantly in front. Falls back to a
/// 5%-tolerance mean comparison for single replications.
fn caught_up_at(result: &ExperimentResult, a: &str, b: &str, mpl: u32) -> (bool, String) {
    match result.paired_throughput_t(b, a, mpl) {
        Some(t) => (
            !t.significantly_positive(),
            format!(
                "{a} within noise of {b} @{mpl}: Δ({b}−{a}) {:+.3} ± {:.3} tps (paired-t, n={})",
                t.mean_diff, t.half_width, t.n
            ),
        ),
        None => {
            let ta = result.throughput_at(a, mpl).unwrap_or(0.0);
            let tb = result.throughput_at(b, mpl).unwrap_or(0.0);
            (
                ta >= tb * 0.95,
                format!("@{mpl}: {a} {ta:.2} vs {b} {tb:.2} (single run)"),
            )
        }
    }
}

fn est_at(result: &ExperimentResult, label: &str, mpl: u32) -> Option<ccsim_core::Estimate> {
    result
        .points
        .iter()
        .find(|p| p.series == label && p.mpl == mpl)
        .map(|p| p.report.throughput)
}

/// Evaluate the paper's claims for `result` (selected by experiment id).
/// Unknown ids get only the generic liveness check.
#[must_use]
pub fn evaluate(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let mut out = vec![liveness(result)];
    match result.spec.id {
        "exp1-inf" | "exp1-1x2" => out.extend(exp1(result)),
        "exp2" => out.extend(exp2(result)),
        "exp3" => out.extend(exp3(result)),
        "exp3-delay" => out.extend(exp3_delay(result)),
        "exp4-5x10" => out.extend(exp4_small(result)),
        "exp4-25x50" => out.extend(exp4_large(result)),
        "exp5-1s" => out.extend(exp5_short(result)),
        "exp5-5s" | "exp5-10s" => out.extend(exp5_long(result)),
        "ablation-mixed" => out.extend(ablation_mixed(result)),
        "ablation-tso" => out.extend(ablation_tso(result)),
        _ => {}
    }
    out
}

fn liveness(result: &ExperimentResult) -> CheckOutcome {
    let all_commit = result.points.iter().all(|p| p.report.commits > 0);
    outcome(
        "every configuration commits transactions",
        all_commit,
        format!("{} points measured", result.points.len()),
    )
}

fn peaks(result: &ExperimentResult) -> (f64, f64, f64) {
    (
        result.peak_throughput(B),
        result.peak_throughput(IR),
        result.peak_throughput(O),
    )
}

/// Experiment 1: "if conflicts are rare, it makes little difference which
/// concurrency control algorithm is used" (blocking ahead by a small
/// amount).
fn exp1(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, ir, o) = peaks(result);
    let max = b.max(ir).max(o);
    let min = b.min(ir).min(o);
    vec![
        outcome(
            "the three algorithms perform within ~15% of each other",
            (max - min) / max < 0.15,
            format!("peaks: blocking {b:.2}, immediate-restart {ir:.2}, optimistic {o:.2}"),
        ),
        outcome(
            "blocking is at least as good as the restart algorithms",
            b >= ir * 0.97 && b >= o * 0.97,
            format!("blocking {b:.2} vs ir {ir:.2} / occ {o:.2}"),
        ),
    ]
}

/// Experiment 2 (Figures 5–7): under infinite resources, blocking thrashes
/// past a knee, the optimistic algorithm keeps climbing, immediate-restart
/// plateaus, and blocking's thrashing is driven by blocking (not restarts).
fn exp2(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let mut v = Vec::new();
    let o_25 = result.throughput_at(O, 25).unwrap_or(0.0);
    let o_200 = result.throughput_at(O, 200).unwrap_or(0.0);
    // The climb must be large *and* outside the confidence intervals of
    // both endpoints (CI-separated means, not a lucky pair of seeds).
    let separated = match (est_at(result, O, 25), est_at(result, O, 200)) {
        (Some(lo), Some(hi)) => hi.significantly_differs_from(&lo),
        _ => false,
    };
    v.push(outcome(
        "optimistic throughput keeps increasing with mpl (Fig. 5)",
        o_200 > o_25 * 1.5 && separated,
        format!("occ: {o_25:.2} @25 vs {o_200:.2} @200 (CI-separated: {separated})"),
    ));
    let b_peak = result.peak_throughput(B);
    let b_200 = result.throughput_at(B, 200).unwrap_or(0.0);
    v.push(outcome(
        "blocking thrashes beyond its knee (Fig. 5)",
        b_200 < b_peak * 0.75,
        format!("blocking: peak {b_peak:.2} vs {b_200:.2} @200"),
    ));
    let ir_100 = result.throughput_at(IR, 100).unwrap_or(0.0);
    let ir_200 = result.throughput_at(IR, 200).unwrap_or(0.0);
    v.push(outcome(
        "immediate-restart reaches a plateau (Fig. 5)",
        ir_100 > 0.0 && (ir_200 - ir_100).abs() / ir_100 < 0.15,
        format!("ir: {ir_100:.2} @100 vs {ir_200:.2} @200"),
    ));
    let block_lo = ratio_at(result, B, 25, |r| r.block_ratio);
    let block_hi = ratio_at(result, B, 200, |r| r.block_ratio);
    v.push(outcome(
        "blocking's block ratio explodes with mpl (Fig. 6)",
        block_hi > block_lo * 3.0 && block_hi > 1.0,
        format!("block ratio: {block_lo:.2} @25 vs {block_hi:.2} @200"),
    ));
    let rr_occ = ratio_at(result, O, 100, |r| r.restart_ratio);
    let rr_ir = ratio_at(result, IR, 100, |r| r.restart_ratio);
    v.push(outcome(
        "optimistic restarts more than immediate-restart at high mpl (Fig. 6)",
        rr_occ > rr_ir,
        format!("restart ratio @100: occ {rr_occ:.2} vs ir {rr_ir:.2}"),
    ));
    let sd_b = ratio_at(result, B, 50, |r| r.response_time_std);
    let sd_ir = ratio_at(result, IR, 50, |r| r.response_time_std);
    v.push(outcome(
        "immediate-restart has larger response-time variance than blocking (Fig. 7)",
        sd_ir > sd_b,
        format!("response σ @50: ir {sd_ir:.2}s vs blocking {sd_b:.2}s"),
    ));
    v
}

/// Experiment 3 (Figures 8–10): with 1 CPU / 2 disks the best global
/// throughput belongs to blocking; immediate-restart ≥ optimistic; at
/// mpl=200 immediate-restart has crossed over blocking and leads
/// optimistic; disks saturate near blocking's peak.
fn exp3(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, ir, o) = peaks(result);
    let mut v = vec![
        outcome(
            "blocking attains the best global throughput (Fig. 8)",
            b >= ir && b >= o,
            format!("peaks: blocking {b:.2}, ir {ir:.2}, occ {o:.2}"),
        ),
        outcome(
            "immediate-restart performs as well as or better than optimistic (Fig. 8)",
            ir >= o * 0.95,
            format!("peaks: ir {ir:.2} vs occ {o:.2}"),
        ),
    ];
    // The paper's crossover claim: by mpl=200 blocking has thrashed down to
    // immediate-restart's level (no longer significantly ahead), while
    // immediate-restart is significantly ahead of optimistic.
    let (ir_caught_b, detail_b) = caught_up_at(result, IR, B, 200);
    let (ir_beats_o, detail_o) = beats_at(result, IR, O, 200);
    v.push(outcome(
        "at mpl=200 immediate-restart catches blocking and beats optimistic (Fig. 8)",
        ir_caught_b && ir_beats_o,
        format!("{detail_b}; {detail_o}"),
    ));
    // Disk utilization near blocking's peak mpl.
    let util = result
        .series_points(B)
        .iter()
        .map(|p| p.report.disk_util_total.mean)
        .fold(0.0_f64, f64::max);
    v.push(outcome(
        "disks saturate at blocking's peak (Fig. 9)",
        util > 0.90,
        format!("max total disk utilization {:.1}%", util * 100.0),
    ));
    let sd_b = ratio_at(result, B, 50, |r| r.response_time_std);
    let sd_ir = ratio_at(result, IR, 50, |r| r.response_time_std);
    v.push(outcome(
        "immediate-restart shows the worst response-time variance (Fig. 10)",
        sd_ir > sd_b,
        format!("response σ @50: ir {sd_ir:.2}s vs blocking {sd_b:.2}s"),
    ));
    v
}

/// Figure 11: the adaptive delay arrests high-mpl degradation; blocking is
/// the clear winner.
fn exp3_delay(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, ir, o) = peaks(result);
    let b_200 = result.throughput_at(B, 200).unwrap_or(0.0);
    let o_200 = result.throughput_at(O, 200).unwrap_or(0.0);
    vec![
        outcome(
            "blocking emerges as the clear winner (Fig. 11)",
            b >= ir && b >= o,
            format!("peaks: blocking {b:.2}, ir {ir:.2}, occ {o:.2}"),
        ),
        outcome(
            "the delay arrests throughput degradation at high mpl (Fig. 11)",
            b_200 > b * 0.6 && o_200 > o * 0.6,
            format!("@200 vs peak: blocking {b_200:.2}/{b:.2}, occ {o_200:.2}/{o:.2}"),
        ),
    ]
}

/// Figures 12–13: at 5×10 blocking still wins; restart algorithms burn more
/// total disk than blocking.
fn exp4_small(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, ir, o) = peaks(result);
    let b_util = max_util(result, B);
    let o_util = max_util(result, O);
    vec![
        outcome(
            "blocking still provides the highest overall throughput (Fig. 12)",
            b >= ir && b >= o * 0.97,
            format!("peaks: blocking {b:.2}, ir {ir:.2}, occ {o:.2}"),
        ),
        outcome(
            "optimistic's total disk utilization exceeds blocking's (Fig. 13)",
            o_util > b_util,
            format!(
                "max total disk util: occ {:.1}% vs blocking {:.1}%",
                o_util * 100.0,
                b_util * 100.0
            ),
        ),
    ]
}

/// Figures 14–15: at 25×50 the optimistic algorithm's peak edges past
/// blocking's (the system starts behaving as if resources were infinite).
fn exp4_large(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, _, o) = peaks(result);
    vec![outcome(
        "optimistic's peak throughput beats blocking's, though not by much (Fig. 14)",
        o >= b * 0.98,
        format!("peaks: occ {o:.2} vs blocking {b:.2}"),
    )]
}

/// Figure 16: with only 1 s of internal think, blocking still wins.
fn exp5_short(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, _, o) = peaks(result);
    vec![outcome(
        "with a 1 s internal think time, blocking performs better (Fig. 16)",
        b >= o * 0.97,
        format!("peaks: blocking {b:.2} vs occ {o:.2}"),
    )]
}

/// Figures 18 and 20: with 5–10 s internal thinks the optimistic algorithm
/// overtakes blocking, and its peak also beats immediate-restart's.
fn exp5_long(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let (b, ir, o) = peaks(result);
    vec![
        outcome(
            "long internal thinks favor the optimistic algorithm (Figs. 18/20)",
            o > b,
            format!("peaks: occ {o:.2} vs blocking {b:.2}"),
        ),
        outcome(
            "optimistic's best throughput beats immediate-restart's (Figs. 18/20)",
            o > ir,
            format!("peaks: occ {o:.2} vs ir {ir:.2}"),
        ),
    ]
}

/// Mixed-size ablation: restart-oriented algorithms starve the large class.
fn ablation_mixed(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let starvation = |label: &str| -> f64 {
        // Worst large-vs-small restart-ratio disparity across the sweep.
        result
            .series_points(label)
            .iter()
            .filter_map(|p| {
                let classes = &p.report.class_reports;
                if classes.len() < 2 {
                    return None;
                }
                Some((classes[1].restart_ratio + 0.01) / (classes[0].restart_ratio + 0.01))
            })
            .fold(0.0_f64, f64::max)
    };
    let b = starvation(B);
    let o = starvation(O);
    let ir = starvation(IR);
    vec![outcome(
        "restart-oriented algorithms starve large transactions more than blocking",
        o > b && ir > b,
        format!("large/small restart disparity: blocking {b:.1}, ir {ir:.1}, occ {o:.1}"),
    )]
}

/// Locking vs. basic T/O: under scarce resources the paper's resource
/// argument predicts blocking beats any restart-prone scheme, basic T/O
/// included ([Lin83]'s setting rather than [Gall82]'s).
fn ablation_tso(result: &ExperimentResult) -> Vec<CheckOutcome> {
    let b = result.peak_throughput(B);
    let to = result.peak_throughput("basic-to");
    vec![outcome(
        "under scarce resources blocking beats basic timestamp ordering",
        b >= to,
        format!("peaks: blocking {b:.2} vs basic-to {to:.2}"),
    )]
}

fn ratio_at(
    result: &ExperimentResult,
    label: &str,
    mpl: u32,
    f: fn(&ccsim_core::Report) -> f64,
) -> f64 {
    result
        .points
        .iter()
        .find(|p| p.series == label && p.mpl == mpl)
        .map_or(0.0, |p| f(&p.report))
}

fn max_util(result: &ExperimentResult, label: &str) -> f64 {
    result
        .series_points(label)
        .iter()
        .map(|p| p.report.disk_util_total.mean)
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DataPoint, ExperimentSpec, FigureKind, FigureView, Series};
    use ccsim_core::{Estimate, Params, Report};

    fn fake_report(tps: f64) -> Report {
        Report {
            throughput: Estimate {
                mean: tps,
                half_width: 0.1,
            },
            throughput_per_batch: vec![tps],
            throughput_lag1: 0.0,
            response_time_mean: 1.0,
            response_time_std: 0.5,
            response_time_max: 2.0,
            response_time_p50: 1.0,
            response_time_p95: 1.8,
            response_time_p99: 1.95,
            block_ratio: 0.1,
            restart_ratio: 0.1,
            disk_util_total: Estimate {
                mean: 0.5,
                half_width: 0.0,
            },
            disk_util_useful: Estimate {
                mean: 0.4,
                half_width: 0.0,
            },
            cpu_util_total: Estimate {
                mean: 0.2,
                half_width: 0.0,
            },
            cpu_util_useful: Estimate {
                mean: 0.2,
                half_width: 0.0,
            },
            avg_active: 5.0,
            class_reports: vec![],
            commits: 100,
            blocks: 10,
            restarts: 10,
            deadlocks: 1,
        }
    }

    fn fake_result(id: &'static str, tps: &[(&str, u32, f64)]) -> ExperimentResult {
        ExperimentResult {
            spec: ExperimentSpec {
                id,
                title: "fake",
                params: Params::paper_baseline(),
                series: Series::paper_trio(),
                mpls: vec![25, 200],
                restart_delay_for_all: false,
                views: vec![FigureView {
                    figure: "Figure 0",
                    caption: "fake",
                    kind: FigureKind::Throughput,
                }],
            },
            points: tps
                .iter()
                .map(|&(s, mpl, v)| DataPoint::single(s.to_string(), mpl, fake_report(v)))
                .collect(),
            audit_failures: Vec::new(),
            failures: Vec::new(),
            interrupted: false,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn exp1_checks_pass_when_algorithms_agree() {
        let r = fake_result(
            "exp1-inf",
            &[
                ("blocking", 25, 10.0),
                ("immediate-restart", 25, 9.6),
                ("optimistic", 25, 9.5),
            ],
        );
        let outcomes = evaluate(&r);
        assert!(outcomes.iter().all(|o| o.passed), "{outcomes:#?}");
    }

    #[test]
    fn exp1_checks_fail_on_wide_spread() {
        let r = fake_result(
            "exp1-inf",
            &[
                ("blocking", 25, 10.0),
                ("immediate-restart", 25, 5.0),
                ("optimistic", 25, 9.5),
            ],
        );
        let outcomes = evaluate(&r);
        assert!(outcomes.iter().any(|o| !o.passed));
    }

    #[test]
    fn exp3_winner_check() {
        let good = fake_result(
            "exp3",
            &[
                ("blocking", 25, 5.0),
                ("blocking", 200, 3.0),
                ("immediate-restart", 25, 4.0),
                ("immediate-restart", 200, 3.5),
                ("optimistic", 25, 3.8),
                ("optimistic", 200, 3.0),
            ],
        );
        let outcomes = evaluate(&good);
        let winner = outcomes
            .iter()
            .find(|o| o.description.contains("best global"))
            .unwrap();
        assert!(winner.passed, "{winner:?}");
    }

    fn fake_point_reps(s: &str, mpl: u32, tps: &[f64]) -> DataPoint {
        let replicates: Vec<Report> = tps.iter().map(|&v| fake_report(v)).collect();
        DataPoint {
            series: s.to_string(),
            mpl,
            report: crate::replicate::aggregate_reports(
                &replicates,
                ccsim_stats::Confidence::Ninety,
            )
            .expect("test replicates are non-empty"),
            replicates,
        }
    }

    #[test]
    fn exp3_crossover_uses_paired_t_with_replications() {
        let mut r = fake_result("exp3", &[]);
        r.points = vec![
            fake_point_reps(B, 200, &[3.0, 3.1, 2.9]),
            fake_point_reps(IR, 200, &[3.5, 3.7, 3.4]),
            fake_point_reps(O, 200, &[3.0, 3.2, 2.9]),
        ];
        let outcomes = evaluate(&r);
        let cross = outcomes
            .iter()
            .find(|o| o.description.contains("at mpl=200"))
            .unwrap();
        assert!(cross.passed, "{cross:?}");
        assert!(cross.detail.contains("paired-t"), "{}", cross.detail);
    }

    #[test]
    fn exp3_crossover_rejects_blocking_still_ahead() {
        // Blocking is consistently ahead of immediate-restart in every
        // replication, so the crossover has not happened yet.
        let mut r = fake_result("exp3", &[]);
        r.points = vec![
            fake_point_reps(B, 200, &[4.0, 4.1, 3.9]),
            fake_point_reps(IR, 200, &[3.5, 3.6, 3.4]),
            fake_point_reps(O, 200, &[3.0, 3.1, 2.9]),
        ];
        let outcomes = evaluate(&r);
        let cross = outcomes
            .iter()
            .find(|o| o.description.contains("at mpl=200"))
            .unwrap();
        assert!(!cross.passed, "{cross:?}");
    }

    #[test]
    fn exp3_crossover_rejects_insignificant_difference() {
        // The immediate-restart vs optimistic differences flip sign: the
        // mean gap is positive but nowhere near paired-t significance.
        let mut r = fake_result("exp3", &[]);
        r.points = vec![
            fake_point_reps(B, 200, &[3.0, 3.4, 3.1]),
            fake_point_reps(IR, 200, &[3.5, 2.8, 3.6]),
            fake_point_reps(O, 200, &[3.4, 2.9, 3.0]),
        ];
        let outcomes = evaluate(&r);
        let cross = outcomes
            .iter()
            .find(|o| o.description.contains("at mpl=200"))
            .unwrap();
        assert!(!cross.passed, "{cross:?}");
    }

    #[test]
    fn liveness_fails_on_dead_point() {
        let mut r = fake_result("exp2", &[("blocking", 25, 1.0)]);
        r.points[0].report.commits = 0;
        let outcomes = evaluate(&r);
        assert!(!outcomes[0].passed);
    }

    #[test]
    fn unknown_id_gets_only_liveness() {
        let r = fake_result("mystery", &[("blocking", 25, 1.0)]);
        assert_eq!(evaluate(&r).len(), 1);
    }
}
