//! The catalog: every table and figure of the paper's evaluation, plus the
//! extension ablations, as runnable experiment specifications.

use ccsim_core::{CcAlgorithm, Params, ResourceSpec, RestartDelayPolicy, VictimPolicy};
use ccsim_des::SimDuration;
use ccsim_workload::TxnClass;

use crate::spec::{ExperimentSpec, FigureKind, FigureView, Series};

fn view(figure: &'static str, caption: &'static str, kind: FigureKind) -> FigureView {
    FigureView {
        figure,
        caption,
        kind,
    }
}

fn paper_mpls() -> Vec<u32> {
    Params::PAPER_MPLS.to_vec()
}

/// Experiment 1, infinite resources (Figure 3): 10 000-object database, so
/// conflicts are rare and the three algorithms should coincide.
#[must_use]
pub fn exp1_infinite() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp1-inf",
        title: "Experiment 1: low conflict, infinite resources",
        params: Params::low_conflict().with_resources(ResourceSpec::Infinite),
        series: Series::paper_trio_with_modern(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![view(
            "Figure 3",
            "Throughput (Infinite Resources), low conflict",
            FigureKind::Throughput,
        )],
    }
}

/// Experiment 1, finite resources (Figure 4).
#[must_use]
pub fn exp1_finite() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp1-1x2",
        title: "Experiment 1: low conflict, 1 CPU / 2 disks",
        params: Params::low_conflict(),
        series: Series::paper_trio_with_modern(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![view(
            "Figure 4",
            "Throughput (1 CPU, 2 Disks), low conflict",
            FigureKind::Throughput,
        )],
    }
}

/// Experiment 2 (Figures 5–7): the infinite-resources assumption at the
/// high-conflict database size.
#[must_use]
pub fn exp2() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp2",
        title: "Experiment 2: infinite resources",
        params: Params::paper_baseline().with_resources(ResourceSpec::Infinite),
        series: Series::paper_trio_with_modern(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![
            view(
                "Figure 5",
                "Throughput (Infinite Resources)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 6",
                "Conflict Ratios (Infinite Resources)",
                FigureKind::ConflictRatios,
            ),
            view(
                "Figure 7",
                "Response Time (Infinite Resources)",
                FigureKind::ResponseTime,
            ),
        ],
    }
}

/// Experiment 3 (Figures 8–10): 1 CPU and 2 disks.
#[must_use]
pub fn exp3() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp3",
        title: "Experiment 3: resource-limited (1 CPU, 2 disks)",
        params: Params::paper_baseline(),
        series: Series::paper_trio(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![
            view(
                "Figure 8",
                "Throughput (1 CPU, 2 Disks)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 9",
                "Disk Utilization (1 CPU, 2 Disks)",
                FigureKind::DiskUtil,
            ),
            view(
                "Figure 10",
                "Response Time (1 CPU, 2 Disks)",
                FigureKind::ResponseTime,
            ),
        ],
    }
}

/// Experiment 3's follow-up (Figure 11): the adaptive restart delay applied
/// to all three algorithms.
#[must_use]
pub fn exp3_delay() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp3-delay",
        title: "Experiment 3 follow-up: adaptive restart delay for all algorithms",
        params: Params::paper_baseline().with_restart_delay(RestartDelayPolicy::Adaptive),
        series: Series::paper_trio(),
        mpls: paper_mpls(),
        restart_delay_for_all: true,
        views: vec![view(
            "Figure 11",
            "Throughput (Adaptive Delays)",
            FigureKind::Throughput,
        )],
    }
}

/// Experiment 4, small multiprocessor (Figures 12–13): 5 CPUs, 10 disks.
#[must_use]
pub fn exp4_small() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp4-5x10",
        title: "Experiment 4: multiple resources (5 CPUs, 10 disks)",
        params: Params::paper_baseline().with_resources(ResourceSpec::FIVE_CPUS_TEN_DISKS),
        series: Series::paper_trio(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![
            view(
                "Figure 12",
                "Throughput (5 CPUs, 10 Disks)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 13",
                "Disk Utilization (5 CPUs, 10 Disks)",
                FigureKind::DiskUtil,
            ),
        ],
    }
}

/// Experiment 4, large multiprocessor (Figures 14–15): 25 CPUs, 50 disks.
#[must_use]
pub fn exp4_large() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp4-25x50",
        title: "Experiment 4: multiple resources (25 CPUs, 50 disks)",
        params: Params::paper_baseline().with_resources(ResourceSpec::TWENTY_FIVE_CPUS_FIFTY_DISKS),
        series: Series::paper_trio(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![
            view(
                "Figure 14",
                "Throughput (25 CPUs, 50 Disks)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 15",
                "Disk Utilization (25 CPUs, 50 Disks)",
                FigureKind::DiskUtil,
            ),
        ],
    }
}

fn exp5(
    id: &'static str,
    title: &'static str,
    int_s: u64,
    ext_s: u64,
    views: Vec<FigureView>,
) -> ExperimentSpec {
    ExperimentSpec {
        id,
        title,
        params: Params::paper_baseline()
            .with_think_times(SimDuration::from_secs(ext_s), SimDuration::from_secs(int_s)),
        series: Series::paper_trio(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views,
    }
}

/// Experiment 5, 1-second internal think (Figures 16–17). External think
/// time raised to 3 s to keep the thinking/active ratio (paper §4.5).
#[must_use]
pub fn exp5_1s() -> ExperimentSpec {
    exp5(
        "exp5-1s",
        "Experiment 5: interactive workload, 1 s internal think (ext 3 s)",
        1,
        3,
        vec![
            view(
                "Figure 16",
                "Throughput (1 Second Internal Thinking)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 17",
                "Disk Utilization (1 Second Internal Thinking)",
                FigureKind::DiskUtil,
            ),
        ],
    )
}

/// Experiment 5, 5-second internal think (Figures 18–19), external 11 s.
#[must_use]
pub fn exp5_5s() -> ExperimentSpec {
    exp5(
        "exp5-5s",
        "Experiment 5: interactive workload, 5 s internal think (ext 11 s)",
        5,
        11,
        vec![
            view(
                "Figure 18",
                "Throughput (5 Seconds Internal Thinking)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 19",
                "Disk Utilization (5 Seconds Internal Thinking)",
                FigureKind::DiskUtil,
            ),
        ],
    )
}

/// Experiment 5, 10-second internal think (Figures 20–21), external 21 s.
#[must_use]
pub fn exp5_10s() -> ExperimentSpec {
    exp5(
        "exp5-10s",
        "Experiment 5: interactive workload, 10 s internal think (ext 21 s)",
        10,
        21,
        vec![
            view(
                "Figure 20",
                "Throughput (10 Seconds Internal Thinking)",
                FigureKind::Throughput,
            ),
            view(
                "Figure 21",
                "Disk Utilization (10 Seconds Internal Thinking)",
                FigureKind::DiskUtil,
            ),
        ],
    )
}

/// Extension: the million-scale closed network. A 10^8-object database and
/// 10^6 terminals under infinite resources, swept over mpl 10^5–10^6 —
/// conflict is negligible at this density, so the interesting observables
/// are engineering ones (events/sec, peak memory, streaming latency
/// quantiles) rather than the paper's curves. Run it with a
/// [`ccsim_core::RunBudget`]; a full measured window at mpl 10^6 is not a
/// CI-sized computation.
#[must_use]
pub fn exp_scale() -> ExperimentSpec {
    ExperimentSpec {
        id: "exp-scale",
        title: "Extension: million-scale closed network (10^8 objects, 10^6 terminals)",
        params: Params::exp_scale(),
        series: Series::paper_trio(),
        mpls: vec![100_000, 250_000, 500_000, 1_000_000],
        restart_delay_for_all: false,
        views: vec![view(
            "Scale",
            "Throughput at million-scale multiprogramming levels",
            FigureKind::Throughput,
        )],
    }
}

/// Extension ablation: deadlock victim policies for the blocking algorithm.
#[must_use]
pub fn ablation_victim() -> ExperimentSpec {
    let series = VictimPolicy::ALL
        .iter()
        .map(|&victim| Series {
            label: format!("blocking/{}", victim.label()),
            algorithm: CcAlgorithm::Blocking,
            victim,
        })
        .collect();
    ExperimentSpec {
        id: "ablation-victim",
        title: "Ablation: deadlock victim selection (blocking, 1 CPU / 2 disks)",
        params: Params::paper_baseline(),
        series,
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![view(
            "Ablation A",
            "Throughput by victim policy",
            FigureKind::Throughput,
        )],
    }
}

/// Extension ablation: deadlock prevention (wait-die, wound-wait,
/// no-waiting) vs. the paper's blocking algorithm.
#[must_use]
pub fn ablation_prevention() -> ExperimentSpec {
    let algos = [
        CcAlgorithm::Blocking,
        CcAlgorithm::StaticLocking,
        CcAlgorithm::WaitDie,
        CcAlgorithm::WoundWait,
        CcAlgorithm::NoWaiting,
    ];
    ExperimentSpec {
        id: "ablation-prevention",
        title: "Ablation: deadlock prevention vs. detection (1 CPU / 2 disks)",
        params: Params::paper_baseline(),
        series: algos.iter().copied().map(Series::paper).collect(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![view(
            "Ablation B",
            "Throughput by locking discipline",
            FigureKind::Throughput,
        )],
    }
}

/// Extension ablation: a mixed workload (90% small, 10% large 40–60 page
/// transactions) exposing large-transaction starvation under
/// restart-oriented concurrency control.
#[must_use]
pub fn ablation_mixed() -> ExperimentSpec {
    let mut params = Params::paper_baseline();
    params.primary_weight = 0.9;
    params.extra_classes.push(TxnClass {
        weight: 0.1,
        min_size: 40,
        max_size: 60,
        write_prob: 0.25,
    });
    ExperimentSpec {
        id: "ablation-mixed",
        title: "Ablation: mixed transaction sizes (10% large, 1 CPU / 2 disks)",
        params,
        series: Series::paper_trio(),
        mpls: vec![5, 10, 25, 50],
        restart_delay_for_all: false,
        views: vec![view(
            "Ablation C",
            "Throughput with 10% large transactions",
            FigureKind::Throughput,
        )],
    }
}

/// Extension ablation: locking vs. basic timestamp ordering vs. optimistic
/// — the comparison behind the `[Gall82]`/`[Lin83]` contradiction the paper's
/// introduction cites, rerun inside one consistent model.
#[must_use]
pub fn ablation_tso() -> ExperimentSpec {
    let algos = [
        CcAlgorithm::Blocking,
        CcAlgorithm::BasicTO,
        CcAlgorithm::Optimistic,
    ];
    ExperimentSpec {
        id: "ablation-tso",
        title: "Ablation: locking vs. basic timestamp ordering (1 CPU / 2 disks)",
        params: Params::paper_baseline(),
        series: algos.iter().copied().map(Series::paper).collect(),
        mpls: paper_mpls(),
        restart_delay_for_all: false,
        views: vec![view(
            "Ablation D",
            "Throughput: 2PL vs basic T/O vs optimistic",
            FigureKind::Throughput,
        )],
    }
}

/// Every experiment, in the paper's order.
///
/// Deliberately excludes [`exp_scale`]: a million-terminal run does not
/// belong in a `repro all` sweep. It is reachable by id only.
#[must_use]
pub fn all() -> Vec<ExperimentSpec> {
    vec![
        exp1_infinite(),
        exp1_finite(),
        exp2(),
        exp3(),
        exp3_delay(),
        exp4_small(),
        exp4_large(),
        exp5_1s(),
        exp5_5s(),
        exp5_10s(),
        ablation_victim(),
        ablation_prevention(),
        ablation_mixed(),
        ablation_tso(),
    ]
}

/// Look up an experiment by id. Covers the paper catalog plus the
/// `exp-scale` extension, which [`all`] omits.
#[must_use]
pub fn by_id(id: &str) -> Option<ExperimentSpec> {
    if id == "exp-scale" {
        return Some(exp_scale());
    }
    all().into_iter().find(|e| e.id == id)
}

/// All experiments whose id starts with `prefix` followed by `-` (or
/// matches exactly) — so `"exp1"` selects both `exp1-inf` and `exp1-1x2`.
#[must_use]
pub fn by_id_prefix(prefix: &str) -> Vec<ExperimentSpec> {
    all()
        .into_iter()
        .filter(|e| {
            e.id == prefix
                || (e.id.len() > prefix.len()
                    && e.id.starts_with(prefix)
                    && e.id.as_bytes()[prefix.len()] == b'-')
        })
        .collect()
}

/// Find the experiment that regenerates a given paper figure (e.g.
/// `"fig5"`, `"Figure 5"`, `"5"`).
#[must_use]
pub fn by_figure(fig: &str) -> Option<ExperimentSpec> {
    let digits: String = fig.chars().filter(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    let want = format!("Figure {digits}");
    all()
        .into_iter()
        .find(|e| e.views.iter().any(|v| v.figure == want))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_paper_figure() {
        let figures: Vec<String> = all()
            .iter()
            .flat_map(|e| e.views.iter().map(|v| v.figure.to_string()))
            .collect();
        for n in 3..=21 {
            let want = format!("Figure {n}");
            assert!(figures.contains(&want), "{want} missing from catalog");
        }
    }

    #[test]
    fn modern_protocols_ride_the_exp1_exp2_sweeps() {
        for id in ["exp1-inf", "exp1-1x2", "exp2"] {
            let e = by_id(id).unwrap();
            let labels: Vec<&str> = e.series.iter().map(|s| s.label.as_str()).collect();
            assert_eq!(
                labels,
                [
                    "blocking",
                    "immediate-restart",
                    "optimistic",
                    "mvcc-si",
                    "silo-occ",
                    "tictoc"
                ],
                "{id}: the trio must stay first (seed stability), moderns appended"
            );
        }
    }

    #[test]
    fn ids_are_unique() {
        use std::collections::HashSet;
        let ids: HashSet<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), all().len());
    }

    #[test]
    fn all_specs_validate() {
        for e in all() {
            for s in &e.series {
                let cfg = e.config(s, e.mpls[0], ccsim_core::MetricsConfig::quick(), 1);
                assert!(cfg.validate().is_ok(), "{} failed validation", e.id);
            }
        }
    }

    #[test]
    fn exp_scale_resolves_by_id_but_stays_out_of_all() {
        let e = by_id("exp-scale").unwrap();
        assert_eq!(e.id, "exp-scale");
        assert_eq!(e.params.db_size, 100_000_000);
        assert_eq!(e.params.num_terms, 1_000_000);
        assert!(e.mpls.iter().all(|&m| m >= 100_000));
        assert!(all().iter().all(|x| x.id != "exp-scale"));
        // Its configs must still validate like any catalog entry.
        for s in &e.series {
            let cfg = e.config(s, e.mpls[0], ccsim_core::MetricsConfig::quick(), 1);
            assert!(cfg.validate().is_ok(), "exp-scale failed validation");
        }
    }

    #[test]
    fn lookup_by_id_and_figure() {
        assert_eq!(by_id("exp2").unwrap().id, "exp2");
        assert!(by_id("nope").is_none());
        assert_eq!(by_figure("fig5").unwrap().id, "exp2");
        assert_eq!(by_figure("Figure 11").unwrap().id, "exp3-delay");
        assert_eq!(by_figure("21").unwrap().id, "exp5-10s");
        assert!(by_figure("fig99").is_none());
        assert!(by_figure("nodigits").is_none());
    }

    #[test]
    fn lookup_by_id_prefix() {
        let ids: Vec<&str> = by_id_prefix("exp1").iter().map(|e| e.id).collect();
        assert_eq!(ids, vec!["exp1-inf", "exp1-1x2"]);
        // Exact ids resolve to themselves; a bare prefix never matches a
        // longer word without the dash separator.
        assert_eq!(by_id_prefix("exp2").len(), 1);
        assert!(by_id_prefix("exp").is_empty());
        assert!(by_id_prefix("nope").is_empty());
    }

    #[test]
    fn exp5_raises_think_times() {
        let e = exp5_10s();
        assert_eq!(e.params.int_think_time, SimDuration::from_secs(10));
        assert_eq!(e.params.ext_think_time, SimDuration::from_secs(21));
    }

    #[test]
    fn fig11_sets_delay_for_all() {
        let e = exp3_delay();
        assert!(e.restart_delay_for_all);
        assert_eq!(e.params.restart_delay, RestartDelayPolicy::Adaptive);
    }
}
