//! The checkpoint manifest: a JSONL journal of completed runs that makes
//! sweeps resumable.
//!
//! The supervisor appends one line per completed `(series, mpl, rep)` run
//! — the full [`Report`], losslessly — after a header line that pins the
//! sweep's identity (spec id, seed, fidelity, replications, grid, audit
//! flag). `repro --resume` replays the manifest, skips completed runs, and
//! re-runs only what's missing; because every run's seeds derive from its
//! grid coordinates (not from scheduling), the resumed sweep's final
//! output is byte-identical to an uninterrupted one.
//!
//! Every update rewrites the whole file to a sibling temp file and renames
//! it into place, so a crash mid-write never leaves a truncated manifest.
//! Floats are written with Rust's shortest round-trip formatting (plus the
//! `NaN`/`inf`/`-inf` lexemes) so a parsed-back report is bit-identical to
//! the one that was recorded. Failed runs are deliberately *not*
//! journaled: resume retries them.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use ccsim_core::{ClassReport, Estimate, Report};

use crate::json::{self, Value};
use crate::runner::RunOptions;
use crate::spec::ExperimentSpec;

/// Manifest format version (bump on incompatible layout changes).
const VERSION: u64 = 1;

/// Why a manifest could not be opened or replayed.
#[derive(Debug)]
pub enum ManifestError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The file exists but is not a well-formed manifest.
    Corrupt(String),
    /// The file is a manifest for a *different* sweep (other seed,
    /// fidelity, grid, ...). Resuming it would splice incompatible runs.
    Mismatch(String),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest I/O error: {e}"),
            ManifestError::Corrupt(m) => write!(f, "corrupt manifest: {m}"),
            ManifestError::Mismatch(m) => write!(f, "manifest mismatch: {m}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// One completed run, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Series index into the spec's `series`.
    pub series_ix: usize,
    /// Multiprogramming level.
    pub mpl: u32,
    /// Replication index.
    pub rep: u32,
    /// Audit summary lines from this run (empty when clean or unaudited).
    pub audit: Vec<String>,
    /// The run's report, bit-identical to the original.
    pub report: Report,
}

/// Write `contents` to `path` atomically: write a sibling `*.tmp` file,
/// then rename it into place. A crash mid-write leaves either the old
/// file or nothing — never a truncated result.
///
/// # Errors
/// Returns the underlying I/O error from the write or rename.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// An open checkpoint manifest bound to one sweep.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    header: String,
    entries: Vec<ManifestEntry>,
    warnings: Vec<String>,
}

impl Manifest {
    /// Open the manifest at `path` for the sweep `(spec, opts)`. With
    /// `resume` set and an existing file, the header is validated against
    /// the sweep and completed entries are loaded; otherwise a fresh
    /// manifest (header only) replaces whatever was there.
    ///
    /// A *final* entry line that fails to parse is tolerated: it is the
    /// signature of a crash mid-append (a writer that died between write
    /// and rename, or an appending journal cut short), so the partial
    /// record is discarded with a note in [`Manifest::warnings`] and the
    /// run it described is simply re-run. Corruption anywhere *before* the
    /// last line is still a hard [`ManifestError::Corrupt`] — that is not
    /// what a crash produces.
    ///
    /// # Errors
    /// [`ManifestError::Mismatch`] when resuming a manifest recorded for a
    /// different sweep, [`ManifestError::Corrupt`] on unparseable content,
    /// or [`ManifestError::Io`] on filesystem trouble.
    pub fn open(
        path: &Path,
        spec: &ExperimentSpec,
        opts: &RunOptions,
        resume: bool,
    ) -> Result<Manifest, ManifestError> {
        let header = header_line(spec, opts);
        let mut manifest = Manifest {
            path: path.to_path_buf(),
            header,
            entries: Vec::new(),
            warnings: Vec::new(),
        };
        if resume && path.exists() {
            let text = std::fs::read_to_string(path)?;
            let mut lines = text.lines().filter(|l| !l.trim().is_empty());
            let found = lines
                .next()
                .ok_or_else(|| ManifestError::Corrupt("empty manifest".into()))?;
            if found != manifest.header {
                return Err(ManifestError::Mismatch(format!(
                    "manifest at {} was recorded for a different sweep \
                     (header {found:?}, expected {:?})",
                    path.display(),
                    manifest.header
                )));
            }
            let lines: Vec<&str> = lines.collect();
            for (i, line) in lines.iter().enumerate() {
                match parse_entry(line) {
                    Ok(entry) => manifest.entries.push(entry),
                    Err(e) if i + 1 == lines.len() => {
                        manifest.warnings.push(format!(
                            "discarded truncated final manifest entry {} ({e}); \
                             its run will be re-executed",
                            i + 1
                        ));
                    }
                    Err(e) => {
                        return Err(ManifestError::Corrupt(format!("entry {}: {e}", i + 1)));
                    }
                }
            }
        } else {
            manifest.flush()?;
        }
        Ok(manifest)
    }

    /// Journal one completed run and flush the manifest atomically.
    ///
    /// # Errors
    /// Returns the underlying I/O error.
    pub fn record(&mut self, entry: ManifestEntry) -> io::Result<()> {
        self.entries.push(entry);
        self.flush()
    }

    fn flush(&self) -> io::Result<()> {
        let mut out = String::with_capacity(256 * (self.entries.len() + 1));
        out.push_str(&self.header);
        out.push('\n');
        for e in &self.entries {
            entry_line(e, &mut out);
            out.push('\n');
        }
        write_atomic(&self.path, out.as_bytes())
    }

    /// The journaled runs, in completion order.
    #[must_use]
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Grid coordinates of every journaled run.
    #[must_use]
    pub fn completed(&self) -> HashSet<(usize, u32, u32)> {
        self.entries
            .iter()
            .map(|e| (e.series_ix, e.mpl, e.rep))
            .collect()
    }

    /// Non-fatal anomalies noticed while replaying the manifest (for now:
    /// a discarded truncated final entry). Callers should surface these to
    /// the user.
    #[must_use]
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }
}

/// The identity header pinning which sweep a manifest belongs to.
fn header_line(spec: &ExperimentSpec, opts: &RunOptions) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"kind\":\"ccsim-manifest\",\"version\":{VERSION},\"id\":"
    );
    json::escape(spec.id, &mut out);
    let _ = write!(
        out,
        ",\"base_seed\":{},\"fidelity\":\"{}\",\"replications\":{},\"audit\":{}",
        opts.base_seed,
        opts.fidelity.token(),
        opts.replications.max(1),
        opts.audit
    );
    out.push_str(",\"series\":[");
    for (i, s) in spec.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape(&s.label, &mut out);
    }
    out.push_str("],\"mpls\":[");
    for (i, m) in spec.mpls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{m}");
    }
    out.push_str("]}");
    out
}

/// Lossless float: shortest round-trip decimal, with `NaN`/`inf`/`-inf`
/// lexemes for non-finite values (accepted back by `json::parse`).
fn float(v: f64, out: &mut String) {
    let _ = write!(out, "{v}");
}

fn estimate(e: Estimate, out: &mut String) {
    out.push('[');
    float(e.mean, out);
    out.push(',');
    float(e.half_width, out);
    out.push(']');
}

fn entry_line(e: &ManifestEntry, out: &mut String) {
    let _ = write!(
        out,
        "{{\"series\":{},\"mpl\":{},\"rep\":{}",
        e.series_ix, e.mpl, e.rep
    );
    if !e.audit.is_empty() {
        out.push_str(",\"audit\":[");
        for (i, a) in e.audit.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape(a, out);
        }
        out.push(']');
    }
    out.push_str(",\"report\":");
    report_json(&e.report, out);
    out.push('}');
}

fn report_json(r: &Report, out: &mut String) {
    out.push_str("{\"throughput\":");
    estimate(r.throughput, out);
    out.push_str(",\"throughput_per_batch\":[");
    for (i, v) in r.throughput_per_batch.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        float(*v, out);
    }
    out.push_str("],\"throughput_lag1\":");
    float(r.throughput_lag1, out);
    for (key, v) in [
        ("response_time_mean", r.response_time_mean),
        ("response_time_std", r.response_time_std),
        ("response_time_max", r.response_time_max),
        ("response_time_p50", r.response_time_p50),
        ("response_time_p95", r.response_time_p95),
        ("response_time_p99", r.response_time_p99),
        ("block_ratio", r.block_ratio),
        ("restart_ratio", r.restart_ratio),
    ] {
        let _ = write!(out, ",\"{key}\":");
        float(v, out);
    }
    for (key, e) in [
        ("disk_util_total", r.disk_util_total),
        ("disk_util_useful", r.disk_util_useful),
        ("cpu_util_total", r.cpu_util_total),
        ("cpu_util_useful", r.cpu_util_useful),
    ] {
        let _ = write!(out, ",\"{key}\":");
        estimate(e, out);
    }
    out.push_str(",\"avg_active\":");
    float(r.avg_active, out);
    out.push_str(",\"classes\":[");
    for (i, c) in r.class_reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"commits\":{},\"restarts\":{},\"restart_ratio\":",
            c.commits, c.restarts
        );
        float(c.restart_ratio, out);
        out.push_str(",\"response_time_mean\":");
        float(c.response_time_mean, out);
        out.push_str(",\"response_time_std\":");
        float(c.response_time_std, out);
        out.push('}');
    }
    let _ = write!(
        out,
        "],\"commits\":{},\"blocks\":{},\"restarts\":{},\"deadlocks\":{}}}",
        r.commits, r.blocks, r.restarts, r.deadlocks
    );
}

fn need<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| format!("key {key:?} is not a number"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("key {key:?} is not an integer"))
}

fn need_estimate(v: &Value, key: &str) -> Result<Estimate, String> {
    let arr = need(v, key)?
        .as_arr()
        .ok_or_else(|| format!("key {key:?} is not an estimate pair"))?;
    match arr {
        [m, h] => Ok(Estimate {
            mean: m.as_f64().ok_or_else(|| format!("{key:?} mean"))?,
            half_width: h.as_f64().ok_or_else(|| format!("{key:?} half-width"))?,
        }),
        _ => Err(format!("key {key:?} is not a [mean, half_width] pair")),
    }
}

fn parse_entry(line: &str) -> Result<ManifestEntry, String> {
    let v = json::parse(line)?;
    let audit = match v.get("audit") {
        None => Vec::new(),
        Some(a) => a
            .as_arr()
            .ok_or("audit is not an array")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(ToString::to_string)
                    .ok_or("audit entry is not a string".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?,
    };
    Ok(ManifestEntry {
        series_ix: usize::try_from(need_u64(&v, "series")?).map_err(|e| e.to_string())?,
        mpl: u32::try_from(need_u64(&v, "mpl")?).map_err(|e| e.to_string())?,
        rep: u32::try_from(need_u64(&v, "rep")?).map_err(|e| e.to_string())?,
        audit,
        report: parse_report(need(&v, "report")?)?,
    })
}

fn parse_report(v: &Value) -> Result<Report, String> {
    let classes = need(v, "classes")?
        .as_arr()
        .ok_or("classes is not an array")?
        .iter()
        .map(|c| {
            Ok(ClassReport {
                commits: need_u64(c, "commits")?,
                restarts: need_u64(c, "restarts")?,
                restart_ratio: need_f64(c, "restart_ratio")?,
                response_time_mean: need_f64(c, "response_time_mean")?,
                response_time_std: need_f64(c, "response_time_std")?,
            })
        })
        .collect::<Result<Vec<ClassReport>, String>>()?;
    Ok(Report {
        throughput: need_estimate(v, "throughput")?,
        throughput_per_batch: need(v, "throughput_per_batch")?
            .as_arr()
            .ok_or("throughput_per_batch is not an array")?
            .iter()
            .map(|x| x.as_f64().ok_or("batch throughput".to_string()))
            .collect::<Result<Vec<f64>, String>>()?,
        throughput_lag1: need_f64(v, "throughput_lag1")?,
        response_time_mean: need_f64(v, "response_time_mean")?,
        response_time_std: need_f64(v, "response_time_std")?,
        response_time_max: need_f64(v, "response_time_max")?,
        response_time_p50: need_f64(v, "response_time_p50")?,
        response_time_p95: need_f64(v, "response_time_p95")?,
        response_time_p99: need_f64(v, "response_time_p99")?,
        block_ratio: need_f64(v, "block_ratio")?,
        restart_ratio: need_f64(v, "restart_ratio")?,
        disk_util_total: need_estimate(v, "disk_util_total")?,
        disk_util_useful: need_estimate(v, "disk_util_useful")?,
        cpu_util_total: need_estimate(v, "cpu_util_total")?,
        cpu_util_useful: need_estimate(v, "cpu_util_useful")?,
        avg_active: need_f64(v, "avg_active")?,
        class_reports: classes,
        commits: need_u64(v, "commits")?,
        blocks: need_u64(v, "blocks")?,
        restarts: need_u64(v, "restarts")?,
        deadlocks: need_u64(v, "deadlocks")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::runner::Fidelity;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsim-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn sample_report(tps: f64) -> Report {
        Report {
            throughput: Estimate {
                mean: tps,
                half_width: 0.1 + tps / 3.0,
            },
            throughput_per_batch: vec![tps - 0.25, tps + 0.25, f64::NAN],
            throughput_lag1: -0.125,
            response_time_mean: 2.0,
            response_time_std: 1.0,
            response_time_max: f64::INFINITY,
            response_time_p50: 2.0,
            response_time_p95: 3.5,
            response_time_p99: 3.9,
            block_ratio: 0.5,
            restart_ratio: 0.25,
            disk_util_total: Estimate {
                mean: 0.9,
                half_width: 0.0,
            },
            disk_util_useful: Estimate {
                mean: 0.8,
                half_width: 0.0,
            },
            cpu_util_total: Estimate {
                mean: 0.3,
                half_width: 0.0,
            },
            cpu_util_useful: Estimate {
                mean: 0.1 + 0.2,
                half_width: 0.0,
            },
            avg_active: 4.2,
            class_reports: vec![ClassReport {
                commits: 10,
                restarts: 2,
                restart_ratio: 0.2,
                response_time_mean: 2.0,
                response_time_std: 1.0,
            }],
            commits: 10,
            blocks: 5,
            restarts: 2,
            deadlocks: 1,
        }
    }

    #[test]
    fn reports_round_trip_bit_exactly() {
        let r = sample_report(1.5);
        let mut line = String::new();
        entry_line(
            &ManifestEntry {
                series_ix: 2,
                mpl: 50,
                rep: 3,
                audit: vec!["blocking@50 rep 3: lock leak".into()],
                report: r.clone(),
            },
            &mut line,
        );
        let back = parse_entry(&line).expect("parses");
        assert_eq!(back.series_ix, 2);
        assert_eq!((back.mpl, back.rep), (50, 3));
        assert_eq!(back.audit.len(), 1);
        // NaN breaks PartialEq; compare through the serialized form, which
        // is exact because floats use shortest round-trip formatting.
        let mut reline = String::new();
        entry_line(&back, &mut reline);
        assert_eq!(line, reline);
        assert_eq!(back.report.commits, r.commits);
        assert_eq!(back.report.throughput, r.throughput);
        assert!(back.report.throughput_per_batch[2].is_nan());
        assert_eq!(back.report.response_time_max, f64::INFINITY);
    }

    #[test]
    fn open_record_reopen_replays_entries() {
        let dir = tmpdir("replay");
        let path = dir.join("exp3.manifest.jsonl");
        let spec = catalog::exp3();
        let opts = RunOptions::default();
        let mut m = Manifest::open(&path, &spec, &opts, false).expect("fresh manifest");
        assert!(m.entries().is_empty());
        m.record(ManifestEntry {
            series_ix: 0,
            mpl: 5,
            rep: 0,
            audit: Vec::new(),
            report: sample_report(1.0),
        })
        .expect("record");
        m.record(ManifestEntry {
            series_ix: 1,
            mpl: 25,
            rep: 0,
            audit: Vec::new(),
            report: sample_report(2.0),
        })
        .expect("record");
        let re = Manifest::open(&path, &spec, &opts, true).expect("resume");
        assert_eq!(re.entries().len(), 2);
        assert_eq!(re.completed(), HashSet::from([(0, 5, 0), (1, 25, 0)]));
        assert_eq!(re.entries()[1].report.throughput.mean, 2.0);
        // No stray temp file left behind.
        assert!(!dir.join("exp3.manifest.jsonl.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_sweeps_are_rejected() {
        let dir = tmpdir("mismatch");
        let path = dir.join("exp3.manifest.jsonl");
        let spec = catalog::exp3();
        let opts = RunOptions::default();
        Manifest::open(&path, &spec, &opts, false).expect("fresh manifest");
        // Different seed...
        let other = RunOptions {
            base_seed: 7,
            ..opts.clone()
        };
        assert!(matches!(
            Manifest::open(&path, &spec, &other, true),
            Err(ManifestError::Mismatch(_))
        ));
        // ...different fidelity...
        let other = RunOptions {
            fidelity: Fidelity::Quick,
            ..opts.clone()
        };
        assert!(matches!(
            Manifest::open(&path, &spec, &other, true),
            Err(ManifestError::Mismatch(_))
        ));
        // ...different grid.
        let mut other_spec = spec.clone();
        other_spec.mpls = vec![5];
        assert!(matches!(
            Manifest::open(&path, &other_spec, &opts, true),
            Err(ManifestError::Mismatch(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_interior_entries_are_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("exp3.manifest.jsonl");
        let spec = catalog::exp3();
        let opts = RunOptions::default();
        let mut m = Manifest::open(&path, &spec, &opts, false).expect("fresh manifest");
        m.record(ManifestEntry {
            series_ix: 0,
            mpl: 5,
            rep: 0,
            audit: Vec::new(),
            report: sample_report(1.0),
        })
        .expect("record");
        drop(m);
        // A bad line *followed by* a good one is corruption, not a crash
        // artifact: reject it.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "{\"series\":0,\"mpl\":5}");
        std::fs::write(&path, lines.join("\n") + "\n").expect("write");
        assert!(matches!(
            Manifest::open(&path, &spec, &opts, true),
            Err(ManifestError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_entry_is_discarded_with_a_warning() {
        let dir = tmpdir("torn-tail");
        let path = dir.join("exp3.manifest.jsonl");
        let spec = catalog::exp3();
        let opts = RunOptions::default();
        let mut m = Manifest::open(&path, &spec, &opts, false).expect("fresh manifest");
        m.record(ManifestEntry {
            series_ix: 0,
            mpl: 5,
            rep: 0,
            audit: Vec::new(),
            report: sample_report(1.0),
        })
        .expect("record");
        m.record(ManifestEntry {
            series_ix: 1,
            mpl: 25,
            rep: 0,
            audit: Vec::new(),
            report: sample_report(2.0),
        })
        .expect("record");
        drop(m);
        // Simulate a crash mid-append: cut the final line short.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.trim_end().len() - 40;
        std::fs::write(&path, &text[..cut]).expect("write");
        let re = Manifest::open(&path, &spec, &opts, true).expect("tolerant resume");
        assert_eq!(re.entries().len(), 1, "intact entry survives");
        assert_eq!(re.completed(), HashSet::from([(0, 5, 0)]));
        assert_eq!(re.warnings().len(), 1);
        assert!(
            re.warnings()[0].contains("truncated final manifest entry"),
            "{:?}",
            re.warnings()
        );
        // An untampered manifest reports no warnings.
        let clean = Manifest::open(&path, &spec, &opts, false).expect("fresh");
        assert!(clean.warnings().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_resume_open_truncates_stale_manifest() {
        let dir = tmpdir("truncate");
        let path = dir.join("exp3.manifest.jsonl");
        let spec = catalog::exp3();
        let opts = RunOptions::default();
        let mut m = Manifest::open(&path, &spec, &opts, false).expect("fresh");
        m.record(ManifestEntry {
            series_ix: 0,
            mpl: 5,
            rep: 0,
            audit: Vec::new(),
            report: sample_report(1.0),
        })
        .expect("record");
        let fresh = Manifest::open(&path, &spec, &opts, false).expect("fresh again");
        assert!(fresh.entries().is_empty());
        let reread = Manifest::open(&path, &spec, &opts, true).expect("resume");
        assert!(reread.entries().is_empty(), "old entries were discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
