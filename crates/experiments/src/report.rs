//! Rendering experiment results: fixed-width tables per figure, ASCII
//! sparkline plots, and the markdown blocks EXPERIMENTS.md is built from.

use std::fmt::Write as _;

use crate::spec::{ExperimentResult, FigureKind, FigureView};

/// Render one figure view as a fixed-width text table.
#[must_use]
pub fn render_view(result: &ExperimentResult, view: &FigureView) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {} — {}", view.figure, view.caption);
    let labels: Vec<&str> = result
        .spec
        .series
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    match view.kind {
        FigureKind::Throughput => {
            let _ = write!(out, "{:>5}", "mpl");
            for l in &labels {
                let _ = write!(out, "  {l:>24}");
            }
            let _ = writeln!(out);
            for &mpl in &result.spec.mpls {
                let _ = write!(out, "{mpl:>5}");
                for l in &labels {
                    match point(result, l, mpl) {
                        Some(r) => {
                            let _ = write!(
                                out,
                                "  {:>16.3} ±{:>6.3}",
                                r.throughput.mean, r.throughput.half_width
                            );
                        }
                        None => {
                            let _ = write!(out, "  {:>24}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        FigureKind::ConflictRatios => {
            let _ = write!(out, "{:>5}", "mpl");
            for l in &labels {
                let _ = write!(out, "  {:>24}", format!("{l} blk/rst"));
            }
            let _ = writeln!(out);
            for &mpl in &result.spec.mpls {
                let _ = write!(out, "{mpl:>5}");
                for l in &labels {
                    match point(result, l, mpl) {
                        Some(r) => {
                            let _ =
                                write!(out, "  {:>11.3} /{:>11.3}", r.block_ratio, r.restart_ratio);
                        }
                        None => {
                            let _ = write!(out, "  {:>24}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        FigureKind::ResponseTime => {
            let _ = write!(out, "{:>5}", "mpl");
            for l in &labels {
                let _ = write!(out, "  {:>24}", format!("{l} mean/sd (s)"));
            }
            let _ = writeln!(out);
            for &mpl in &result.spec.mpls {
                let _ = write!(out, "{mpl:>5}");
                for l in &labels {
                    match point(result, l, mpl) {
                        Some(r) => {
                            let _ = write!(
                                out,
                                "  {:>11.2} /{:>11.2}",
                                r.response_time_mean, r.response_time_std
                            );
                        }
                        None => {
                            let _ = write!(out, "  {:>24}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        FigureKind::DiskUtil => {
            let _ = write!(out, "{:>5}", "mpl");
            for l in &labels {
                let _ = write!(out, "  {:>24}", format!("{l} tot/useful"));
            }
            let _ = writeln!(out);
            for &mpl in &result.spec.mpls {
                let _ = write!(out, "{mpl:>5}");
                for l in &labels {
                    match point(result, l, mpl) {
                        Some(r) => {
                            let _ = write!(
                                out,
                                "  {:>10.1}% /{:>10.1}%",
                                100.0 * r.disk_util_total.mean,
                                100.0 * r.disk_util_useful.mean
                            );
                        }
                        None => {
                            let _ = write!(out, "  {:>24}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

fn point<'a>(
    result: &'a ExperimentResult,
    label: &str,
    mpl: u32,
) -> Option<&'a ccsim_core::Report> {
    result
        .points
        .iter()
        .find(|p| p.series == label && p.mpl == mpl)
        .map(|p| &p.report)
}

/// Render every view of an experiment.
#[must_use]
pub fn render_experiment(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} ({})\n", result.spec.title, result.spec.id);
    let reps = result.replications();
    if reps > 1 {
        let _ = writeln!(
            out,
            "{reps} replications per point; ± is the Student-t interval across replication means.\n"
        );
    }
    if result.interrupted {
        let _ = writeln!(
            out,
            "NOTE: sweep was interrupted; tables cover only the completed runs.\n"
        );
    }
    for view in &result.spec.views {
        out.push_str(&render_view(result, view));
        out.push('\n');
    }
    if !result.failures.is_empty() {
        let _ = writeln!(
            out,
            "Run failures ({}) — missing cells above are holes:",
            result.failures.len()
        );
        for f in &result.failures {
            let _ = writeln!(out, "  [HOLE] {f}");
        }
        out.push('\n');
    }
    out
}

/// A compact ASCII chart of one metric across mpl, one row per series.
/// Useful for eyeballing curve shapes in a terminal.
#[must_use]
pub fn ascii_chart(result: &ExperimentResult, width: usize) -> String {
    const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    let max = result
        .points
        .iter()
        .map(|p| p.report.throughput.mean)
        .fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return "(no data)\n".to_string();
    }
    let label_w = result
        .spec
        .series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(0);
    for s in &result.spec.series {
        let _ = write!(out, "{:>label_w$} |", s.label);
        for &mpl in &result.spec.mpls {
            let v = point(result, &s.label, mpl).map_or(0.0, |r| r.throughput.mean);
            let ix = ((v / max) * 8.0).round() as usize;
            for _ in 0..width.max(1) {
                out.push(BLOCKS[ix.min(8)]);
            }
        }
        let _ = writeln!(out, "| peak {:.2} tps", result.peak_throughput(&s.label));
    }
    let _ = write!(out, "{:>label_w$} +", "mpl");
    for &mpl in &result.spec.mpls {
        let cell = format!("{mpl}");
        let w = width.max(1);
        let _ = write!(out, "{cell:<w$}");
    }
    let _ = writeln!(out, "+");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::runner::{run_experiment, Fidelity, RunOptions};
    use crate::spec::ExperimentResult;

    fn small_result() -> ExperimentResult {
        let mut spec = catalog::exp3();
        spec.mpls = vec![5, 25];
        run_experiment(
            &spec,
            &RunOptions {
                fidelity: Fidelity::Quick,
                base_seed: 7,
                ..RunOptions::default()
            },
        )
        .expect("sweep completes")
    }

    #[test]
    fn tables_render_every_view_kind() {
        let mut result = small_result();
        // Force one of each view kind onto the result for rendering.
        result.spec.views = vec![
            crate::spec::FigureView {
                figure: "Figure 8",
                caption: "t",
                kind: FigureKind::Throughput,
            },
            crate::spec::FigureView {
                figure: "Figure 6",
                caption: "c",
                kind: FigureKind::ConflictRatios,
            },
            crate::spec::FigureView {
                figure: "Figure 10",
                caption: "r",
                kind: FigureKind::ResponseTime,
            },
            crate::spec::FigureView {
                figure: "Figure 9",
                caption: "d",
                kind: FigureKind::DiskUtil,
            },
        ];
        let text = render_experiment(&result);
        assert!(text.contains("Figure 8"));
        assert!(text.contains("Figure 6"));
        assert!(text.contains("blocking"));
        assert!(text.contains("optimistic"));
        // Two mpl rows per table.
        assert!(text.matches("\n    5").count() >= 4);
        assert!(text.matches("\n   25").count() >= 4);
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut result = small_result();
        result
            .points
            .retain(|p| p.mpl != 25 || p.series != "blocking");
        let text = render_view(&result, &result.spec.views[0].clone());
        assert!(text.contains('-'));
    }

    #[test]
    fn failures_and_interruption_render_explicitly() {
        let mut result = small_result();
        result
            .points
            .retain(|p| p.mpl != 25 || p.series != "blocking");
        result.failures.push(crate::spec::PointFailure {
            series: "blocking".to_string(),
            mpl: 25,
            rep: 0,
            kind: crate::spec::FailureKind::Panic,
            detail: "chaos: injected panic".to_string(),
            retry: crate::spec::RetryOutcome::NotAttempted,
        });
        result.interrupted = true;
        let text = render_experiment(&result);
        assert!(text.contains("Run failures (1)"));
        assert!(text.contains("[HOLE] blocking@25 rep 0 [panic]"));
        assert!(text.contains("sweep was interrupted"));
    }

    #[test]
    fn ascii_chart_has_one_row_per_series() {
        let result = small_result();
        let chart = ascii_chart(&result, 3);
        assert_eq!(chart.lines().count(), 4); // 3 series + axis
        assert!(chart.contains("blocking"));
        assert!(chart.contains("peak"));
    }

    #[test]
    fn ascii_chart_empty_result() {
        let mut result = small_result();
        for p in &mut result.points {
            p.report.throughput.mean = 0.0;
        }
        assert_eq!(ascii_chart(&result, 3), "(no data)\n");
    }
}
