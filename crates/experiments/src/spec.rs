//! Experiment definitions: what to run and which paper figures the runs
//! regenerate.

use ccsim_core::{CcAlgorithm, MetricsConfig, Params, Report, SimConfig, VictimPolicy};
use ccsim_stats::{paired_t, Confidence, PairedT};

/// Which observable a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Throughput (commits/second) vs. multiprogramming level.
    Throughput,
    /// Block ratio and restart ratio vs. multiprogramming level (Figure 6).
    ConflictRatios,
    /// Mean and standard deviation of response time (Figures 7, 10).
    ResponseTime,
    /// Total and useful disk utilization (Figures 9, 13, 15, 17, 19, 21).
    DiskUtil,
}

/// One figure regenerated from an experiment's runs.
#[derive(Debug, Clone)]
pub struct FigureView {
    /// Paper label, e.g. `"Figure 5"`.
    pub figure: &'static str,
    /// Caption from the paper.
    pub caption: &'static str,
    /// What it plots.
    pub kind: FigureKind,
}

/// One curve in a figure: a label plus the knobs that distinguish it from
/// the other curves (algorithm, victim policy).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Algorithm under test.
    pub algorithm: CcAlgorithm,
    /// Victim policy (blocking only; default elsewhere).
    pub victim: VictimPolicy,
}

impl Series {
    /// The standard series for one of the paper's algorithms.
    #[must_use]
    pub fn paper(algorithm: CcAlgorithm) -> Self {
        Series {
            label: algorithm.label().to_string(),
            algorithm,
            victim: VictimPolicy::Youngest,
        }
    }

    /// The paper's three curves.
    #[must_use]
    pub fn paper_trio() -> Vec<Series> {
        CcAlgorithm::PAPER_TRIO
            .iter()
            .copied()
            .map(Series::paper)
            .collect()
    }

    /// The paper's three curves plus the modern in-memory protocols
    /// (MVCC-SI, Silo OCC, TicToc). The moderns are appended *after* the
    /// trio: control seeds are derived per series index, so extending a
    /// sweep this way leaves the original curves' runs byte-identical.
    #[must_use]
    pub fn paper_trio_with_modern() -> Vec<Series> {
        let mut series = Series::paper_trio();
        series.extend(CcAlgorithm::MODERN_TRIO.iter().copied().map(Series::paper));
        series
    }
}

/// A full experiment: a parameter sweep whose runs regenerate one or more
/// figures.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Short stable identifier (CLI argument), e.g. `"exp2"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Base parameters; `mpl` is overridden per point.
    pub params: Params,
    /// The curves.
    pub series: Vec<Series>,
    /// The x-axis: multiprogramming levels.
    pub mpls: Vec<u32>,
    /// Apply the adaptive restart delay to every algorithm (Figure 11).
    pub restart_delay_for_all: bool,
    /// The figures these runs regenerate.
    pub views: Vec<FigureView>,
}

impl ExperimentSpec {
    /// Materialize the simulator configuration for one `(series, mpl)`
    /// point.
    #[must_use]
    pub fn config(
        &self,
        series: &Series,
        mpl: u32,
        metrics: MetricsConfig,
        seed: u64,
    ) -> SimConfig {
        let mut cfg = SimConfig::new(series.algorithm)
            .with_params(self.params.clone().with_mpl(mpl))
            .with_metrics(metrics)
            .with_seed(seed);
        cfg.victim = series.victim;
        cfg.restart_delay_for_all = self.restart_delay_for_all;
        cfg
    }

    /// Number of simulation runs this experiment needs.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.series.len() * self.mpls.len()
    }
}

/// One measured point: a series at one multiprogramming level.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Legend label of the series this point belongs to.
    pub series: String,
    /// Multiprogramming level.
    pub mpl: u32,
    /// The aggregate report. With one replication this is that run's
    /// report verbatim; with several, scalar metrics are averaged across
    /// replications and `report.throughput` carries the cross-replication
    /// mean with its Student-t half-width.
    pub report: Report,
    /// Per-replication reports, in replication order (always at least one).
    pub replicates: Vec<Report>,
}

impl DataPoint {
    /// A point measured by a single run (the aggregate *is* the run).
    #[must_use]
    pub fn single(series: String, mpl: u32, report: Report) -> Self {
        DataPoint {
            series,
            mpl,
            replicates: vec![report.clone()],
            report,
        }
    }

    /// Number of replications behind this point.
    #[must_use]
    pub fn replication_count(&self) -> usize {
        self.replicates.len().max(1)
    }
}

/// Why a grid point's run failed (see [`PointFailure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The run panicked; the supervisor caught the unwind.
    Panic,
    /// The run exceeded its [`ccsim_core::RunBudget`].
    Budget,
    /// The materialized configuration failed validation.
    Config,
}

impl FailureKind {
    /// Stable lowercase token used in JSON and the manifest.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Budget => "budget",
            FailureKind::Config => "config",
        }
    }

    /// Parse the token written by [`FailureKind::token`].
    #[must_use]
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FailureKind::Panic),
            "budget" => Some(FailureKind::Budget),
            "config" => Some(FailureKind::Config),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// How the supervisor's per-point retries went (see
/// [`crate::RetryPolicy`]). `attempts` counts every attempt made on the
/// point, including the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Retries were not enabled (or not applicable).
    NotAttempted,
    /// A retry at degraded (quick) fidelity produced a report that fills
    /// the hole; the original failure is still recorded and the point is
    /// not journaled, so a resumed sweep re-attempts it at full fidelity.
    Degraded {
        /// Total attempts, including the first failed one.
        attempts: u32,
    },
    /// A retry at *full* fidelity recovered the point. The report is
    /// bit-identical to one from an untroubled first attempt (seeds are
    /// coordinate-derived), so it is journaled and cacheable; the earlier
    /// failures stay on record here.
    Recovered {
        /// Total attempts, including the failed ones.
        attempts: u32,
    },
    /// Every attempt failed; the hole stands.
    Failed {
        /// Total attempts made before giving up.
        attempts: u32,
    },
}

impl RetryOutcome {
    /// Stable lowercase token used in JSON.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            RetryOutcome::NotAttempted => "not-attempted",
            RetryOutcome::Degraded { .. } => "degraded",
            RetryOutcome::Recovered { .. } => "recovered",
            RetryOutcome::Failed { .. } => "failed",
        }
    }

    /// Total attempts made on the point (0 for [`RetryOutcome::NotAttempted`],
    /// where only the single implicit attempt ran).
    #[must_use]
    pub fn attempts(self) -> u32 {
        match self {
            RetryOutcome::NotAttempted => 0,
            RetryOutcome::Degraded { attempts }
            | RetryOutcome::Recovered { attempts }
            | RetryOutcome::Failed { attempts } => attempts,
        }
    }

    /// Rebuild an outcome from its JSON parts: the token written by
    /// [`RetryOutcome::token`] plus the `retry_attempts` count (ignored
    /// for `"not-attempted"`). `None` for an unknown token.
    #[must_use]
    pub fn from_parts(token: &str, attempts: u32) -> Option<Self> {
        match token {
            "not-attempted" => Some(RetryOutcome::NotAttempted),
            "degraded" => Some(RetryOutcome::Degraded { attempts }),
            "recovered" => Some(RetryOutcome::Recovered { attempts }),
            "failed" => Some(RetryOutcome::Failed { attempts }),
            _ => None,
        }
    }
}

/// One failed run: a typed hole in the sweep grid. The sweep keeps going;
/// the failure is recorded here instead of aborting the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// Legend label of the affected series.
    pub series: String,
    /// Multiprogramming level of the affected point.
    pub mpl: u32,
    /// Replication index of the failed run.
    pub rep: u32,
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable detail (panic message, budget counters, ...).
    pub detail: String,
    /// Outcome of the optional one-shot quick retry.
    pub retry: RetryOutcome,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{} rep {} [{}] {}",
            self.series, self.mpl, self.rep, self.kind, self.detail
        )?;
        match self.retry {
            RetryOutcome::NotAttempted => Ok(()),
            RetryOutcome::Degraded { attempts } => {
                write!(f, " (quick retry filled the hole on attempt {attempts})")
            }
            RetryOutcome::Recovered { attempts } => {
                write!(f, " (recovered at full fidelity on attempt {attempts})")
            }
            RetryOutcome::Failed { attempts } => {
                write!(f, " (all {attempts} attempts failed)")
            }
        }
    }
}

/// All measured points of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The specification that produced it.
    pub spec: ExperimentSpec,
    /// Points, ordered by series then mpl.
    pub points: Vec<DataPoint>,
    /// Invariant-audit failures, one summary line per violating run
    /// (empty when auditing was off or every run was clean). See
    /// [`crate::RunOptions::audit`].
    pub audit_failures: Vec<String>,
    /// Failed runs — the typed holes in the grid. A `(series, mpl)` point
    /// whose every replication failed has no [`DataPoint`] at all; one
    /// whose retry succeeded has a (degraded) point *and* an entry here.
    pub failures: Vec<PointFailure>,
    /// True when the sweep was stopped early (ctrl-C or a supervisor stop
    /// request) — remaining points were never attempted.
    pub interrupted: bool,
    /// Non-fatal anomalies noticed by the supervisor (for now: a
    /// discarded truncated checkpoint-manifest entry). Advisory only —
    /// deliberately **not** serialized by [`crate::json::to_json`], so a
    /// resumed sweep's output stays byte-identical to an uninterrupted
    /// one. Callers should surface these to the user.
    pub warnings: Vec<String>,
}

impl ExperimentResult {
    /// The points of one series, ordered by mpl.
    #[must_use]
    pub fn series_points(&self, label: &str) -> Vec<&DataPoint> {
        let mut pts: Vec<&DataPoint> = self.points.iter().filter(|p| p.series == label).collect();
        pts.sort_by_key(|p| p.mpl);
        pts
    }

    /// Highest throughput of a series across the sweep (the paper's "best
    /// global throughput" comparisons).
    #[must_use]
    pub fn peak_throughput(&self, label: &str) -> f64 {
        self.series_points(label)
            .iter()
            .map(|p| p.report.throughput.mean)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Throughput of a series at a specific mpl, if measured.
    #[must_use]
    pub fn throughput_at(&self, label: &str, mpl: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.series == label && p.mpl == mpl)
            .map(|p| p.report.throughput.mean)
    }

    /// Replications behind this result (the maximum over its points; 1 for
    /// single-run sweeps).
    #[must_use]
    pub fn replications(&self) -> usize {
        self.points
            .iter()
            .map(DataPoint::replication_count)
            .max()
            .unwrap_or(1)
    }

    /// Per-replication mean throughputs of a series at one mpl, in
    /// replication order.
    #[must_use]
    pub fn rep_throughputs(&self, label: &str, mpl: u32) -> Option<Vec<f64>> {
        self.points
            .iter()
            .find(|p| p.series == label && p.mpl == mpl)
            .map(|p| p.replicates.iter().map(|r| r.throughput.mean).collect())
    }

    /// True when every attempted run succeeded and the sweep ran to the
    /// end of its grid.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && !self.interrupted
    }

    /// True when every grid point carries a full-fidelity measurement:
    /// the sweep ran to the end of its grid, there are no holes, and any
    /// recorded failures were [`RetryOutcome::Recovered`] at full
    /// fidelity (whose reports are bit-identical to untroubled runs).
    /// This is the cacheability criterion used by the sweep service — a
    /// degraded (quick-retry) fill or a standing hole is real data but
    /// not the sweep's canonical answer.
    #[must_use]
    pub fn fully_measured(&self) -> bool {
        !self.interrupted
            && self.holes().is_empty()
            && self
                .failures
                .iter()
                .all(|f| matches!(f.retry, RetryOutcome::Recovered { .. }))
    }

    /// `(series, mpl)` coordinates that have no data point at all — every
    /// replication failed (holes the renderers show as "—").
    #[must_use]
    pub fn holes(&self) -> Vec<(String, u32)> {
        let mut holes: Vec<(String, u32)> = self
            .failures
            .iter()
            .filter(|f| {
                !self
                    .points
                    .iter()
                    .any(|p| p.series == f.series && p.mpl == f.mpl)
            })
            .map(|f| (f.series.clone(), f.mpl))
            .collect();
        holes.sort();
        holes.dedup();
        holes
    }

    /// Paired Student-t comparison of two series at one mpl, pairing
    /// per-replication throughputs. Because the runner gives the same
    /// replication index the same workload stream in every series (common
    /// random numbers), the pairing cancels shared workload noise. `None`
    /// when either point is missing or there are fewer than two
    /// replications.
    #[must_use]
    pub fn paired_throughput_t(&self, a: &str, b: &str, mpl: u32) -> Option<PairedT> {
        let xa = self.rep_throughputs(a, mpl)?;
        let xb = self.rep_throughputs(b, mpl)?;
        paired_t(&xa, &xb, Confidence::Ninety)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ExperimentSpec {
        ExperimentSpec {
            id: "demo",
            title: "demo",
            params: Params::paper_baseline(),
            series: Series::paper_trio(),
            mpls: vec![5, 10],
            restart_delay_for_all: false,
            views: vec![FigureView {
                figure: "Figure 0",
                caption: "demo",
                kind: FigureKind::Throughput,
            }],
        }
    }

    #[test]
    fn config_materialization() {
        let spec = demo_spec();
        let cfg = spec.config(&spec.series[2], 10, MetricsConfig::quick(), 7);
        assert_eq!(cfg.algorithm, CcAlgorithm::Optimistic);
        assert_eq!(cfg.params.mpl, 10);
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.restart_delay_for_all);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn num_runs_is_grid_size() {
        assert_eq!(demo_spec().num_runs(), 6);
    }

    #[test]
    fn failure_kinds_round_trip_their_tokens() {
        for k in [FailureKind::Panic, FailureKind::Budget, FailureKind::Config] {
            assert_eq!(FailureKind::from_token(k.token()), Some(k));
        }
        assert_eq!(FailureKind::from_token("bogus"), None);
    }

    #[test]
    fn holes_are_points_with_no_data() {
        let result = ExperimentResult {
            spec: demo_spec(),
            points: vec![],
            audit_failures: vec![],
            warnings: vec![],
            failures: vec![
                PointFailure {
                    series: "blocking".into(),
                    mpl: 10,
                    rep: 0,
                    kind: FailureKind::Panic,
                    detail: "boom".into(),
                    retry: RetryOutcome::NotAttempted,
                },
                PointFailure {
                    series: "blocking".into(),
                    mpl: 10,
                    rep: 1,
                    kind: FailureKind::Budget,
                    detail: "over".into(),
                    retry: RetryOutcome::Failed { attempts: 3 },
                },
            ],
            interrupted: false,
        };
        assert!(!result.is_clean());
        assert_eq!(result.holes(), vec![("blocking".to_string(), 10)]);
        let shown = result.failures[0].to_string();
        assert!(shown.contains("blocking@10 rep 0 [panic] boom"), "{shown}");
    }

    #[test]
    fn retry_outcomes_round_trip_their_parts() {
        for o in [
            RetryOutcome::NotAttempted,
            RetryOutcome::Degraded { attempts: 2 },
            RetryOutcome::Recovered { attempts: 4 },
            RetryOutcome::Failed { attempts: 3 },
        ] {
            assert_eq!(RetryOutcome::from_parts(o.token(), o.attempts()), Some(o));
        }
        assert_eq!(RetryOutcome::from_parts("bogus", 1), None);
        assert_eq!(RetryOutcome::NotAttempted.attempts(), 0);
    }

    #[test]
    fn fully_measured_accepts_recovered_but_not_degraded_failures() {
        let report = Report {
            throughput: ccsim_core::Estimate {
                mean: 1.0,
                half_width: 0.1,
            },
            throughput_per_batch: vec![1.0],
            throughput_lag1: 0.0,
            response_time_mean: 1.0,
            response_time_std: 0.5,
            response_time_max: 2.0,
            response_time_p50: 1.0,
            response_time_p95: 1.5,
            response_time_p99: 1.9,
            block_ratio: 0.0,
            restart_ratio: 0.0,
            disk_util_total: ccsim_core::Estimate {
                mean: 0.5,
                half_width: 0.0,
            },
            disk_util_useful: ccsim_core::Estimate {
                mean: 0.5,
                half_width: 0.0,
            },
            cpu_util_total: ccsim_core::Estimate {
                mean: 0.5,
                half_width: 0.0,
            },
            cpu_util_useful: ccsim_core::Estimate {
                mean: 0.5,
                half_width: 0.0,
            },
            avg_active: 1.0,
            class_reports: vec![],
            commits: 10,
            blocks: 0,
            restarts: 0,
            deadlocks: 0,
        };
        let mut result = ExperimentResult {
            spec: demo_spec(),
            points: vec![DataPoint::single("blocking".into(), 10, report)],
            audit_failures: vec![],
            warnings: vec![],
            failures: vec![],
            interrupted: false,
        };
        assert!(result.fully_measured());
        result.failures.push(PointFailure {
            series: "blocking".into(),
            mpl: 10,
            rep: 0,
            kind: FailureKind::Panic,
            detail: "boom".into(),
            retry: RetryOutcome::Recovered { attempts: 2 },
        });
        // A recovered failure leaves no hole (its report landed) and the
        // report is full fidelity: still canonical.
        assert!(!result.is_clean());
        assert!(result.fully_measured());
        result.failures[0].retry = RetryOutcome::Degraded { attempts: 2 };
        assert!(!result.fully_measured(), "degraded fill is not canonical");
        result.failures[0].retry = RetryOutcome::Failed { attempts: 2 };
        result.points.clear();
        assert!(!result.fully_measured(), "a standing hole is not canonical");
        result.failures.clear();
        result.interrupted = true;
        assert!(!result.fully_measured());
    }

    #[test]
    fn paper_trio_labels() {
        let s = Series::paper_trio();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].label, "blocking");
        assert_eq!(s[1].label, "immediate-restart");
        assert_eq!(s[2].label, "optimistic");
    }

    #[test]
    fn modern_series_extend_the_trio_without_reordering_it() {
        let s = Series::paper_trio_with_modern();
        assert_eq!(s.len(), 6);
        // The first three must be the trio, unchanged: control seeds are
        // per series index, so the original curves stay byte-identical.
        for (a, b) in s.iter().zip(Series::paper_trio()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.algorithm, b.algorithm);
        }
        assert_eq!(s[3].label, "mvcc-si");
        assert_eq!(s[4].label, "silo-occ");
        assert_eq!(s[5].label, "tictoc");
    }
}
