//! Aggregation of per-replication reports into one summary report.
//!
//! Each replication is an independent simulation (own seed stream); its
//! report already carries a within-run batch means estimate. Across
//! replications the statistically defensible interval treats each
//! replication's mean as one observation ([`ccsim_stats::Replications`]),
//! which is what the aggregate's `throughput` (and utilization) estimates
//! carry. Scalar diagnostics are averaged, counters summed, extrema maxed.

use ccsim_core::{ClassReport, Estimate, Report};
use ccsim_stats::{Confidence, Replications};

/// Error returned by [`aggregate_reports`] when given no replications — a
/// grid point with zero surviving runs has no aggregate (the supervisor
/// records it as a hole instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoReplications;

impl std::fmt::Display for NoReplications {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cannot aggregate zero replications")
    }
}

impl std::error::Error for NoReplications {}

fn rep_estimate<I: IntoIterator<Item = f64>>(values: I, confidence: Confidence) -> Estimate {
    let mut reps = Replications::new(confidence);
    for v in values {
        reps.push(v);
    }
    reps.estimate()
}

fn mean_of<F: Fn(&Report) -> f64>(reports: &[Report], f: F) -> f64 {
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

fn max_of<F: Fn(&Report) -> f64>(reports: &[Report], f: F) -> f64 {
    reports.iter().map(f).fold(f64::NEG_INFINITY, f64::max)
}

fn sum_of<F: Fn(&Report) -> u64>(reports: &[Report], f: F) -> u64 {
    reports.iter().map(f).sum()
}

fn aggregate_classes(reports: &[Report]) -> Vec<ClassReport> {
    let classes = reports
        .iter()
        .map(|r| r.class_reports.len())
        .max()
        .unwrap_or(0);
    (0..classes)
        .map(|i| {
            let per_class: Vec<&ClassReport> = reports
                .iter()
                .filter_map(|r| r.class_reports.get(i))
                .collect();
            let n = per_class.len() as f64;
            let commits: u64 = per_class.iter().map(|c| c.commits).sum();
            let restarts: u64 = per_class.iter().map(|c| c.restarts).sum();
            ClassReport {
                commits,
                restarts,
                restart_ratio: if commits > 0 {
                    restarts as f64 / commits as f64
                } else {
                    0.0
                },
                response_time_mean: per_class.iter().map(|c| c.response_time_mean).sum::<f64>() / n,
                response_time_std: per_class.iter().map(|c| c.response_time_std).sum::<f64>() / n,
            }
        })
        .collect()
}

/// Collapse per-replication reports into one aggregate report.
///
/// With a single replication the input report is returned verbatim, so a
/// `--reps 1` sweep is bit-identical to a plain single-run sweep. With
/// several, interval-valued fields (`throughput`, the four utilizations)
/// become cross-replication Student-t estimates at `confidence`, scalar
/// metrics are averaged, `response_time_max` is maxed, event counters are
/// summed, and `throughput_per_batch` is the concatenation of every
/// replication's batch series (in replication order).
///
/// # Errors
/// Returns [`NoReplications`] if `replicates` is empty — a measured point
/// needs at least one run behind it.
pub fn aggregate_reports(
    replicates: &[Report],
    confidence: Confidence,
) -> Result<Report, NoReplications> {
    if replicates.is_empty() {
        return Err(NoReplications);
    }
    if replicates.len() == 1 {
        return Ok(replicates[0].clone());
    }
    Ok(Report {
        throughput: rep_estimate(replicates.iter().map(|r| r.throughput.mean), confidence),
        throughput_per_batch: replicates
            .iter()
            .flat_map(|r| r.throughput_per_batch.iter().copied())
            .collect(),
        throughput_lag1: mean_of(replicates, |r| r.throughput_lag1),
        response_time_mean: mean_of(replicates, |r| r.response_time_mean),
        response_time_std: mean_of(replicates, |r| r.response_time_std),
        response_time_max: max_of(replicates, |r| r.response_time_max),
        response_time_p50: mean_of(replicates, |r| r.response_time_p50),
        response_time_p95: mean_of(replicates, |r| r.response_time_p95),
        response_time_p99: mean_of(replicates, |r| r.response_time_p99),
        block_ratio: mean_of(replicates, |r| r.block_ratio),
        restart_ratio: mean_of(replicates, |r| r.restart_ratio),
        disk_util_total: rep_estimate(
            replicates.iter().map(|r| r.disk_util_total.mean),
            confidence,
        ),
        disk_util_useful: rep_estimate(
            replicates.iter().map(|r| r.disk_util_useful.mean),
            confidence,
        ),
        cpu_util_total: rep_estimate(replicates.iter().map(|r| r.cpu_util_total.mean), confidence),
        cpu_util_useful: rep_estimate(
            replicates.iter().map(|r| r.cpu_util_useful.mean),
            confidence,
        ),
        avg_active: mean_of(replicates, |r| r.avg_active),
        class_reports: aggregate_classes(replicates),
        commits: sum_of(replicates, |r| r.commits),
        blocks: sum_of(replicates, |r| r.blocks),
        restarts: sum_of(replicates, |r| r.restarts),
        deadlocks: sum_of(replicates, |r| r.deadlocks),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tps: f64, commits: u64) -> Report {
        Report {
            throughput: Estimate {
                mean: tps,
                half_width: 0.1,
            },
            throughput_per_batch: vec![tps - 0.5, tps + 0.5],
            throughput_lag1: 0.1,
            response_time_mean: tps / 2.0,
            response_time_std: 1.0,
            response_time_max: tps * 2.0,
            response_time_p50: 1.0,
            response_time_p95: 2.0,
            response_time_p99: 3.0,
            block_ratio: 0.2,
            restart_ratio: 0.4,
            disk_util_total: Estimate {
                mean: 0.8,
                half_width: 0.0,
            },
            disk_util_useful: Estimate {
                mean: 0.6,
                half_width: 0.0,
            },
            cpu_util_total: Estimate {
                mean: 0.3,
                half_width: 0.0,
            },
            cpu_util_useful: Estimate {
                mean: 0.25,
                half_width: 0.0,
            },
            avg_active: 10.0,
            class_reports: vec![ClassReport {
                commits,
                restarts: 2,
                restart_ratio: 2.0 / commits as f64,
                response_time_mean: 1.0,
                response_time_std: 0.5,
            }],
            commits,
            blocks: 7,
            restarts: 3,
            deadlocks: 1,
        }
    }

    #[test]
    fn single_replication_is_identity() {
        let r = report(10.0, 100);
        let agg = aggregate_reports(std::slice::from_ref(&r), Confidence::Ninety).unwrap();
        assert_eq!(agg, r);
    }

    #[test]
    fn multi_replication_summary() {
        let reps = [report(10.0, 100), report(12.0, 110), report(11.0, 90)];
        let agg = aggregate_reports(&reps, Confidence::Ninety).unwrap();
        assert!((agg.throughput.mean - 11.0).abs() < 1e-12);
        // Cross-replication CI: s^2 = 1, se = 1/sqrt(3), t90(2) = 2.919986.
        assert!((agg.throughput.half_width - 2.919986 / 3.0f64.sqrt()).abs() < 1e-5);
        assert_eq!(agg.commits, 300);
        assert_eq!(agg.blocks, 21);
        assert_eq!(agg.deadlocks, 3);
        assert_eq!(agg.throughput_per_batch.len(), 6);
        assert!((agg.response_time_max - 24.0).abs() < 1e-12);
        assert!((agg.block_ratio - 0.2).abs() < 1e-12);
        assert_eq!(agg.class_reports.len(), 1);
        assert_eq!(agg.class_reports[0].commits, 300);
        assert_eq!(agg.class_reports[0].restarts, 6);
        assert!((agg.class_reports[0].restart_ratio - 6.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_an_error_not_a_panic() {
        assert_eq!(
            aggregate_reports(&[], Confidence::Ninety),
            Err(NoReplications)
        );
        assert!(NoReplications.to_string().contains("zero replications"));
    }
}
