//! `ccsim-mvcc` — the multiversion concurrency control substrate
//! (snapshot isolation, after Larson et al.'s main-memory MVCC designs).
//!
//! Under snapshot isolation a transaction reads the database *as of its
//! attempt start* (its snapshot): writers never block or invalidate
//! readers, and version chains keep every committed version a live
//! snapshot might still need. The only conflict rule is
//! **first-committer-wins** at the commit point: a transaction aborts iff
//! some object in its write set has a version committed *after its
//! snapshot* — i.e. a concurrent transaction wrote the same object and
//! committed first. Read-write conflicts are never checked, which is
//! exactly why SI admits the classic write-skew anomaly; the history
//! oracle in `ccsim-history` detects and counts those rather than letting
//! them hide.
//!
//! Storage follows the workspace's sparse-table slot scheme: a
//! deterministic open-addressed [`ObjMap`] maps each touched object to a
//! slot in a chain arena, so memory follows write traffic rather than
//! `db_size` (at `db_size = 10^8` a dense chain table would be gigabytes).
//! Pruned chains return their slots through a free list.

#![warn(missing_docs)]
#![warn(clippy::all)]

use ccsim_des::SimTime;
use ccsim_workload::{ObjId, ObjMap, TxnId};

/// One committed version of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// When the writing transaction committed (the version's birth).
    pub committed_at: SimTime,
    /// The transaction that installed it.
    pub writer: TxnId,
}

/// A first-committer-wins conflict: the failing transaction's snapshot
/// predates a committed write to an object it wants to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiConflict {
    /// The contested object.
    pub obj: ObjId,
    /// When the first committer's version was installed.
    pub committed_at: SimTime,
    /// Who committed first.
    pub winner: TxnId,
}

/// The multiversion store: per-object version chains behind a sparse slot
/// table.
#[derive(Debug, Default)]
pub struct MvccManager {
    /// Object → slot in `chains`.
    slots: ObjMap<u32>,
    /// Version chains, oldest first. A vacated slot holds an empty chain
    /// and sits on the free list.
    chains: Vec<Vec<Version>>,
    /// Recyclable slots of pruned-away chains.
    free: Vec<u32>,
    commits: u64,
    conflicts: u64,
    versions_installed: u64,
}

impl MvccManager {
    /// An empty store (every object at its unversioned initial state).
    #[must_use]
    pub fn new() -> Self {
        MvccManager::default()
    }

    fn chain(&self, obj: ObjId) -> Option<&Vec<Version>> {
        self.slots.get(obj).map(|s| &self.chains[s as usize])
    }

    /// The latest committed version of `obj`, if any transaction has
    /// written it.
    #[must_use]
    pub fn latest(&self, obj: ObjId) -> Option<Version> {
        self.chain(obj).and_then(|c| c.last().copied())
    }

    /// The version a transaction with snapshot time `snapshot` reads:
    /// the newest version committed at or before the snapshot. `None`
    /// means the object's initial (unversioned) state.
    #[must_use]
    pub fn snapshot_read(&self, obj: ObjId, snapshot: SimTime) -> Option<Version> {
        let chain = self.chain(obj)?;
        // Chains are short (pruning trails the oldest live snapshot), so a
        // reverse scan beats a binary search in practice.
        chain
            .iter()
            .rev()
            .find(|v| v.committed_at <= snapshot)
            .copied()
    }

    /// First-committer-wins commit check for a transaction whose snapshot
    /// is `start`: on success, atomically install one new version per
    /// write-set object at commit time `now` and return how many versions
    /// were installed. Validation and installation are one logical step
    /// (the simulator performs both at a single event).
    ///
    /// # Errors
    /// Returns the first [`SiConflict`] found: some write-set object
    /// already has a version committed strictly after `start`.
    ///
    /// # Panics
    /// Panics if `now < start` (a commit cannot precede its snapshot).
    pub fn check_and_install(
        &mut self,
        start: SimTime,
        now: SimTime,
        writer: TxnId,
        writes: &[ObjId],
    ) -> Result<u32, SiConflict> {
        assert!(now >= start, "commit time precedes the snapshot");
        for &obj in writes {
            if let Some(v) = self.latest(obj) {
                if v.committed_at > start {
                    self.conflicts += 1;
                    return Err(SiConflict {
                        obj,
                        committed_at: v.committed_at,
                        winner: v.writer,
                    });
                }
            }
        }
        for &obj in writes {
            let slot = match self.slots.get(obj) {
                Some(s) => s as usize,
                None => {
                    let s = match self.free.pop() {
                        Some(s) => s as usize,
                        None => {
                            self.chains.push(Vec::new());
                            self.chains.len() - 1
                        }
                    };
                    self.slots.insert(
                        obj,
                        u32::try_from(s).expect("chain arena exceeds u32 slots"),
                    );
                    s
                }
            };
            self.chains[slot].push(Version {
                committed_at: now,
                writer,
            });
            self.versions_installed += 1;
        }
        self.commits += 1;
        Ok(u32::try_from(writes.len()).expect("write set exceeds u32"))
    }

    /// Garbage-collect versions no live snapshot can read: for each chain,
    /// keep every version committed after `horizon` plus the newest one at
    /// or before it (the version a snapshot at `horizon` reads). Chains
    /// left with nothing a future snapshot could distinguish from "latest
    /// only" keep that latest version; fully prunable chains release their
    /// slot. Returns how many versions were dropped.
    pub fn prune_before(&mut self, horizon: SimTime) -> usize {
        let mut dropped = 0;
        let mut vacated: Vec<ObjId> = Vec::new();
        for (obj, slot) in self.slots.iter() {
            let chain = &mut self.chains[slot as usize];
            let visible = chain
                .iter()
                .rposition(|v| v.committed_at <= horizon)
                .unwrap_or(0);
            if visible > 0 {
                chain.drain(..visible);
                dropped += visible;
            }
            if chain.is_empty() {
                vacated.push(obj);
            }
        }
        for obj in vacated {
            if let Some(slot) = self.slots.remove(obj) {
                self.free.push(slot);
            }
        }
        dropped
    }

    /// Number of objects with at least one committed version.
    #[must_use]
    pub fn tracked_objects(&self) -> usize {
        self.slots.len()
    }

    /// Total versions currently retained across all chains.
    #[must_use]
    pub fn live_versions(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Lifetime counters: `(commits, first_committer_conflicts,
    /// versions_installed)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.commits, self.conflicts, self.versions_installed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn o(v: u64) -> ObjId {
        ObjId(v)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn x(v: u64) -> TxnId {
        TxnId(v)
    }

    #[test]
    fn snapshot_reads_see_the_version_as_of_start() {
        let mut m = MvccManager::new();
        m.check_and_install(t(0), t(10), x(1), &[o(5)]).unwrap();
        m.check_and_install(t(10), t(20), x(2), &[o(5)]).unwrap();
        assert_eq!(m.snapshot_read(o(5), t(5)), None, "before any version");
        assert_eq!(m.snapshot_read(o(5), t(10)).unwrap().writer, x(1));
        assert_eq!(m.snapshot_read(o(5), t(15)).unwrap().writer, x(1));
        assert_eq!(m.snapshot_read(o(5), t(20)).unwrap().writer, x(2));
        assert_eq!(m.latest(o(5)).unwrap().writer, x(2));
        assert_eq!(m.live_versions(), 2);
    }

    #[test]
    fn first_committer_wins() {
        let mut m = MvccManager::new();
        // Two concurrent writers of obj 1: both snapshots at t=0.
        m.check_and_install(t(0), t(10), x(1), &[o(1)]).unwrap();
        let err = m.check_and_install(t(0), t(12), x(2), &[o(1)]).unwrap_err();
        assert_eq!(err.obj, o(1));
        assert_eq!(err.winner, x(1));
        assert_eq!(err.committed_at, t(10));
        // A writer whose snapshot includes the winner's commit is fine.
        assert!(m.check_and_install(t(10), t(15), x(3), &[o(1)]).is_ok());
        assert_eq!(m.counters(), (2, 1, 2));
    }

    #[test]
    fn failed_commit_installs_nothing() {
        let mut m = MvccManager::new();
        m.check_and_install(t(0), t(10), x(1), &[o(2)]).unwrap();
        // x2 writes obj1 *and* obj2; the obj2 conflict must abort the whole
        // commit before any obj1 version appears.
        assert!(m
            .check_and_install(t(0), t(11), x(2), &[o(1), o(2)])
            .is_err());
        assert_eq!(m.latest(o(1)), None);
        assert_eq!(m.live_versions(), 1);
    }

    #[test]
    fn disjoint_write_sets_never_conflict() {
        // The write-skew shape: both read {1, 2}, one writes 1, the other
        // writes 2, fully concurrent — SI commits both (the anomaly the
        // history oracle exists to count).
        let mut m = MvccManager::new();
        assert!(m.check_and_install(t(0), t(10), x(1), &[o(1)]).is_ok());
        assert!(m.check_and_install(t(0), t(11), x(2), &[o(2)]).is_ok());
    }

    #[test]
    fn read_only_commits_install_no_versions() {
        let mut m = MvccManager::new();
        assert_eq!(m.check_and_install(t(0), t(5), x(1), &[]).unwrap(), 0);
        assert_eq!(m.live_versions(), 0);
        assert_eq!(m.counters(), (1, 0, 0));
    }

    #[test]
    fn pruning_keeps_the_horizon_visible_version() {
        let mut m = MvccManager::new();
        m.check_and_install(t(0), t(10), x(1), &[o(1)]).unwrap();
        m.check_and_install(t(10), t(20), x(2), &[o(1)]).unwrap();
        m.check_and_install(t(20), t(30), x(3), &[o(1)]).unwrap();
        // No live snapshot predates t=25: the t=10 version is dead, the
        // t=20 version is what a t=25 snapshot reads, t=30 is the future.
        let dropped = m.prune_before(t(25));
        assert_eq!(dropped, 1);
        assert_eq!(m.snapshot_read(o(1), t(25)).unwrap().writer, x(2));
        assert_eq!(m.snapshot_read(o(1), t(30)).unwrap().writer, x(3));
        // First-committer-wins still works across the prune.
        assert!(m.check_and_install(t(25), t(40), x(4), &[o(1)]).is_err());
    }

    #[test]
    fn pruned_slots_are_recycled() {
        let mut m = MvccManager::new();
        m.check_and_install(t(0), t(1), x(1), &[o(1), o(2), o(3)])
            .unwrap();
        assert_eq!(m.tracked_objects(), 3);
        // Nothing here is prunable (each chain keeps its visible version).
        assert_eq!(m.prune_before(t(50)), 0);
        assert_eq!(m.tracked_objects(), 3);
        assert_eq!(m.live_versions(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// First-committer-wins agrees with the declarative rule: a commit
        /// fails iff a prior commit to one of its write objects happened
        /// strictly inside its (start, now] window.
        #[test]
        fn fcw_matches_interval_overlap_model(
            ops in proptest::collection::vec(
                (0u64..8, 0u64..20, 1u64..10), 1..40
            ),
        ) {
            let mut m = MvccManager::new();
            // Naive model: per object, list of commit times.
            let mut committed: Vec<(u64, u64)> = Vec::new(); // (obj, at)
            let mut clock = 0u64;
            for (i, &(obj, start_back, dur)) in ops.iter().enumerate() {
                clock += dur;
                let start = clock.saturating_sub(start_back);
                let now = clock;
                let expect_conflict = committed
                    .iter()
                    .any(|&(ob, at)| ob == obj && at > start);
                let got = m.check_and_install(
                    t(start),
                    t(now),
                    x(i as u64),
                    &[o(obj)],
                );
                prop_assert_eq!(
                    got.is_err(),
                    expect_conflict,
                    "op {} obj {} start {} now {}",
                    i, obj, start, now
                );
                if got.is_ok() {
                    committed.push((obj, now));
                }
            }
        }
    }
}
