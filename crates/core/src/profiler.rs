//! Feature-gated in-engine stage profiler.
//!
//! The steady-state event loop is partitioned into a handful of *stages*
//! (calendar pop, event handling, step dispatch, lock-table probing,
//! validation, variate generation). With the `stage-profiler` cargo feature
//! enabled, the engine timestamps every stage transition with the cheapest
//! cycle counter the platform offers (`rdtsc` on x86_64, a monotonic clock
//! elsewhere) and accumulates per-stage cycle and entry counts. Because the
//! stages partition the loop's timeline — every transition closes the
//! previous stage — the per-stage times sum to the whole loop by
//! construction, so the breakdown accounts for (nearly) all of the run's
//! wall time rather than sampling slices of it.
//!
//! With the feature **disabled** (the default), [`StageProfiler`] is a
//! zero-sized struct whose methods are empty `#[inline(always)]` bodies:
//! every call site compiles to nothing, the struct adds no bytes to the
//! simulator, and the steady-state loop contains no profiling code at all.
//! CI's `profile-overhead` job pins this by checking the default build
//! against the archived throughput floors.
//!
//! The profiler observes wall time only; it never reads or influences
//! simulation state, so reports are byte-identical with the feature on or
//! off.

/// Hot-loop stages. Attribution is *inclusive*: work triggered from a stage
/// (e.g. the grant cascade a lock release sets off) is charged to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Popping the next event off the calendar (lane/heap repair and the
    /// per-event budget checks included).
    Pop = 0,
    /// Event decode and completion bookkeeping: epoch filtering, resource
    /// pool completions, scheduling of consequent events.
    Handle = 1,
    /// The step interpreter: walking decoded programs, submitting CPU/disk
    /// services, admission.
    Dispatch = 2,
    /// Concurrency-control requests against the lock table (probe, queue,
    /// deadlock search) and the grant/abort cascades they trigger.
    LockTable = 3,
    /// Commit-point validation (OCC / SI / Silo / TicToc) and its cascades.
    Validate = 4,
    /// Workload variate generation: access specs, think times, restart
    /// delays.
    Variate = 5,
    /// Window-parallel mode: planning a window, publishing it to the worker
    /// pool, and the merge thread's share of chunk speculation.
    Speculate = 6,
    /// Window-parallel mode: applying planned events in global-seq order,
    /// including overlay drains and hint validation.
    Merge = 7,
    /// Window-parallel mode: discarding stale/conflicting speculation and
    /// replaying those events serially.
    Rollback = 8,
}

/// Number of distinct [`Stage`]s.
pub const STAGE_COUNT: usize = 9;

#[cfg_attr(not(feature = "stage-profiler"), allow(dead_code))]
const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "calendar-pop",
    "event-handle",
    "step-dispatch",
    "lock-table",
    "validation",
    "variate-gen",
    "speculate",
    "merge",
    "rollback",
];

/// One stage's share of a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSample {
    /// Stage name (stable, snake/kebab-case — used as a JSON key).
    pub name: &'static str,
    /// Cycles (or nanoseconds on non-x86_64) attributed to the stage.
    pub cycles: u64,
    /// Number of transitions *into* the stage.
    pub enters: u64,
    /// Fraction of the profiled loop time spent in the stage.
    pub frac: f64,
}

/// Per-stage breakdown of a completed run (feature `stage-profiler` only;
/// [`crate::Simulator::stage_profile`] returns `None` otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Per-stage samples, in [`Stage`] order.
    pub stages: Vec<StageSample>,
    /// Total cycles across all stages (the profiled loop span).
    pub total_cycles: u64,
    /// Wall-clock duration of the profiled loop span.
    pub wall: std::time::Duration,
}

impl StageProfile {
    /// Seconds attributed to stage `i`, scaling cycles to the measured wall
    /// span (cycle frequency is never assumed).
    #[must_use]
    pub fn stage_secs(&self, i: usize) -> f64 {
        self.wall.as_secs_f64() * self.stages[i].frac
    }

    /// Render the per-stage table, with `run_wall` as the denominator line
    /// (the engine's full event-loop wall time, which the profiled span
    /// must cover to ≥95% for the breakdown to be trustworthy).
    #[must_use]
    pub fn render(&self, run_wall: std::time::Duration) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<14} {:>14} {:>12} {:>8} {:>10}",
            "stage", "cycles", "enters", "share", "est. secs"
        );
        for (i, s) in self.stages.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:<14} {:>14} {:>12} {:>7.2}% {:>10.3}",
                s.name,
                s.cycles,
                s.enters,
                s.frac * 100.0,
                self.stage_secs(i)
            );
        }
        let covered = if run_wall.as_secs_f64() > 0.0 {
            self.wall.as_secs_f64() / run_wall.as_secs_f64()
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "  stages sum to {:.3} s = {:.1}% of the {:.3} s event loop",
            self.wall.as_secs_f64(),
            covered * 100.0,
            run_wall.as_secs_f64()
        );
        out
    }

    /// The fraction of `run_wall` the profiled span covers.
    #[must_use]
    pub fn covered_frac(&self, run_wall: std::time::Duration) -> f64 {
        if run_wall.as_secs_f64() > 0.0 {
            self.wall.as_secs_f64() / run_wall.as_secs_f64()
        } else {
            1.0
        }
    }
}

/// Is the stage profiler compiled into this build?
pub const STAGE_PROFILER_COMPILED: bool = cfg!(feature = "stage-profiler");

#[cfg(feature = "stage-profiler")]
mod imp {
    use super::{Stage, StageProfile, StageSample, STAGE_COUNT, STAGE_NAMES};

    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn now_cycles(_origin: std::time::Instant) -> u64 {
        // SAFETY: rdtsc has no preconditions; it reads the TSC.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn now_cycles(origin: std::time::Instant) -> u64 {
        origin.elapsed().as_nanos() as u64
    }

    /// The live accumulator (feature on). One instance per simulator.
    #[derive(Debug)]
    pub struct StageProfiler {
        cycles: [u64; STAGE_COUNT],
        enters: [u64; STAGE_COUNT],
        cur: usize,
        last: u64,
        origin: std::time::Instant,
        started_at: Option<std::time::Instant>,
        wall: std::time::Duration,
        running: bool,
    }

    impl StageProfiler {
        pub fn new() -> Self {
            StageProfiler {
                cycles: [0; STAGE_COUNT],
                enters: [0; STAGE_COUNT],
                cur: 0,
                last: 0,
                origin: std::time::Instant::now(),
                started_at: None,
                wall: std::time::Duration::ZERO,
                running: false,
            }
        }

        /// Open the profiled span; subsequent time accrues to `first`.
        #[inline(always)]
        pub fn start(&mut self, first: Stage) {
            self.cur = first as usize;
            self.enters[self.cur] += 1;
            self.last = now_cycles(self.origin);
            self.started_at = Some(std::time::Instant::now());
            self.running = true;
        }

        /// Close the previous stage and start accruing to `stage`.
        #[inline(always)]
        pub fn switch(&mut self, stage: Stage) {
            let now = now_cycles(self.origin);
            self.cycles[self.cur] += now.wrapping_sub(self.last);
            self.last = now;
            self.cur = stage as usize;
            self.enters[self.cur] += 1;
        }

        /// Close the profiled span (idempotent).
        #[inline(always)]
        pub fn stop(&mut self) {
            if !self.running {
                return;
            }
            let now = now_cycles(self.origin);
            self.cycles[self.cur] += now.wrapping_sub(self.last);
            self.last = now;
            if let Some(at) = self.started_at.take() {
                self.wall += at.elapsed();
            }
            self.running = false;
        }

        pub fn report(&self) -> Option<StageProfile> {
            let total: u64 = self.cycles.iter().sum();
            let stages = (0..STAGE_COUNT)
                .map(|i| StageSample {
                    name: STAGE_NAMES[i],
                    cycles: self.cycles[i],
                    enters: self.enters[i],
                    frac: if total > 0 {
                        self.cycles[i] as f64 / total as f64
                    } else {
                        0.0
                    },
                })
                .collect();
            Some(StageProfile {
                stages,
                total_cycles: total,
                wall: self.wall,
            })
        }
    }
}

#[cfg(not(feature = "stage-profiler"))]
mod imp {
    use super::{Stage, StageProfile};

    /// The compiled-out profiler: a zero-sized type whose methods are empty
    /// and always inlined, so call sites vanish entirely.
    #[derive(Debug)]
    pub struct StageProfiler;

    impl StageProfiler {
        #[inline(always)]
        pub fn new() -> Self {
            StageProfiler
        }
        #[inline(always)]
        pub fn start(&mut self, _first: Stage) {}
        #[inline(always)]
        pub fn switch(&mut self, _stage: Stage) {}
        #[inline(always)]
        pub fn stop(&mut self) {}
        #[inline(always)]
        pub fn report(&self) -> Option<StageProfile> {
            None
        }
    }
}

pub(crate) use imp::StageProfiler;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "stage-profiler"))]
    #[test]
    fn compiled_out_profiler_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<StageProfiler>(), 0);
        let mut p = StageProfiler::new();
        p.start(Stage::Pop);
        p.switch(Stage::Dispatch);
        p.stop();
        assert!(p.report().is_none());
        assert_eq!(STAGE_PROFILER_COMPILED, cfg!(feature = "stage-profiler"));
    }

    #[cfg(feature = "stage-profiler")]
    #[test]
    fn stage_fractions_partition_the_span() {
        let mut p = StageProfiler::new();
        p.start(Stage::Pop);
        for _ in 0..100 {
            p.switch(Stage::Handle);
            p.switch(Stage::Dispatch);
            p.switch(Stage::Pop);
        }
        p.stop();
        let r = p.report().expect("feature on");
        assert_eq!(r.stages.len(), STAGE_COUNT);
        let sum: f64 = r.stages.iter().map(|s| s.frac).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        assert_eq!(r.stages[Stage::Pop as usize].enters, 101);
        assert_eq!(r.stages[Stage::Handle as usize].enters, 100);
        assert_eq!(STAGE_PROFILER_COMPILED, cfg!(feature = "stage-profiler"));
        let table = r.render(r.wall);
        assert!(table.contains("calendar-pop"));
    }
}
