//! Speculative window-parallel execution: shared worker-pool state and the
//! read-only chunk-speculation lanes.
//!
//! The merge thread (the thread driving [`crate::Simulator`]) pops a safe
//! time window of events off the calendar, publishes a frozen [`SpecView`]
//! of the engine to a pool of worker lanes, and *helps* claim chunks
//! itself. Workers do strictly read-only work per planned event — resolve
//! the target `(terminal, epoch)`, check the arena epoch, predict the next
//! concurrency-control object from the transaction's program counter, pull
//! the lock-table home line into cache, and record a validation *hint* —
//! then the merge thread applies every event serially in global-seq order.
//! Because the merge is serial and the speculation mutates nothing,
//! reports, streaming quantiles, and golden traces are byte-identical to
//! the sequential engine at any worker count; the speedup comes from
//! resolving the window's DRAM misses (lock-table home slots, arena
//! regions, pool payloads) concurrently before the serial pass needs them.
//!
//! # Window protocol (and why it cannot use-after-free)
//!
//! The shared state is one [`WindowShared`]; the per-window [`SpecView`]
//! lives on the merge thread's stack and is only reachable through
//! `WindowShared::view` while the window's generation is *odd*:
//!
//! 1. **Publish** — merge stores the view pointer, chunk count, and the
//!    claim-ticket base, then bumps the generation to odd (`Release`).
//! 2. **Speculate** — a worker that observes an odd, not-yet-handled
//!    generation registers in `outstanding` (`SeqCst`), re-checks the
//!    generation (if it moved on, it deregisters and retries), and then
//!    claims chunk tickets from the monotone `claim` counter. The merge
//!    thread runs the same claim loop, so every chunk is speculated even
//!    with zero live workers (e.g. on a one-core host).
//! 3. **Close + quiesce** — when the tickets run out, merge bumps the
//!    generation to even (`SeqCst`) and spins until `outstanding == 0`.
//!    A late worker either re-checks the now-even generation and leaves,
//!    or is already registered — in which case merge is still waiting on
//!    it. Only after quiescence does merge mutate engine state, so no
//!    lane ever dereferences the view concurrently with a mutation.
//!
//! The claim counter is *monotone across windows* (each publish re-bases
//! it instead of resetting it), so a stale ticket from a previous window
//! decodes to an out-of-range chunk index and is discarded — tickets can
//! never alias a chunk of a newer window.
//!
//! A panicking worker lane marks the window `poisoned` (its registration
//! is released by the catch-unwind path, so quiescence still completes)
//! and the merge thread re-raises the failure as a panic, which the sweep
//! supervisor already converts into a typed per-point failure hole.

use std::cell::UnsafeCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use ccsim_des::{ExpBlock, ExpRefill, SimTime, Xoshiro256StarStar};
use ccsim_lockmgr::LockManager;
use ccsim_resources::{DiskArray, ServerPool};

use crate::algorithm::CcAlgorithm;
use crate::arena::TxnArena;
use crate::engine::{Event, Payload};
use crate::txn::Step;

/// Planned events per speculation chunk: one claim ticket's worth of work.
/// Small enough that lanes load-balance within a window, large enough that
/// the ticket counter is not contended.
pub(crate) const CHUNK: usize = 64;

/// Hard cap on planned events per window. Windows are usually closed
/// earlier by the time horizon or a batch boundary.
pub(crate) const WINDOW_CAP: usize = 4096;

/// Maximum tracked lanes (merge thread is lane 0). Worker counts above
/// this still run; only per-lane busy attribution saturates.
pub const MAX_LANES: usize = 8;

/// Hint kinds (low 3 bits of a hint word).
pub(crate) const HINT_NONE: u64 = 0;
/// The target transaction's epoch had already moved on at speculation time.
pub(crate) const HINT_STALE: u64 = 1;
/// Target resolved and epoch-checked; no lock-table touch predicted.
pub(crate) const HINT_CHECKED: u64 = 2;
/// Target resolved; the predicted lock-table home line was prefetched.
pub(crate) const HINT_LOCKSTEP: u64 = 3;
/// Two events in one chunk hash to the same lock-table home slot: a
/// cross-shard interaction, conservatively demoted to serial replay.
pub(crate) const HINT_CONFLICT: u64 = 4;

/// Pack a hint word: kind (3 bits) | terminal (29 bits) | epoch (32 bits).
#[inline]
pub(crate) fn encode_hint(kind: u64, term: usize, epoch: u32) -> u64 {
    debug_assert!(kind < 8);
    debug_assert!(term < (1 << 29));
    kind | ((term as u64) << 3) | (u64::from(epoch) << 32)
}

/// Unpack a hint word into `(kind, terminal, epoch)`.
#[inline]
pub(crate) fn decode_hint(h: u64) -> (u64, usize, u32) {
    (h & 0x7, ((h >> 3) & 0x1FFF_FFFF) as usize, (h >> 32) as u32)
}

/// The frozen, read-only view of the engine a window's speculation runs
/// over. Raw pointers because the merge thread re-borrows the engine
/// mutably between windows; the window protocol (see module docs)
/// guarantees no lane dereferences them outside an open window.
pub(crate) struct SpecView {
    /// The planned `(time, event)` window, in global-seq order.
    pub planned: *const (SimTime, Event),
    /// Number of planned events.
    pub n: usize,
    /// One hint word per planned event, written by speculation lanes.
    pub hints: *const AtomicU64,
    pub arena: *const TxnArena,
    pub lockmgr: *const LockManager,
    pub cpus: *const Option<ServerPool<Payload>>,
    pub disks: *const Option<DiskArray<Payload>>,
    pub algorithm: CcAlgorithm,
    /// External-think sampler state (frozen) for refill precompute.
    pub ext_think: *const ExpBlock,
    /// The live think stream's current state (frozen while the window is
    /// open); the refill snapshots it so installation self-validates.
    pub think_rng: *const Xoshiro256StarStar,
    /// Chunk 0's lane deposits the precomputed refill here; merge takes it
    /// after quiescence.
    pub refill: *const UnsafeCell<Option<ExpRefill>>,
}

// The view is published through an `AtomicPtr` and dereferenced on worker
// threads; everything it points at must be free of interior mutability
// (shared `&` access from several threads at once). Enforce that at
// compile time so a future `Cell` in any of these types fails loudly.
#[allow(dead_code)]
fn assert_spec_view_targets_are_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<TxnArena>();
    is_sync::<LockManager>();
    is_sync::<Option<ServerPool<Payload>>>();
    is_sync::<Option<DiskArray<Payload>>>();
    is_sync::<ExpBlock>();
    is_sync::<Xoshiro256StarStar>();
    is_sync::<(SimTime, Event)>();
    is_sync::<AtomicU64>();
}

/// Cross-thread window coordination (see module docs for the protocol).
pub(crate) struct WindowShared {
    /// The open window's [`SpecView`] (merge-thread stack memory; only
    /// dereferenced while registered in an odd generation).
    pub view: AtomicPtr<SpecView>,
    /// Window generation: odd = open, even = closed/idle.
    pub generation: AtomicU64,
    /// Monotone chunk-ticket counter (never reset; re-based per window).
    pub claim: AtomicU64,
    /// `claim`'s value at publish time: ticket − base = chunk index.
    pub base: AtomicU64,
    /// Chunks in the open window.
    pub nchunks: AtomicU64,
    /// Lanes currently registered inside the window.
    pub outstanding: AtomicUsize,
    /// Run over: worker lanes exit their spin loops.
    pub stop: AtomicBool,
    /// A lane panicked inside this run.
    pub poisoned: AtomicBool,
    /// Per-lane busy nanoseconds (lane 0 = merge thread's speculation help).
    pub busy_ns: [AtomicU64; MAX_LANES],
    /// Event count mirrored by the merge thread at the sequential loop's
    /// budget-poll cadence (every [`crate::Simulator`] `WALL_CHECK_PERIOD`
    /// events), so worker lanes can observe run progress without the
    /// engine's plain `u64` counter ever being shared. Diagnostic +
    /// budget-gate input; never read back by the merge thread.
    pub events_mirror: AtomicU64,
    /// Set when a budget or shared-pool ceiling trips: lanes stop burning
    /// cycles speculating windows that will never be applied.
    pub budget_near: AtomicBool,
}

impl WindowShared {
    pub fn new() -> Self {
        WindowShared {
            view: AtomicPtr::new(std::ptr::null_mut()),
            generation: AtomicU64::new(0),
            claim: AtomicU64::new(0),
            base: AtomicU64::new(0),
            nchunks: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            busy_ns: Default::default(),
            events_mirror: AtomicU64::new(0),
            budget_near: AtomicBool::new(false),
        }
    }

    /// Open a window (merge thread only): publish the view and hand out
    /// `nchunks` fresh tickets. The generation bump is the `Release` fence
    /// workers acquire everything else through.
    pub fn publish(&self, view: *mut SpecView, nchunks: usize) {
        self.base
            .store(self.claim.load(Ordering::Relaxed), Ordering::Relaxed);
        self.nchunks.store(nchunks as u64, Ordering::Relaxed);
        self.view.store(view, Ordering::Relaxed);
        let g = self.generation.fetch_add(1, Ordering::Release);
        debug_assert_eq!(g % 2, 0, "publish on an open window");
    }

    /// Close the window: no lane that has not yet registered may enter.
    pub fn close(&self) {
        let g = self.generation.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(g % 2, 1, "close on an idle window");
    }

    /// Wait for every registered lane to leave the (closed) window. After
    /// this returns the merge thread may mutate engine state again.
    pub fn quiesce(&self) {
        let mut spins = 0u32;
        while self.outstanding.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Claim and speculate chunk tickets of the currently open window until
/// they run out. Callers must be inside the window: the merge thread
/// between `publish` and `close`, or a worker lane registered in
/// `outstanding`.
pub(crate) fn run_chunks(shared: &WindowShared, lane: usize) {
    let view = shared.view.load(Ordering::Acquire);
    let nchunks = shared.nchunks.load(Ordering::Relaxed);
    let base = shared.base.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    loop {
        if shared.budget_near.load(Ordering::Relaxed) {
            break;
        }
        let ticket = shared.claim.fetch_add(1, Ordering::Relaxed);
        let Some(idx) = ticket.checked_sub(base) else {
            break;
        };
        if idx >= nchunks {
            break;
        }
        // SAFETY: a ticket inside [base, base + nchunks) proves the window
        // is the one this lane entered (tickets are monotone across
        // windows and a new window cannot be published before quiescence),
        // so `view` points at the merge thread's live per-window stack
        // slot for at least as long as this lane stays registered.
        unsafe { speculate_chunk(&*view, idx as usize) };
    }
    if lane < MAX_LANES {
        shared.busy_ns[lane].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A worker lane: spin (then yield) for window publications, register,
/// speculate chunks, deregister. `chaos` injects exactly one panic on the
/// first window this lane joins — the chaos-engineering probe for the
/// poisoned-window path (`CCSIM_CHAOS`).
pub(crate) fn worker_loop(shared: &WindowShared, lane: usize, chaos: bool) {
    if chaos {
        // Fire at lane startup, not on first window join: a lane may
        // never win a registration race on a loaded (or single-core)
        // host, and the probe must be deterministic for CI.
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            panic!("chaos: injected worker-lane panic (CCSIM_CHAOS)");
        }));
        if r.is_err() {
            shared.poisoned.store(true, Ordering::SeqCst);
        }
    }
    let mut last_done: u64 = 0;
    let mut spins: u32 = 0;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let g = shared.generation.load(Ordering::Acquire);
        if g.is_multiple_of(2) || g == last_done {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        spins = 0;
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        if shared.generation.load(Ordering::SeqCst) != g {
            // The window closed between the load and the registration;
            // leave so `quiesce` cannot miss us.
            shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_chunks(shared, lane);
        }));
        if r.is_err() {
            shared.poisoned.store(true, Ordering::SeqCst);
        }
        last_done = g;
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Speculate one chunk of planned events: resolve each event's target
/// transaction, epoch-check it against the (frozen) arena, predict its
/// next concurrency-control object from the program counter, prefetch the
/// lock-table home line, and store a hint word. Strictly read-only apart
/// from the hint array and (chunk 0 only) the refill cell.
///
/// # Safety
/// `view` and everything it points at must be alive and frozen: callers
/// go through [`run_chunks`], whose window protocol guarantees it.
unsafe fn speculate_chunk(view: &SpecView, chunk: usize) {
    let planned = std::slice::from_raw_parts(view.planned, view.n);
    let hints = std::slice::from_raw_parts(view.hints, view.n);
    let lo = chunk * CHUNK;
    let hi = (lo + CHUNK).min(view.n);
    let arena = &*view.arena;
    let lockmgr = &*view.lockmgr;
    let cpus = (*view.cpus).as_ref();
    let disks = (*view.disks).as_ref();
    let uses_locks = view.algorithm.uses_locks();
    // Home slots seen so far in this chunk (for the conflict predicate).
    let mut homes = [usize::MAX; CHUNK];
    for i in lo..hi {
        let (_, ev) = planned[i];
        // Resolve the event's target `(terminal, epoch)`. Pooled
        // completions carry no payload in the event itself; peek the
        // server's in-service slot instead (a snapshot — an earlier event
        // in the window may retire it, which the epoch check at merge
        // time catches).
        let target: Option<Payload> = match ev {
            Event::Arrive(_) | Event::BatchEnd => None,
            Event::CpuDone(server) => cpus.and_then(|p| p.in_service(server)).copied(),
            Event::DiskDone(disk) => disks.and_then(|d| d.in_service(disk)).copied(),
            Event::CpuDoneFast { term, epoch, .. } => Some((term as usize, epoch)),
            Event::DiskDoneFast { term, epoch, .. } => Some((term as usize, epoch)),
            Event::InfDone(term, epoch, _) => Some((term, epoch)),
            Event::Delay(term, epoch, _) => Some((term, epoch)),
        };
        let Some((term, epoch)) = target else {
            continue;
        };
        let fresh = arena.get(term).is_some_and(|t| t.epoch == epoch);
        if !fresh {
            hints[i].store(encode_hint(HINT_STALE, term, epoch), Ordering::Relaxed);
            continue;
        }
        let txn = arena.get(term).expect("fresh target is live");
        let obj = if uses_locks {
            match txn.step() {
                Step::PreclaimLock(k) => Some(arena.lock_plan_at(term, k).0),
                Step::LockRead(r) => Some(arena.read_at(term, r)),
                Step::LockWrite(w) => Some(arena.write_obj_at(term, w)),
                _ => None,
            }
        } else {
            None
        };
        match obj {
            Some(obj) => {
                lockmgr.prefetch(obj);
                let home = lockmgr.home_slot(obj);
                let slot = i - lo;
                let dup = homes[..slot].contains(&home);
                homes[slot] = home;
                let kind = if dup { HINT_CONFLICT } else { HINT_LOCKSTEP };
                hints[i].store(encode_hint(kind, term, epoch), Ordering::Relaxed);
            }
            None => {
                hints[i].store(encode_hint(HINT_CHECKED, term, epoch), Ordering::Relaxed);
            }
        }
    }
    if chunk == 0 {
        // Precompute the next external-think refill off the critical path.
        // Exactly one lane holds ticket 0, so the cell write is exclusive;
        // merge takes it only after quiescence.
        let ext = &*view.ext_think;
        if !ext.mean().is_zero() {
            let refill = ext.precompute_refill(&*view.think_rng);
            *(*view.refill).get() = Some(refill);
        }
    }
}

/// Window-parallel run counters, reported through
/// [`crate::PerfStats::parallel`]. All-integer so perf snapshots stay
/// `Eq`; derive busy *fractions* by dividing by [`loop_wall_us`].
///
/// [`loop_wall_us`]: ParallelStats::loop_wall_us
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelStats {
    /// Configured worker count (`SimConfig::workers`).
    pub workers: u32,
    /// Windows popped and merged.
    pub windows: u64,
    /// Events planned into windows (every merged event except overlay
    /// replays).
    pub planned: u64,
    /// Planned events a lane speculated a resolvable hint for.
    pub speculated: u64,
    /// Speculated hints still valid at merge time (the prefetch paid off).
    pub applied: u64,
    /// Speculated hints invalidated by an earlier event in the window
    /// (epoch moved on); their work was discarded.
    pub rolled_back: u64,
    /// Events applied through the serial replay path (every rolled-back or
    /// conflict-demoted event; replay *is* the normal handler, which is
    /// why the merged trajectory is exact).
    pub replayed: u64,
    /// Hints demoted by the same-home-slot conflict predicate.
    pub conflicts: u64,
    /// Speculative external-think refills actually installed.
    pub refills_installed: u64,
    /// Mid-merge events that landed inside the open window and were
    /// delivered through the overlay heap.
    pub overlay_events: u64,
    /// Per-lane busy microseconds (lane 0 = merge thread's speculation
    /// help; lanes beyond [`MAX_LANES`] fold into nothing).
    pub worker_busy_us: [u64; MAX_LANES],
    /// Wall microseconds of the whole event loop (busy-fraction
    /// denominator).
    pub loop_wall_us: u64,
}

impl ParallelStats {
    /// Fraction of loop wall time `lane` spent speculating.
    #[must_use]
    pub fn busy_fraction(&self, lane: usize) -> f64 {
        if self.loop_wall_us == 0 || lane >= MAX_LANES {
            return 0.0;
        }
        self.worker_busy_us[lane] as f64 / self.loop_wall_us as f64
    }

    /// Rolled-back (plus conflict-demoted) share of planned events.
    #[must_use]
    pub fn rollback_ratio(&self) -> f64 {
        if self.planned == 0 {
            return 0.0;
        }
        (self.rolled_back + self.conflicts) as f64 / self.planned as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_words_round_trip() {
        for (kind, term, epoch) in [
            (HINT_NONE, 0usize, 0u32),
            (HINT_STALE, 999_983, 7),
            (HINT_CHECKED, (1 << 29) - 1, u32::MAX),
            (HINT_LOCKSTEP, 123_456, 42),
            (HINT_CONFLICT, 1, 1),
        ] {
            let (k, t, e) = decode_hint(encode_hint(kind, term, epoch));
            assert_eq!((k, t, e), (kind, term, epoch));
        }
    }

    #[test]
    fn ticket_protocol_discards_stale_tickets() {
        let shared = WindowShared::new();
        // Simulate leftover tickets from a previous window.
        shared.claim.store(70, Ordering::Relaxed);
        shared.base.store(64, Ordering::Relaxed);
        shared.nchunks.store(4, Ordering::Relaxed);
        // A fresh window re-bases: tickets below the new base must never
        // decode into a chunk index.
        shared
            .base
            .store(shared.claim.load(Ordering::Relaxed), Ordering::Relaxed);
        let base = shared.base.load(Ordering::Relaxed);
        let stale_ticket = 65u64; // from the old window
        assert!(stale_ticket.checked_sub(base).is_none());
    }

    #[test]
    fn rollback_ratio_and_busy_fraction_handle_zero() {
        let s = ParallelStats::default();
        assert_eq!(s.rollback_ratio(), 0.0);
        assert_eq!(s.busy_fraction(0), 0.0);
        let mut s = s;
        s.planned = 100;
        s.rolled_back = 5;
        s.conflicts = 5;
        s.loop_wall_us = 1_000;
        s.worker_busy_us[1] = 250;
        assert!((s.rollback_ratio() - 0.10).abs() < 1e-12);
        assert!((s.busy_fraction(1) - 0.25).abs() < 1e-12);
        assert_eq!(s.busy_fraction(MAX_LANES), 0.0);
    }
}
