//! The simulation engine: the paper's closed queuing model (Figures 1–2).
//!
//! Transactions originate at terminals, wait in the *ready queue* for one of
//! `mpl` active slots, then execute their step program, visiting the
//! concurrency-control, object, and update queues. Conflicts block or
//! restart them according to the configured algorithm; commits return them
//! to their terminal for an external think time.
//!
//! Setting the `CCSIM_DEBUG_STATES` environment variable makes the engine
//! print a one-line state census (transaction states, queue depths,
//! calendar size) to stderr at every batch boundary — a quick load-balance
//! diagnostic that needs no recompilation. For structured per-transaction
//! tracing use [`run_with_trace`] instead.

use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};

use ccsim_des::{
    sample_exponential, Calendar, CalendarStats, ExpBlock, ExpRefill, Exponential, RngStreams,
    SimDuration, SimTime, UniformBlock, Xoshiro256StarStar,
};
use ccsim_history::{CommittedTxn, History};
use ccsim_lockmgr::{Grant, LockManager, LockMode, RequestOutcome};
use ccsim_mvcc::MvccManager;
use ccsim_occ::{SiloValidator, Validator};
use ccsim_resources::{DiskArray, Priority, Request, ServerPool};
use ccsim_stats::RunningAvg;
use ccsim_tso::{
    ReadOutcome as TsoRead, TicTocManager, TsoManager, TtWord, WriteOutcome as TsoWrite,
};
use ccsim_workload::{
    Generator, ObjId, ParamError, Params, ResourceSpec, RestartDelayPolicy, TxnId,
};

use crate::algorithm::{CcAlgorithm, VictimPolicy};
use crate::arena::TxnArena;
use crate::budget::{BudgetKind, RunError};
use crate::config::SimConfig;
use crate::metrics::{Metrics, Report};
use crate::parallel::{
    self, decode_hint, ParallelStats, SpecView, WindowShared, HINT_CONFLICT, HINT_NONE, HINT_STALE,
    MAX_LANES, WINDOW_CAP,
};
use crate::profiler::{Stage, StageProfile, StageProfiler};
use crate::sink::{CenterFlow, EventSink, FlowStats};
use crate::trace::{Trace, TraceEvent};
use crate::txn::{Step, TxnState};

/// RNG stream ids (stable; see `ccsim_des::RngStreams`).
mod streams {
    pub const WORKLOAD: u64 = 0;
    pub const EXT_THINK: u64 = 1;
    pub const DELAYS: u64 = 2;
    pub const DISKS: u64 = 3;
}

/// Payload carried through the resource pools: terminal index + attempt
/// epoch (stale completions are dropped by epoch comparison).
pub(crate) type Payload = (usize, u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ServiceKind {
    Cpu,
    Io,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DelayKind {
    IntThink,
    Restart,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A terminal submits a new transaction.
    Arrive(usize),
    /// A CPU server finished its current request.
    CpuDone(usize),
    /// A disk finished its current request.
    DiskDone(usize),
    /// A CPU completion whose request/dispatch hop was elided because the
    /// server was idle at submit time; the payload rides in the event
    /// instead of the pool (see `ServerPool::try_submit_direct`).
    CpuDoneFast {
        /// Server the request occupied.
        server: u32,
        /// Submitting terminal.
        term: u32,
        /// Attempt epoch (stale completions are dropped by comparison).
        epoch: u32,
    },
    /// A disk completion whose request/dispatch hop was elided (the disk
    /// was idle at submit time); payload rides in the event.
    DiskDoneFast {
        /// Disk the I/O occupied.
        disk: u32,
        /// Submitting terminal.
        term: u32,
        /// Attempt epoch.
        epoch: u32,
    },
    /// A service completed under infinite resources.
    InfDone(usize, u32, ServiceKind),
    /// An internal-think or restart delay elapsed.
    Delay(usize, u32, DelayKind),
    /// A batch boundary.
    BatchEnd,
}

/// A mid-merge schedule landing *inside* the already-popped window: the
/// calendar's clock has advanced to the window end, so these are held in a
/// local min-heap keyed by `(at, seq)` and drained strictly before any
/// planned event at a later instant. `seq` is a merge-local monotone
/// counter: two overlay events at one instant deliver in schedule order,
/// exactly as the calendar's FIFO tie-break would have delivered them —
/// and a planned event always wins a time tie against an overlay event
/// because its calendar sequence number predates any mid-merge schedule.
#[derive(Debug, Clone, Copy)]
struct OverlayEntry {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for OverlayEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for OverlayEntry {}

impl PartialOrd for OverlayEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OverlayEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Why a transaction is being aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortCause {
    /// Deadlock victim (blocking algorithm).
    Deadlock,
    /// Lock denial (immediate-restart / no-waiting).
    Denial,
    /// Failed optimistic validation.
    Validation,
    /// Wounded by an older transaction (wound-wait).
    Wounded,
    /// Died on conflict with an older holder (wait-die).
    Died,
    /// A timestamp-ordering operation arrived too late (basic T/O).
    TsRejected,
}

/// Outcome of a concurrency-control request from the requester's viewpoint.
enum CcAction {
    /// Lock granted: continue to the next step.
    Proceed,
    /// The requester blocked (or was handled entirely elsewhere — e.g.
    /// granted or restarted during deadlock resolution); stop dispatching.
    Suspend,
}

/// The simulator. Construct with [`Simulator::new`], drive with
/// [`Simulator::run_to_completion`], or use the convenience [`run`].
pub struct Simulator {
    cfg: SimConfig,
    cal: Calendar<Event>,
    arena: TxnArena,
    generator: Generator,
    /// Spec buffers recycled through the generator so the steady-state
    /// arrival path allocates nothing (and the RNG draw order matches the
    /// pre-arena engine exactly).
    scratch_reads: Vec<ObjId>,
    scratch_writes: Vec<bool>,
    think_rng: Xoshiro256StarStar,
    delay_rng: Xoshiro256StarStar,
    disk_rng: Xoshiro256StarStar,
    /// External think times come from a dedicated stream with a single
    /// fixed-mean consumer, so they are drawn through the batched sampler.
    ext_think: ExpBlock,
    /// Internal think times share `delay_rng` with the (varying-mean)
    /// restart delays, so they stay on the scalar path: a per-distribution
    /// batch buffer would reorder draws across the stream's consumers.
    int_think: Exponential,
    /// Uniform disk choice, batched over the dedicated `disk_rng` stream.
    disk_pick: UniformBlock,
    lockmgr: LockManager,
    validator: Validator,
    tso: TsoManager,
    mvcc: MvccManager,
    silo: SiloValidator,
    tictoc: TicTocManager,
    /// Scratch `(object, observed-at)` pairs for Silo read-set validation,
    /// reused across commits so the hot path never allocates.
    rw_scratch: Vec<(ObjId, SimTime)>,
    /// Scratch `(object, observed word)` pairs for TicToc validation; same
    /// reuse discipline.
    tt_scratch: Vec<(ObjId, TtWord)>,
    cpus: Option<ServerPool<Payload>>,
    disks: Option<DiskArray<Payload>>,
    inf_cpu_busy_us: u64,
    inf_io_busy_us: u64,
    ready: VecDeque<usize>,
    active: usize,
    metrics: Metrics,
    resp_avg: RunningAvg,
    history: Option<History>,
    trace: Option<Trace>,
    /// Additional observers of the event stream (see [`EventSink`]).
    sinks: Vec<Box<dyn EventSink>>,
    /// The instant of the event being handled (the run's end time once the
    /// loop finishes).
    now: SimTime,
    /// Test hook: when set, the next commit skips its lock release — an
    /// injected conservation violation that an auditor must catch.
    #[cfg(feature = "test-hooks")]
    leak_next_commit: bool,
    next_serial: u64,
    /// Transactions to dispatch before the next calendar event: `(terminal,
    /// epoch)`. Deferring dispatches through this queue instead of recursing
    /// keeps grant/abort cascades at bounded stack depth.
    work: VecDeque<(usize, u32)>,
    done: bool,
    /// Cached `trace.is_some() || !sinks.is_empty()` so [`Simulator::emit`]
    /// is a single predictable branch when nothing observes the run.
    observed: bool,
    /// Scratch buffer for lock-release grant cascades, reused across events.
    grant_buf: Vec<Grant>,
    /// Scratch buffer for blocker queries (wait-die / wound-wait), reused
    /// across events.
    blocker_buf: Vec<TxnId>,
    /// Events handled so far (the run's total once the loop finishes).
    events: u64,
    /// CPU request/dispatch hops elided by the idle-server fast path.
    elided_cpu: u64,
    /// Disk request/dispatch hops elided by the idle-server fast path.
    elided_disk: u64,
    /// Wall-clock time spent in the event loop.
    run_wall: std::time::Duration,
    /// Per-stage cycle accounting over the event loop. Zero-sized with
    /// every call site an empty inline body unless the `stage-profiler`
    /// feature is on, so the steady-state loop normally carries none of it.
    prof: StageProfiler,
    /// True while the window-parallel merge loop owns a popped window;
    /// sequential runs never set it, so [`Simulator::sched`] stays one
    /// predictable branch.
    win_active: bool,
    /// End instant of the owned window (the last planned event's time).
    win_end: SimTime,
    /// Mid-merge schedules landing inside the owned window (see
    /// [`OverlayEntry`]); empty outside window merges.
    overlay: BinaryHeap<Reverse<OverlayEntry>>,
    /// Monotone tie-break counter for overlay pushes.
    overlay_seq: u64,
    /// Speculatively precomputed external-think refill awaiting its dry
    /// point; installation self-validates against the live stream state.
    pending_refill: Option<ExpRefill>,
    /// Window-parallel counters (`Some` only when `workers >= 2` ran).
    par: Option<ParallelStats>,
}

/// Engine-level performance counters for a completed (or budget-stopped)
/// run: the raw material for events/sec reporting. Deliberately separate
/// from [`Report`] so enabling perf readout cannot perturb experiment
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfStats {
    /// Calendar events handled.
    pub events: u64,
    /// Wall-clock time spent in the event loop.
    pub wall: std::time::Duration,
    /// Peak number of pending calendar events (exact high-water mark).
    pub peak_calendar: usize,
    /// Peak number of locks held in the lock table at once.
    pub peak_lock_table: usize,
    /// Calendar operation counters: schedules, pops, cancels, and the
    /// near-lane vs overflow-heap split.
    pub calendar: CalendarStats,
    /// CPU request/dispatch hops elided by the idle-server fast path.
    pub elided_cpu_hops: u64,
    /// Disk request/dispatch hops elided by the idle-server fast path.
    pub elided_disk_hops: u64,
    /// Window-parallel counters; `None` for sequential runs (`workers`
    /// 0/1). Note the diagnostic calendar counters above (peaks,
    /// schedule/pop splits) legitimately differ between sequential and
    /// window runs — windows pop eagerly — while `events`, every report,
    /// and every trace stay byte-identical.
    pub parallel: Option<ParallelStats>,
}

impl PerfStats {
    /// Events handled per wall-clock second (0 if no time elapsed).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

impl Simulator {
    /// Build a simulator for `cfg`.
    ///
    /// # Errors
    /// Returns [`ParamError`] if the configuration fails validation.
    pub fn new(cfg: SimConfig) -> Result<Self, ParamError> {
        cfg.validate()?;
        // Workload-facing streams (arrivals, think times, access patterns,
        // disk selection) come from `workload_seed` when set, so paired
        // runs of different algorithms can share one transaction mix
        // (common random numbers); control-side streams (restart delays)
        // always come from `seed`.
        let workload_streams = RngStreams::new(cfg.workload_seed.unwrap_or(cfg.seed));
        let streams = RngStreams::new(cfg.seed);
        let params = &cfg.params;
        let (cpus, disks, ncpu, ndisk) = match params.resources {
            ResourceSpec::Infinite => (None, None, 0, 0),
            ResourceSpec::Physical {
                num_cpus,
                num_disks,
            } => (
                Some(ServerPool::new(num_cpus as usize)),
                Some(DiskArray::new(num_disks as usize)),
                num_cpus,
                num_disks,
            ),
        };
        let generator = Generator::new(params, workload_streams.stream(streams::WORKLOAD));
        let metrics = Metrics::new(cfg.metrics, ncpu, ndisk, generator.num_classes());
        let trace = (cfg.trace_capacity > 0).then(|| Trace::with_capacity(cfg.trace_capacity));
        let observed = trace.is_some();
        let db_size = params.db_size as usize;
        let num_terms = params.num_terms as usize;
        // Region width of the arena: the largest readset any class can draw.
        let txn_cap = ccsim_workload::class_table(params)
            .iter()
            .map(|c| c.max_size as usize)
            .max()
            .unwrap_or(1);
        Ok(Simulator {
            generator,
            scratch_reads: Vec::new(),
            scratch_writes: Vec::new(),
            think_rng: workload_streams.stream(streams::EXT_THINK),
            delay_rng: streams.stream(streams::DELAYS),
            disk_rng: workload_streams.stream(streams::DISKS),
            ext_think: ExpBlock::new(params.ext_think_time),
            int_think: Exponential::new(params.int_think_time),
            disk_pick: UniformBlock::new(u64::from(ndisk.max(1))),
            lockmgr: LockManager::with_capacity(db_size, num_terms),
            validator: Validator::with_capacity(db_size),
            tso: TsoManager::new(),
            mvcc: MvccManager::new(),
            silo: SiloValidator::new(SiloValidator::DEFAULT_EPOCH),
            tictoc: TicTocManager::new(),
            rw_scratch: Vec::new(),
            tt_scratch: Vec::new(),
            cpus,
            disks,
            inf_cpu_busy_us: 0,
            inf_io_busy_us: 0,
            arena: TxnArena::new(num_terms, txn_cap),
            ready: VecDeque::new(),
            active: 0,
            cal: if cfg.two_tier_calendar {
                Calendar::new()
            } else {
                Calendar::heap_only()
            },
            resp_avg: RunningAvg::new(params.expected_service_time()),
            history: cfg.record_history.then(History::new),
            trace,
            sinks: Vec::new(),
            now: SimTime::ZERO,
            #[cfg(feature = "test-hooks")]
            leak_next_commit: false,
            next_serial: 0,
            work: VecDeque::new(),
            metrics,
            done: false,
            observed,
            grant_buf: Vec::new(),
            blocker_buf: Vec::new(),
            events: 0,
            elided_cpu: 0,
            elided_disk: 0,
            run_wall: std::time::Duration::ZERO,
            prof: StageProfiler::new(),
            win_active: false,
            win_end: SimTime::ZERO,
            overlay: BinaryHeap::new(),
            overlay_seq: 0,
            pending_refill: None,
            par: None,
            cfg,
        })
    }

    /// Register an additional observer of the engine's event stream. Sinks
    /// see every emitted event (warmup included) in simulation order and
    /// receive the final report plus flow statistics when the run ends.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
        self.observed = true;
    }

    /// The configuration this simulator was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Test hook (`test-hooks` feature): make the next commit *leak* its
    /// locks — the release step is skipped and no `LocksReleased` event is
    /// emitted. This deliberately breaks lock conservation so tests can
    /// verify an attached auditor catches it.
    #[cfg(feature = "test-hooks")]
    pub fn inject_lock_leak(&mut self) {
        self.leak_next_commit = true;
    }

    #[cfg(feature = "test-hooks")]
    fn take_lock_leak(&mut self) -> bool {
        std::mem::take(&mut self.leak_next_commit)
    }

    #[cfg(not(feature = "test-hooks"))]
    fn take_lock_leak(&mut self) -> bool {
        false
    }

    /// Run the full simulation and return the report.
    ///
    /// # Errors
    /// Returns [`RunError::BudgetExhausted`] if the run exceeds its
    /// configured [`crate::RunBudget`].
    pub fn run_to_completion(mut self) -> Result<Report, RunError> {
        self.run_loop()?;
        Ok(self.finish())
    }

    /// How often (in events) the wall clock is sampled for budget checks.
    /// Event and sim-time ceilings are checked on every event; the wall
    /// clock only every `WALL_CHECK_PERIOD` events because `Instant::now`
    /// costs more than an event dispatch. The check fires on event 1, so a
    /// zero wall-clock budget trips immediately (used by tests).
    const WALL_CHECK_PERIOD: u64 = 8192;

    fn run_loop(&mut self) -> Result<(), RunError> {
        if self.cfg.workers >= 2 {
            self.run_loop_window()
        } else {
            self.run_loop_seq()
        }
    }

    fn run_loop_seq(&mut self) -> Result<(), RunError> {
        let budget = self.cfg.budget;
        let pool = self.cfg.event_pool.clone();
        // Events charged to the shared pool ahead of processing; the
        // unused remainder is refunded at exit so pool accounting is
        // exact. A detached pool costs nothing on the hot path.
        let mut pool_charged: u64 = 0;
        let started = std::time::Instant::now();
        self.prime();
        self.prof.start(Stage::Pop);
        let result = loop {
            if self.done {
                break Ok(());
            }
            let Some((now, ev)) = self.cal.pop() else {
                break Ok(());
            };
            self.events += 1;
            let events = self.events;
            let exceeded = if budget.max_events.is_some_and(|cap| events > cap) {
                Some(BudgetKind::Events)
            } else if budget
                .max_sim_time
                .is_some_and(|cap| now.since(SimTime::ZERO) > cap)
            {
                Some(BudgetKind::SimTime)
            } else if events % Self::WALL_CHECK_PERIOD == 1 {
                // Periodic checks: the wall clock (Instant::now costs more
                // than an event dispatch) and the shared event pool, which
                // is charged one block ahead at the same cadence.
                if budget
                    .max_wall_clock
                    .is_some_and(|cap| started.elapsed() > cap)
                {
                    Some(BudgetKind::WallClock)
                } else if let Some(p) = &pool {
                    if p.try_charge(crate::EventPool::BLOCK) {
                        pool_charged += crate::EventPool::BLOCK;
                        None
                    } else {
                        Some(BudgetKind::Pool)
                    }
                } else {
                    None
                }
            } else {
                None
            };
            if let Some(exceeded) = exceeded {
                if exceeded == BudgetKind::Pool {
                    // The event that tripped the check was never run;
                    // settle the pool for the events actually processed.
                    self.events -= 1;
                }
                break Err(RunError::BudgetExhausted {
                    exceeded,
                    events: self.events,
                    sim_time: now,
                    wall_clock: started.elapsed(),
                });
            }
            self.now = now;
            self.prof.switch(Stage::Handle);
            self.handle(now, ev);
            self.prof.switch(Stage::Pop);
        };
        self.prof.stop();
        if let Some(p) = &pool {
            // Settle: refund the pre-charged events that never ran (or
            // charge the tail that ran past the last block boundary).
            if pool_charged > self.events {
                p.refund(pool_charged - self.events);
            } else if self.events > pool_charged && !p.try_charge(self.events - pool_charged) {
                // The tail overdraws an exhausted pool: drain what's left
                // so `consumed` never exceeds the pool's capacity.
                let _ = p.try_charge(p.remaining());
            }
        }
        self.run_wall = started.elapsed();
        result
    }

    /// Settle the shared event pool at loop exit: refund pre-charged
    /// events that never ran, or charge the tail that ran past the last
    /// block boundary (draining an exhausted pool rather than overdrawing
    /// it).
    fn settle_pool(&self, pool: &Option<crate::EventPool>, pool_charged: u64) {
        if let Some(p) = pool {
            if pool_charged > self.events {
                p.refund(pool_charged - self.events);
            } else if self.events > pool_charged && !p.try_charge(self.events - pool_charged) {
                let _ = p.try_charge(p.remaining());
            }
        }
    }

    /// The smallest positive service/think delta: an event handled at `t`
    /// never schedules consequences earlier than `t` plus a drawn delay or
    /// service, so a window bounded by this lookahead stays dense in
    /// immediately runnable events without over-popping the far future.
    /// (Correctness never depends on the bound — the overlay heap delivers
    /// any mid-merge schedule that lands inside the window in exact
    /// sequential order — it is purely a speculation-quality knob.)
    fn window_lookahead(&self) -> SimDuration {
        let p = &self.cfg.params;
        let mut lk = SimDuration::ZERO;
        for d in [
            p.obj_cpu,
            p.obj_io,
            p.cc_cpu,
            p.ext_think_time,
            p.int_think_time,
        ] {
            if !d.is_zero() && (lk.is_zero() || d < lk) {
                lk = d;
            }
        }
        if lk.is_zero() {
            lk = SimDuration::from_micros(64);
        }
        lk
    }

    /// The speculative window-parallel loop (`workers >= 2`). Pops a safe
    /// time window of events, publishes a frozen view to worker lanes for
    /// read-only prefetch/hint speculation, then applies every event
    /// serially in global-seq order — so delivery order, and therefore
    /// every report, streaming quantile, and golden trace, is
    /// byte-identical to [`Simulator::run_loop_seq`] at any worker count.
    /// See `crate::parallel` for the window protocol.
    fn run_loop_window(&mut self) -> Result<(), RunError> {
        let budget = self.cfg.budget;
        let pool = self.cfg.event_pool.clone();
        let mut pool_charged: u64 = 0;
        let started = std::time::Instant::now();
        self.prime();
        let lanes = (self.cfg.workers as usize).min(MAX_LANES);
        let helpers = lanes.saturating_sub(1);
        let chaos = std::env::var("CCSIM_CHAOS").is_ok_and(|v| v == "worker-panic");
        self.par = Some(ParallelStats {
            workers: self.cfg.workers,
            ..ParallelStats::default()
        });
        let lookahead = self.window_lookahead();
        let mut planned: Vec<(SimTime, Event)> = Vec::with_capacity(WINDOW_CAP);
        let hints: Vec<AtomicU64> = (0..WINDOW_CAP).map(|_| AtomicU64::new(0)).collect();
        let refill_cell: UnsafeCell<Option<ExpRefill>> = UnsafeCell::new(None);
        let shared = WindowShared::new();
        self.prof.start(Stage::Speculate);
        let result = {
            let shared = &shared;
            let scope_result = crossbeam::thread::scope(|s| {
                for lane in 1..=helpers {
                    s.spawn(move |_| parallel::worker_loop(shared, lane, chaos && lane == 1));
                }
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    self.window_loop(
                        shared,
                        &hints,
                        &refill_cell,
                        &mut planned,
                        lookahead,
                        budget,
                        &pool,
                        &mut pool_charged,
                        started,
                    )
                }));
                // Stop the lanes whether the merge finished or panicked —
                // a panicking merge thread must not leave workers spinning
                // (the scope would join forever).
                shared.stop.store(true, Ordering::SeqCst);
                match r {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            });
            match scope_result {
                Ok(r) => r,
                // A panic anywhere in the scope (merge or a lane that
                // somehow escaped its catch-unwind) propagates: the sweep
                // supervisor turns it into a typed per-point failure hole.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        };
        // The per-window check catches a lane dying mid-run; this one
        // catches a lane that died while no window was open (results are
        // still exact — speculation is advisory — but a silently dead
        // lane is silently degraded throughput, so it is loud).
        if shared.poisoned.load(Ordering::SeqCst) {
            panic!("window-parallel worker lane panicked");
        }
        self.prof.stop();
        self.settle_pool(&pool, pool_charged);
        self.run_wall = started.elapsed();
        if let Some(p) = self.par.as_mut() {
            for lane in 0..MAX_LANES {
                p.worker_busy_us[lane] = shared.busy_ns[lane].load(Ordering::Relaxed) / 1_000;
            }
            p.loop_wall_us = self.run_wall.as_micros() as u64;
        }
        result
    }

    /// One full plan → speculate → merge cycle per iteration, until the
    /// run completes or a budget trips.
    #[allow(clippy::too_many_arguments)]
    fn window_loop(
        &mut self,
        shared: &WindowShared,
        hints: &[AtomicU64],
        refill_cell: &UnsafeCell<Option<ExpRefill>>,
        planned: &mut Vec<(SimTime, Event)>,
        lookahead: SimDuration,
        budget: crate::RunBudget,
        pool: &Option<crate::EventPool>,
        pool_charged: &mut u64,
        started: std::time::Instant,
    ) -> Result<(), RunError> {
        loop {
            if self.done {
                return Ok(());
            }
            // ---- Plan: pop a bounded window off the calendar. The window
            // always terminates at a batch boundary if one falls inside
            // it, so `done` can only become true on a window's last event.
            planned.clear();
            let Some(t0) = self.cal.peek_time() else {
                return Ok(());
            };
            let horizon = t0 + lookahead;
            while planned.len() < WINDOW_CAP {
                let Some(t) = self.cal.peek_time() else {
                    break;
                };
                if !planned.is_empty() && t > horizon {
                    break;
                }
                let (t, ev) = self.cal.pop().expect("peeked event exists");
                let batch_end = matches!(ev, Event::BatchEnd);
                planned.push((t, ev));
                if batch_end {
                    break;
                }
            }
            let n = planned.len();
            debug_assert!(n > 0, "peeked a non-empty calendar");
            // ---- Speculate: publish the frozen view, help claim chunks,
            // then quiesce so no lane touches the view past this phase.
            for h in &hints[..n] {
                h.store(0, Ordering::Relaxed);
            }
            let mut view = SpecView {
                planned: planned.as_ptr(),
                n,
                hints: hints.as_ptr(),
                arena: &self.arena,
                lockmgr: &self.lockmgr,
                cpus: &self.cpus,
                disks: &self.disks,
                algorithm: self.cfg.algorithm,
                ext_think: &self.ext_think,
                think_rng: &self.think_rng,
                refill: refill_cell,
            };
            shared.publish(&mut view, n.div_ceil(parallel::CHUNK));
            parallel::run_chunks(shared, 0);
            shared.close();
            shared.quiesce();
            if shared.poisoned.load(Ordering::SeqCst) {
                // Engine state is still consistent (speculation is
                // read-only), but a dead lane breaks the mode's contract;
                // surface it for the supervisor's typed failure holes.
                panic!("window-parallel worker lane panicked");
            }
            // SAFETY: quiesced — no lane can touch the refill cell now.
            if let Some(r) = unsafe { (*refill_cell.get()).take() } {
                self.pending_refill = Some(r);
            }
            // ---- Merge: apply serially in global-seq order.
            self.prof.switch(Stage::Merge);
            self.win_active = true;
            self.win_end = planned[n - 1].0;
            if let Some(p) = self.par.as_mut() {
                p.windows += 1;
                p.planned += n as u64;
            }
            let mut res = Ok(());
            'window: for i in 0..n {
                let (t, ev) = planned[i];
                // Drain overlay events strictly before this instant (the
                // planned event wins time ties: its calendar sequence
                // number predates any mid-merge schedule).
                loop {
                    let due = matches!(self.overlay.peek(), Some(Reverse(top)) if top.at < t);
                    if !due {
                        break;
                    }
                    let e = self.overlay.pop().expect("peeked overlay entry").0;
                    if let Some(p) = self.par.as_mut() {
                        p.overlay_events += 1;
                    }
                    if let Err(err) = self.merge_one(
                        e.at,
                        e.ev,
                        Stage::Handle,
                        budget,
                        pool,
                        pool_charged,
                        started,
                        shared,
                    ) {
                        res = Err(err);
                        break 'window;
                    }
                }
                // Validate the speculation hint against live state; a
                // stale or conflict-demoted hint means the prefetch work
                // is discarded and the event replays through the normal
                // serial handler (which is why the trajectory is exact).
                let (kind, hterm, hepoch) = decode_hint(hints[i].load(Ordering::Relaxed));
                let fresh = match kind {
                    HINT_NONE => None,
                    HINT_STALE | HINT_CONFLICT => Some(false),
                    _ => Some(self.arena.get(hterm).is_some_and(|txn| txn.epoch == hepoch)),
                };
                if let Some(p) = self.par.as_mut() {
                    if kind == HINT_CONFLICT {
                        p.conflicts += 1;
                    }
                    match fresh {
                        None => {}
                        Some(true) => {
                            p.speculated += 1;
                            p.applied += 1;
                        }
                        Some(false) => {
                            p.speculated += 1;
                            p.rolled_back += 1;
                            p.replayed += 1;
                        }
                    }
                }
                let stage = if fresh == Some(false) {
                    Stage::Rollback
                } else {
                    Stage::Handle
                };
                if let Err(err) =
                    self.merge_one(t, ev, stage, budget, pool, pool_charged, started, shared)
                {
                    res = Err(err);
                    break 'window;
                }
            }
            self.win_active = false;
            if res.is_err() {
                // Unapplied planned/overlay events die with the run; the
                // budget error already carries the exact sequential stop
                // point.
                self.overlay.clear();
                self.prof.switch(Stage::Speculate);
                return res;
            }
            debug_assert!(
                self.overlay.is_empty(),
                "overlay fully drained at window end"
            );
            self.prof.switch(Stage::Speculate);
        }
    }

    /// Apply one event inside a window merge, replicating the sequential
    /// loop's per-event budget discipline exactly — same check order, same
    /// counters, same pool-charge cadence — so budget stops are
    /// byte-identical to [`Simulator::run_loop_seq`].
    #[allow(clippy::too_many_arguments)]
    fn merge_one(
        &mut self,
        now: SimTime,
        ev: Event,
        stage: Stage,
        budget: crate::RunBudget,
        pool: &Option<crate::EventPool>,
        pool_charged: &mut u64,
        started: std::time::Instant,
        shared: &WindowShared,
    ) -> Result<(), RunError> {
        self.events += 1;
        let events = self.events;
        let exceeded = if budget.max_events.is_some_and(|cap| events > cap) {
            Some(BudgetKind::Events)
        } else if budget
            .max_sim_time
            .is_some_and(|cap| now.since(SimTime::ZERO) > cap)
        {
            Some(BudgetKind::SimTime)
        } else if events % Self::WALL_CHECK_PERIOD == 1 {
            // Same cadence as the sequential loop; additionally mirror the
            // count into the shared atomic so worker lanes can observe run
            // progress (the engine's own counter stays a plain u64).
            shared.events_mirror.store(events, Ordering::Relaxed);
            if budget
                .max_wall_clock
                .is_some_and(|cap| started.elapsed() > cap)
            {
                Some(BudgetKind::WallClock)
            } else if let Some(p) = pool {
                if p.try_charge(crate::EventPool::BLOCK) {
                    *pool_charged += crate::EventPool::BLOCK;
                    None
                } else {
                    Some(BudgetKind::Pool)
                }
            } else {
                None
            }
        } else {
            None
        };
        if let Some(exceeded) = exceeded {
            if exceeded == BudgetKind::Pool {
                // The event that tripped the check never ran; settle the
                // pool for the events actually processed.
                self.events -= 1;
            }
            // Tell the lanes the run is over so they stop speculating
            // windows that can never be applied.
            shared.budget_near.store(true, Ordering::SeqCst);
            return Err(RunError::BudgetExhausted {
                exceeded,
                events: self.events,
                sim_time: now,
                wall_clock: started.elapsed(),
            });
        }
        self.now = now;
        self.prof.switch(stage);
        self.handle(now, ev);
        self.prof.switch(Stage::Merge);
        Ok(())
    }

    /// Schedule `ev` from a handler: the single hot-path entry point.
    /// Sequential runs always hit the calendar; inside a window merge, an
    /// event landing before the window's end goes to the overlay heap
    /// instead (the calendar's clock has already advanced to the window
    /// end), and the merge loop drains it in exact sequential order.
    #[inline]
    fn sched(&mut self, at: SimTime, ev: Event) {
        if self.win_active && at < self.win_end {
            self.overlay_seq += 1;
            self.overlay.push(Reverse(OverlayEntry {
                at,
                seq: self.overlay_seq,
                ev,
            }));
        } else {
            self.cal.schedule(at, ev);
        }
    }

    /// Draw an external think time, installing a speculatively precomputed
    /// refill when the block runs dry. Installation self-validates (the
    /// refill snapshots the stream state it was computed from), so a
    /// superseded refill falls back to the ordinary in-place refill, which
    /// produces the identical draw sequence.
    #[inline]
    fn sample_ext_think(&mut self) -> SimDuration {
        if self.ext_think.is_dry() {
            if let Some(refill) = self.pending_refill.take() {
                if self.ext_think.install_refill(&refill, &mut self.think_rng) {
                    if let Some(p) = self.par.as_mut() {
                        p.refills_installed += 1;
                    }
                }
            }
        }
        self.ext_think.sample(&mut self.think_rng)
    }

    /// The O(1)-memory streaming response-time quantiles collected so far.
    /// Readable at any point — including after a budget stop — without
    /// touching the serialized [`Report`].
    #[must_use]
    pub fn streaming_quantiles(&self) -> crate::metrics::StreamingQuantiles {
        self.metrics.streaming_quantiles()
    }

    /// Run until completion *or* budget exhaustion, salvaging whatever was
    /// measured either way. Unlike [`Simulator::run_to_completion`], a
    /// budget stop is reported in [`RunOutcome::stopped`] instead of
    /// discarding the partial report, perf counters, and streaming
    /// quantiles — the scale regime runs under a wall-clock budget and
    /// still wants its observables.
    #[must_use]
    pub fn run_collecting(mut self) -> RunOutcome {
        let stopped = self.run_loop().err();
        let report = self.finish();
        RunOutcome {
            report,
            stopped,
            perf: self.perf_stats(),
            quantiles: self.streaming_quantiles(),
            stages: self.stage_profile(),
        }
    }

    /// Per-stage breakdown of the event loop's wall time. `None` unless the
    /// crate was built with the `stage-profiler` feature (the default build
    /// compiles the profiler out entirely).
    #[must_use]
    pub fn stage_profile(&self) -> Option<StageProfile> {
        self.prof.report()
    }

    /// Performance counters accumulated by the event loop so far.
    #[must_use]
    pub fn perf_stats(&self) -> PerfStats {
        PerfStats {
            events: self.events,
            wall: self.run_wall,
            peak_calendar: self.cal.peak_len(),
            peak_lock_table: self.lockmgr.peak_locks_in_table(),
            calendar: self.cal.stats(),
            elided_cpu_hops: self.elided_cpu,
            elided_disk_hops: self.elided_disk,
            parallel: self.par,
        }
    }

    /// Close out a finished run: compute the report and flow statistics and
    /// notify every sink.
    fn finish(&mut self) -> Report {
        let report = self.metrics.report();
        let now = self.now;
        let flow = self.flow_stats(now);
        for sink in &mut self.sinks {
            sink.on_run_end(now, &report, &flow);
        }
        report
    }

    fn flow_stats(&self, now: SimTime) -> FlowStats {
        FlowStats {
            horizon_us: now.since(SimTime::ZERO).as_micros(),
            cpu: self.cpus.as_ref().map(|p| CenterFlow {
                servers: p.num_servers(),
                busy_us: p.busy_micros(now),
                served: p.served(),
                queue_integral_us: p.queue_integral_us(now),
                total_wait_us: p.total_wait_us(),
                pending_wait_us: p.pending_wait_us(now),
            }),
            disk: self.disks.as_ref().map(|d| CenterFlow {
                servers: d.num_disks(),
                busy_us: d.busy_micros(now),
                served: d.served(),
                queue_integral_us: d.queue_integral_us(now),
                total_wait_us: d.total_wait_us(),
                pending_wait_us: d.pending_wait_us(now),
            }),
        }
    }

    fn prime(&mut self) {
        for term in 0..self.arena.num_terms() {
            let at = SimTime::ZERO + self.sample_ext_think();
            self.cal.schedule(at, Event::Arrive(term));
        }
        self.cal
            .schedule(SimTime::ZERO + self.cfg.metrics.batch_time, Event::BatchEnd);
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrive(term) => self.on_arrive(term, now),
            Event::BatchEnd => self.on_batch_end(now),
            Event::CpuDone(server) => {
                let (payload, next) = self
                    .cpus
                    .as_mut()
                    .expect("CpuDone without CPU pool")
                    .complete(now, server);
                if let Some(s) = next {
                    self.sched(s.completes_at, Event::CpuDone(s.server));
                }
                self.service_done(payload, ServiceKind::Cpu, now);
            }
            Event::DiskDone(disk) => {
                let (payload, next) = self
                    .disks
                    .as_mut()
                    .expect("DiskDone without disk array")
                    .complete(now, disk);
                if let Some(s) = next {
                    self.sched(s.completes_at, Event::DiskDone(s.disk));
                }
                self.service_done(payload, ServiceKind::Io, now);
            }
            Event::CpuDoneFast {
                server,
                term,
                epoch,
            } => {
                // A request dequeued behind a direct service carries a
                // payload and retires through the classic event.
                if let Some(s) = self
                    .cpus
                    .as_mut()
                    .expect("CpuDoneFast without CPU pool")
                    .complete_direct(now, server as usize)
                {
                    self.sched(s.completes_at, Event::CpuDone(s.server));
                }
                self.service_done((term as usize, epoch), ServiceKind::Cpu, now);
            }
            Event::DiskDoneFast { disk, term, epoch } => {
                if let Some(s) = self
                    .disks
                    .as_mut()
                    .expect("DiskDoneFast without disk array")
                    .complete_direct(now, disk as usize)
                {
                    self.sched(s.completes_at, Event::DiskDone(s.disk));
                }
                self.service_done((term as usize, epoch), ServiceKind::Io, now);
            }
            Event::InfDone(term, epoch, kind) => self.service_done((term, epoch), kind, now),
            Event::Delay(term, epoch, kind) => self.on_delay_done(term, epoch, kind, now),
        }
        self.prof.switch(Stage::Dispatch);
        self.drain_work(now);
        self.prof.switch(Stage::Handle);
    }

    /// Mark `term`'s transaction as ready to continue at the current
    /// instant. The actual dispatch happens from [`Simulator::drain_work`],
    /// which bounds stack depth under long grant/abort cascades.
    fn enqueue_dispatch(&mut self, term: usize) {
        let epoch = self.arena.get(term).expect("live txn").epoch;
        self.work.push_back((term, epoch));
    }

    fn drain_work(&mut self, now: SimTime) {
        while let Some((term, epoch)) = self.work.pop_front() {
            let Some(txn) = self.arena.get(term) else {
                continue;
            };
            // Skip work for attempts that restarted (epoch moved on) or
            // transactions that are no longer runnable (e.g. wounded after
            // being granted a lock but before being dispatched).
            if txn.epoch != epoch || txn.state != TxnState::Running {
                continue;
            }
            self.dispatch(term, now);
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, term: usize, now: SimTime) {
        let id = TxnId(self.next_serial * self.arena.num_terms() as u64 + term as u64);
        self.next_serial += 1;
        // Epochs stay monotone per terminal across transactions, so an
        // event addressed to the previous transaction can never match.
        let epoch = self.arena.get(term).map_or(0, |t| t.epoch + 1);
        // Draw the spec into the recycled scratch buffers, copy it into the
        // terminal's arena region, then reclaim the buffers: the
        // steady-state arrival path allocates nothing.
        let reads = std::mem::take(&mut self.scratch_reads);
        let writes = std::mem::take(&mut self.scratch_writes);
        self.prof.switch(Stage::Variate);
        let (class, spec) = self.generator.next_spec_with_class_reusing(reads, writes);
        self.prof.switch(Stage::Handle);
        let thinks = !self.cfg.params.int_think_time.is_zero();
        self.arena.install(
            term,
            id,
            &spec,
            self.cfg.algorithm.program_shape(),
            thinks,
            now,
            epoch,
            class,
        );
        let (reads, writes) = spec.into_parts();
        self.scratch_reads = reads;
        self.scratch_writes = writes;
        self.emit(now, TraceEvent::Arrive(id));
        self.ready.push_back(term);
        self.try_admit(now);
    }

    fn on_batch_end(&mut self, now: SimTime) {
        if std::env::var_os("CCSIM_DEBUG_STATES").is_some() {
            let mut counts = [0usize; 6];
            for t in self.arena.live() {
                let ix = match t.state {
                    TxnState::AtTerminal => 0,
                    TxnState::Ready => 1,
                    TxnState::Running => 2,
                    TxnState::Blocked => 3,
                    TxnState::Thinking => 4,
                    TxnState::RestartDelay => 5,
                };
                counts[ix] += 1;
            }
            let dq = self.disks.as_ref().map_or(0, |d| d.queued());
            let cq = self.cpus.as_ref().map_or(0, |p| p.queue_len());
            eprintln!(
                "[{now}] term={} ready={} run={} blk={} think={} delay={} active={} cal={} diskq={dq} cpuq={cq}",
                counts[0], counts[1], counts[2], counts[3], counts[4], counts[5],
                self.active, self.cal.len(),
            );
            if let Some(d) = self.disks.as_ref() {
                let snap = d.queue_snapshot();
                let stalled = snap.iter().filter(|(q, busy)| *q > 0 && !busy).count();
                let busy = snap.iter().filter(|(_, b)| *b).count();
                let (argmax, (maxq, _)) = snap
                    .iter()
                    .copied()
                    .enumerate()
                    .max_by_key(|(_, (q, _))| *q)
                    .unwrap_or((0, (0, false)));
                eprintln!("    disks: busy={busy} stalled={stalled} maxq={maxq} argmax={argmax}");
            }
        }
        // Version chains only grow at commits; a batch boundary is a cheap,
        // deterministic place to drop versions no live snapshot can reach.
        if self.cfg.algorithm == CcAlgorithm::MvccSi {
            let horizon = self
                .arena
                .live()
                .filter(|t| t.state.is_active())
                .map(|t| t.attempt_start)
                .min()
                .unwrap_or(now);
            self.mvcc.prune_before(horizon);
        }
        let (cpu_busy, io_busy) = self.busy_micros(now);
        if self.metrics.on_batch_end(now, cpu_busy, io_busy) {
            self.done = true;
        } else {
            self.sched(now + self.cfg.metrics.batch_time, Event::BatchEnd);
        }
    }

    fn on_delay_done(&mut self, term: usize, epoch: u32, kind: DelayKind, now: SimTime) {
        let Some(txn) = self.arena.get_mut(term) else {
            return;
        };
        if txn.epoch != epoch {
            return; // stale: the transaction restarted meanwhile
        }
        match kind {
            DelayKind::IntThink => {
                debug_assert_eq!(txn.state, TxnState::Thinking);
                txn.state = TxnState::Running;
                self.arena.advance(term);
                self.work.push_back((term, epoch));
            }
            DelayKind::Restart => {
                debug_assert_eq!(txn.state, TxnState::RestartDelay);
                txn.state = TxnState::Ready;
                self.ready.push_back(term);
                self.try_admit(now);
            }
        }
    }

    /// A CPU or I/O service completed for `payload`.
    fn service_done(&mut self, payload: Payload, kind: ServiceKind, now: SimTime) {
        let (term, epoch) = payload;
        let Some(txn) = self.arena.get_mut(term) else {
            return;
        };
        if txn.epoch != epoch {
            return; // stale: work done for an aborted attempt stays wasted
        }
        let params = &self.cfg.params;
        match txn.step() {
            Step::PreclaimLock(_) | Step::LockRead(_) | Step::LockWrite(_) | Step::Validate => {
                // The completed service was the concurrency-control CPU
                // charge for this step; now perform the actual request.
                debug_assert_eq!(kind, ServiceKind::Cpu);
                debug_assert!(!txn.cc_charged);
                txn.cc_charged = true;
                txn.usage.add_cpu(params.cc_cpu);
                self.work.push_back((term, epoch));
            }
            Step::ReadIo(_) | Step::UpdateIo(_) => {
                debug_assert_eq!(kind, ServiceKind::Io);
                txn.usage.add_io(params.obj_io);
                self.arena.advance(term);
                self.work.push_back((term, epoch));
            }
            Step::ReadCpu(i) => {
                debug_assert_eq!(kind, ServiceKind::Cpu);
                txn.usage.add_cpu(params.obj_cpu);
                let snapshot = txn.attempt_start;
                self.arena.advance(term);
                match self.cfg.algorithm {
                    // Basic T/O records its reads at the timestamp-check
                    // grant instead (the version is fixed there; a larger-
                    // timestamp writer may legally publish between the
                    // grant and this access completion).
                    CcAlgorithm::BasicTO => {}
                    // Silo validates its read set at commit against the
                    // per-object TID words, so the observation instant is
                    // needed whether or not history is recorded.
                    CcAlgorithm::SiloOcc => {
                        debug_assert_eq!(self.arena.read_times(term).len(), i);
                        self.arena.push_read_time(term, now);
                    }
                    // TicToc reads a *version* — identified by its write
                    // timestamp — not an instant; validation needs the
                    // whole observed word (the `rts` bound is what lets a
                    // superseded read still commit in the past), and the
                    // history records the wts.
                    CcAlgorithm::TicToc => {
                        let obj = self.arena.read_at(term, i);
                        let observed = self.tictoc.word(obj);
                        debug_assert_eq!(self.arena.read_times(term).len(), i);
                        self.arena.push_read_obs(term, observed.wts, observed.rts);
                    }
                    // Snapshot isolation reads as of the attempt start:
                    // recording that instant makes the history checker's
                    // "last writer committed at or before read time" rule
                    // derive exactly the snapshot's version.
                    CcAlgorithm::MvccSi => {
                        if self.history.is_some() {
                            debug_assert_eq!(self.arena.read_times(term).len(), i);
                            self.arena.push_read_time(term, snapshot);
                        }
                    }
                    _ => {
                        if self.history.is_some() {
                            debug_assert_eq!(self.arena.read_times(term).len(), i);
                            self.arena.push_read_time(term, now);
                        }
                    }
                }
                self.work.push_back((term, epoch));
            }
            Step::WriteCpu(_) => {
                debug_assert_eq!(kind, ServiceKind::Cpu);
                txn.usage.add_cpu(params.obj_cpu);
                self.arena.advance(term);
                self.work.push_back((term, epoch));
            }
            Step::IntThink | Step::Commit => {
                unreachable!("no service completes at step {:?}", txn.step())
            }
        }
    }

    // ------------------------------------------------------------------
    // Admission and the step interpreter
    // ------------------------------------------------------------------

    fn try_admit(&mut self, now: SimTime) {
        while self.active < self.cfg.params.mpl as usize {
            let Some(term) = self.ready.pop_front() else {
                break;
            };
            let txn = self.arena.get_mut(term).expect("ready txn exists");
            debug_assert_eq!(txn.state, TxnState::Ready);
            txn.begin_attempt(now);
            txn.state = TxnState::Running;
            let id = txn.id;
            self.active += 1;
            self.metrics.on_active_change(now, self.active);
            self.emit(now, TraceEvent::Admit(id));
            self.enqueue_dispatch(term);
        }
    }

    /// Drive `term`'s transaction forward until it needs to wait for a
    /// service, delay, or lock — or finishes.
    fn dispatch(&mut self, term: usize, now: SimTime) {
        loop {
            let txn = self.arena.get(term).expect("dispatched txn exists");
            debug_assert_eq!(txn.state, TxnState::Running);
            let epoch = txn.epoch;
            match txn.step() {
                Step::PreclaimLock(k) => {
                    let (obj, write) = self.arena.lock_plan_at(term, k);
                    let mode = if write {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    };
                    // Start pulling the object's index line in while the
                    // request's CC-CPU bookkeeping runs (pure hint; no
                    // behavioural effect).
                    self.lockmgr.prefetch(obj);
                    self.prof.switch(Stage::LockTable);
                    let act = self.cc_request(term, obj, mode, now);
                    self.prof.switch(Stage::Dispatch);
                    match act {
                        CcAction::Proceed => continue,
                        CcAction::Suspend => return,
                    }
                }
                Step::LockRead(i) => {
                    let obj = self.arena.read_at(term, i);
                    self.lockmgr.prefetch(obj);
                    self.prof.switch(Stage::LockTable);
                    let act = self.cc_request(term, obj, LockMode::Read, now);
                    self.prof.switch(Stage::Dispatch);
                    match act {
                        CcAction::Proceed => continue,
                        CcAction::Suspend => return,
                    }
                }
                Step::LockWrite(j) => {
                    let obj = self.arena.write_obj_at(term, j);
                    self.lockmgr.prefetch(obj);
                    self.prof.switch(Stage::LockTable);
                    let act = self.cc_request(term, obj, LockMode::Write, now);
                    self.prof.switch(Stage::Dispatch);
                    match act {
                        CcAction::Proceed => continue,
                        CcAction::Suspend => return,
                    }
                }
                Step::ReadIo(i) => {
                    let obj = self.arena.read_at(term, i);
                    self.submit_io(term, obj, epoch, now);
                    return;
                }
                Step::UpdateIo(j) => {
                    let obj = self.arena.write_obj_at(term, j);
                    self.submit_io(term, obj, epoch, now);
                    return;
                }
                Step::ReadCpu(_) | Step::WriteCpu(_) => {
                    let dur = self.cfg.params.obj_cpu;
                    self.submit_cpu(term, dur, Priority::Normal, epoch, now);
                    return;
                }
                Step::IntThink => {
                    self.prof.switch(Stage::Variate);
                    let d = self.int_think.sample(&mut self.delay_rng);
                    self.prof.switch(Stage::Dispatch);
                    if d.is_zero() {
                        self.arena.advance(term);
                        continue;
                    }
                    let txn = self
                        .arena
                        .get_mut(term)
                        .expect("terminal has no active transaction");
                    txn.state = TxnState::Thinking;
                    let epoch = txn.epoch;
                    self.sched(now + d, Event::Delay(term, epoch, DelayKind::IntThink));
                    return;
                }
                Step::Validate => {
                    if self.charge_cc_if_needed(term, now) {
                        return;
                    }
                    self.prof.switch(Stage::Validate);
                    let act = self.validate(term, now);
                    self.prof.switch(Stage::Dispatch);
                    match act {
                        CcAction::Proceed => continue,
                        CcAction::Suspend => return,
                    }
                }
                Step::Commit => {
                    self.commit(term, now);
                    return;
                }
            }
        }
    }

    /// If `cc_cpu > 0` and this step's CC charge hasn't been paid, submit it
    /// (high priority, per the paper's CPU discipline) and return `true`.
    fn charge_cc_if_needed(&mut self, term: usize, now: SimTime) -> bool {
        let cc_cpu = self.cfg.params.cc_cpu;
        if cc_cpu.is_zero() {
            return false;
        }
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        if txn.cc_charged {
            return false;
        }
        let epoch = txn.epoch;
        self.submit_cpu(term, cc_cpu, Priority::High, epoch, now);
        true
    }

    // ------------------------------------------------------------------
    // Concurrency control
    // ------------------------------------------------------------------

    fn cc_request(&mut self, term: usize, obj: ObjId, mode: LockMode, now: SimTime) -> CcAction {
        if self.charge_cc_if_needed(term, now) {
            return CcAction::Suspend;
        }
        match self.cfg.algorithm {
            // Static locking shares the blocking discipline; the canonical
            // acquisition order makes its deadlock search a no-op.
            CcAlgorithm::Blocking | CcAlgorithm::StaticLocking => {
                self.cc_blocking(term, obj, mode, now)
            }
            CcAlgorithm::ImmediateRestart => {
                self.cc_no_wait(term, obj, mode, now, AbortCause::Denial)
            }
            CcAlgorithm::NoWaiting => self.cc_no_wait(term, obj, mode, now, AbortCause::Denial),
            CcAlgorithm::WaitDie => self.cc_wait_die(term, obj, mode, now),
            CcAlgorithm::WoundWait => self.cc_wound_wait(term, obj, mode, now),
            CcAlgorithm::BasicTO => self.cc_tso(term, obj, mode, now),
            CcAlgorithm::Optimistic
            | CcAlgorithm::NoCc
            | CcAlgorithm::MvccSi
            | CcAlgorithm::SiloOcc
            | CcAlgorithm::TicToc => {
                unreachable!("lock-free algorithms have no lock steps")
            }
        }
    }

    fn cc_blocking(&mut self, term: usize, obj: ObjId, mode: LockMode, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        match self.lockmgr.request(tid, obj, mode) {
            RequestOutcome::Granted => {
                self.arena.advance(term);
                self.emit(now, TraceEvent::Acquire(tid, obj, mode));
                CcAction::Proceed
            }
            RequestOutcome::Queued => {
                txn.state = TxnState::Blocked;
                txn.blocks += 1;
                self.metrics.on_block();
                self.emit(now, TraceEvent::Block(tid, obj));
                self.resolve_deadlocks(term, now);
                CcAction::Suspend
            }
            RequestOutcome::Denied => unreachable!("request never denies"),
        }
    }

    fn cc_no_wait(
        &mut self,
        term: usize,
        obj: ObjId,
        mode: LockMode,
        now: SimTime,
        cause: AbortCause,
    ) -> CcAction {
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        match self.lockmgr.try_request(tid, obj, mode) {
            RequestOutcome::Granted => {
                self.arena.advance(term);
                self.emit(now, TraceEvent::Acquire(tid, obj, mode));
                CcAction::Proceed
            }
            RequestOutcome::Denied => {
                self.abort_and_restart(term, cause, now);
                CcAction::Suspend
            }
            RequestOutcome::Queued => unreachable!("try_request never queues"),
        }
    }

    /// Wait-die: on conflict, an older requester waits; a younger one dies.
    fn cc_wait_die(&mut self, term: usize, obj: ObjId, mode: LockMode, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let my_ts = (txn.arrival, tid);
        let mut blockers = std::mem::take(&mut self.blocker_buf);
        self.lockmgr.blockers_into(tid, obj, mode, &mut blockers);
        let older_exists = blockers.iter().any(|&b| self.timestamp_of(b) < my_ts);
        blockers.clear();
        self.blocker_buf = blockers;
        if older_exists {
            // Die: restart keeping the original timestamp (arrival survives
            // restarts), which guarantees eventual progress.
            self.abort_and_restart(term, AbortCause::Died, now);
            return CcAction::Suspend;
        }
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        match self.lockmgr.request(tid, obj, mode) {
            RequestOutcome::Granted => {
                self.arena.advance(term);
                self.emit(now, TraceEvent::Acquire(tid, obj, mode));
                CcAction::Proceed
            }
            RequestOutcome::Queued => {
                txn.state = TxnState::Blocked;
                txn.blocks += 1;
                self.metrics.on_block();
                self.emit(now, TraceEvent::Block(tid, obj));
                CcAction::Suspend
            }
            RequestOutcome::Denied => unreachable!(),
        }
    }

    /// Wound-wait: on conflict, an older requester wounds (aborts) younger
    /// holders; a younger requester waits. Holders past their commit point
    /// are spared (wounding them gains nothing).
    fn cc_wound_wait(&mut self, term: usize, obj: ObjId, mode: LockMode, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let my_ts = (txn.arrival, tid);
        // Wound younger blockers one at a time, re-reading the blocker set
        // after each abort: releasing a victim's locks can cascade (grants,
        // further wounds) and retire other would-be victims.
        let mut blockers = std::mem::take(&mut self.blocker_buf);
        loop {
            blockers.clear();
            self.lockmgr.blockers_into(tid, obj, mode, &mut blockers);
            let victim = blockers.iter().copied().find(|&b| {
                let b_term = self.term_of(b);
                self.arena.get(b_term).is_some_and(|bt| {
                    bt.id == b
                        && (bt.arrival, bt.id) > my_ts
                        && bt.state.is_active()
                        && !self.is_committing(b_term)
                })
            });
            match victim {
                Some(b) => {
                    let b_term = self.term_of(b);
                    self.abort_and_restart(b_term, AbortCause::Wounded, now);
                }
                None => break,
            }
        }
        blockers.clear();
        self.blocker_buf = blockers;
        // A wound cascade can come full circle: releasing a victim's locks
        // dispatches waiters, one of which may be older than *us* and wound
        // us in turn. If that happened, our attempt is over.
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        if txn.id != tid || txn.state != TxnState::Running {
            return CcAction::Suspend;
        }
        match self.lockmgr.request(tid, obj, mode) {
            RequestOutcome::Granted => {
                self.arena.advance(term);
                self.emit(now, TraceEvent::Acquire(tid, obj, mode));
                CcAction::Proceed
            }
            RequestOutcome::Queued => {
                txn.state = TxnState::Blocked;
                txn.blocks += 1;
                self.metrics.on_block();
                self.emit(now, TraceEvent::Block(tid, obj));
                CcAction::Suspend
            }
            RequestOutcome::Denied => unreachable!(),
        }
    }

    /// Basic timestamp ordering: reads/prewrites must respect timestamp
    /// order; late operations restart with a fresh timestamp; readers wait
    /// out pending smaller-timestamp prewrites.
    fn cc_tso(&mut self, term: usize, obj: ObjId, mode: LockMode, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let ts = (txn.attempt_start, tid);
        match mode {
            LockMode::Read => match self.tso.read(tid, obj, ts) {
                TsoRead::Granted => {
                    self.arena.advance(term);
                    if self.history.is_some() {
                        // The version this read observes is decided *now*:
                        // record the grant instant as the read time.
                        self.arena.push_read_time(term, now);
                    }
                    CcAction::Proceed
                }
                TsoRead::Wait => {
                    txn.state = TxnState::Blocked;
                    txn.blocks += 1;
                    self.metrics.on_block();
                    self.emit(now, TraceEvent::Block(tid, obj));
                    CcAction::Suspend
                }
                TsoRead::Reject => {
                    self.emit(now, TraceEvent::TsRejected(tid, obj));
                    self.abort_and_restart(term, AbortCause::TsRejected, now);
                    CcAction::Suspend
                }
            },
            LockMode::Write => match self.tso.prewrite(tid, obj, ts) {
                TsoWrite::Granted => {
                    self.arena.advance(term);
                    CcAction::Proceed
                }
                TsoWrite::Reject => {
                    self.emit(now, TraceEvent::TsRejected(tid, obj));
                    self.abort_and_restart(term, AbortCause::TsRejected, now);
                    CcAction::Suspend
                }
            },
        }
    }

    /// Resume readers whose awaited prewrite resolved. Unlike lock grants,
    /// the read is *re-checked* (not advanced past): the reader may wait
    /// again on another pending prewrite, be granted, or reject.
    fn process_tso_wakeups(&mut self, woken: Vec<TxnId>, now: SimTime) {
        for w in woken {
            let term = self.term_of(w);
            let Some(txn) = self.arena.get_mut(term) else {
                continue;
            };
            if txn.id != w || txn.state != TxnState::Blocked {
                continue;
            }
            txn.state = TxnState::Running;
            // A TSO wait only ever happens on a read step; report which
            // object the reader resumes on. The re-check may block again.
            let obj = match txn.step() {
                Step::LockRead(i) => Some(self.arena.read_at(term, i)),
                _ => None,
            };
            if let Some(obj) = obj {
                self.emit(now, TraceEvent::Grant(w, obj, LockMode::Read));
            }
            self.enqueue_dispatch(term);
        }
    }

    /// The commit-point test (a no-op for locking algorithms).
    fn validate(&mut self, term: usize, now: SimTime) -> CcAction {
        match self.cfg.algorithm {
            CcAlgorithm::Optimistic => self.validate_kung_robinson(term, now),
            CcAlgorithm::MvccSi => self.validate_mvcc(term, now),
            CcAlgorithm::SiloOcc => self.validate_silo(term, now),
            CcAlgorithm::TicToc => self.validate_tictoc(term, now),
            _ => {
                self.arena.advance(term);
                CcAction::Proceed
            }
        }
    }

    /// Classic optimistic CC: serial validation against every commit since
    /// the attempt started.
    fn validate_kung_robinson(&mut self, term: usize, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let start = txn.attempt_start;
        let outcome = self.validator.validate(start, self.arena.reads(term));
        if let Err(conflict) = outcome {
            self.emit(now, TraceEvent::ValidationFailure(tid, conflict.obj));
            self.abort_and_restart(term, AbortCause::Validation, now);
            return CcAction::Suspend;
        }
        {
            // Kung–Robinson critical section: stamp writes at validation.
            // Borrowing the writeset straight out of the arena (disjoint
            // fields) avoids a per-commit Vec clone on the optimistic hot
            // path.
            self.validator
                .commit(now, self.arena.write_objs(term).iter().copied());
            let txn = self
                .arena
                .get_mut(term)
                .expect("terminal has no active transaction");
            txn.publish_at = Some(now);
            self.arena.advance(term);
            CcAction::Proceed
        }
    }

    /// Snapshot isolation: first-committer-wins over the write set only
    /// (reads came from the attempt-start snapshot and need no check).
    fn validate_mvcc(&mut self, term: usize, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let start = txn.attempt_start;
        match self
            .mvcc
            .check_and_install(start, now, tid, self.arena.write_objs(term))
        {
            Err(conflict) => {
                self.emit(now, TraceEvent::ValidationFailure(tid, conflict.obj));
                self.abort_and_restart(term, AbortCause::Validation, now);
                CcAction::Suspend
            }
            Ok(_installed) => {
                let txn = self
                    .arena
                    .get_mut(term)
                    .expect("terminal has no active transaction");
                txn.publish_at = Some(now);
                self.arena.advance(term);
                CcAction::Proceed
            }
        }
    }

    /// Silo-style epoch OCC: the read set is re-checked against per-object
    /// TID words; an unchanged read set commits and bumps the words.
    fn validate_silo(&mut self, term: usize, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let mut scratch = std::mem::take(&mut self.rw_scratch);
        scratch.clear();
        scratch.extend(
            self.arena
                .reads(term)
                .iter()
                .copied()
                .zip(self.arena.read_times(term).iter().copied()),
        );
        let outcome = self.silo.validate(&scratch);
        self.rw_scratch = scratch;
        if let Err(conflict) = outcome {
            self.emit(now, TraceEvent::ValidationFailure(tid, conflict.obj));
            self.abort_and_restart(term, AbortCause::Validation, now);
            return CcAction::Suspend;
        }
        self.silo
            .commit(now, self.arena.write_objs(term).iter().copied());
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        txn.publish_at = Some(now);
        self.arena.advance(term);
        CcAction::Proceed
    }

    /// TicToc: derive a commit timestamp covering every read version and
    /// landing after every read extension of the written objects, instead
    /// of rejecting on physical-time conflicts.
    fn validate_tictoc(&mut self, term: usize, now: SimTime) -> CcAction {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        let tid = txn.id;
        let mut scratch = std::mem::take(&mut self.tt_scratch);
        scratch.clear();
        scratch.extend(
            self.arena
                .reads(term)
                .iter()
                .zip(self.arena.read_times(term))
                .zip(self.arena.read_auxes(term))
                .map(|((&obj, &wts), &rts)| (obj, TtWord { wts, rts })),
        );
        let outcome = self
            .tictoc
            .validate_and_commit(&scratch, self.arena.write_objs(term));
        self.tt_scratch = scratch;
        match outcome {
            Err(conflict) => {
                self.emit(now, TraceEvent::ValidationFailure(tid, conflict.obj));
                self.abort_and_restart(term, AbortCause::Validation, now);
                CcAction::Suspend
            }
            Ok(commit_ts) => {
                let txn = self
                    .arena
                    .get_mut(term)
                    .expect("terminal has no active transaction");
                // The *logical* commit instant: the history records it so
                // the serializability check follows TicToc's timestamp
                // order rather than physical validation order.
                txn.publish_at = Some(commit_ts);
                self.arena.advance(term);
                CcAction::Proceed
            }
        }
    }

    /// Detect and break deadlocks after `term` blocked, until `term` is no
    /// longer blocked or no cycle remains.
    fn resolve_deadlocks(&mut self, term: usize, now: SimTime) {
        loop {
            let txn = self
                .arena
                .get(term)
                .expect("terminal has no active transaction");
            if txn.state != TxnState::Blocked {
                return;
            }
            let Some(cycle) = self.lockmgr.find_deadlock(txn.id) else {
                return;
            };
            let victim = self.choose_victim(&cycle);
            let victim_term = self.term_of(victim);
            let detector = self
                .arena
                .get(term)
                .expect("terminal has no active transaction")
                .id;
            self.emit(now, TraceEvent::Deadlock { detector, victim });
            self.abort_and_restart(victim_term, AbortCause::Deadlock, now);
        }
    }

    fn choose_victim(&self, cycle: &[TxnId]) -> TxnId {
        let key = |tid: &TxnId| {
            let t = self.arena.get(self.term_of(*tid)).expect("cycle txn");
            debug_assert_eq!(t.id, *tid);
            (t.arrival, t.id)
        };
        match self.cfg.victim {
            VictimPolicy::Youngest => *cycle.iter().max_by_key(|t| key(t)).expect("cycle"),
            VictimPolicy::Oldest => *cycle.iter().min_by_key(|t| key(t)).expect("cycle"),
            VictimPolicy::FewestLocks => *cycle
                .iter()
                .min_by_key(|t| (self.lockmgr.locks_held(**t), key(t)))
                .expect("cycle"),
        }
    }

    // ------------------------------------------------------------------
    // Transaction termination
    // ------------------------------------------------------------------

    /// Abort `term`'s current attempt and requeue it per the restart-delay
    /// policy.
    fn abort_and_restart(&mut self, term: usize, cause: AbortCause, now: SimTime) {
        let txn = self.arena.get_mut(term).expect("aborting live txn");
        debug_assert!(txn.state.is_active(), "victims are active");
        txn.restarts += 1;
        txn.bump_epoch();
        let tid = txn.id;
        let class = txn.class;
        self.metrics
            .on_restart(class, cause == AbortCause::Deadlock);
        self.emit(now, TraceEvent::Restart(tid));

        // Leave the active set.
        self.active -= 1;
        self.metrics.on_active_change(now, self.active);

        // Release locks (and any queued request); this may unblock others.
        // The grant buffer is taken from (and later returned to) the
        // simulator so release cascades never allocate in steady state.
        let mut grants = std::mem::take(&mut self.grant_buf);
        if self.cfg.algorithm.uses_locks() {
            let held = self.lockmgr.locks_held(tid) as u32;
            self.lockmgr.release_all_into(tid, &mut grants);
            self.emit(now, TraceEvent::LocksReleased(tid, held));
        }
        // Basic T/O: drop prewrites and cancel a parked read; wake readers.
        let tso_woken = if self.cfg.algorithm == CcAlgorithm::BasicTO {
            let ts = (
                self.arena
                    .get(term)
                    .expect("terminal has no active transaction")
                    .attempt_start,
                tid,
            );
            self.tso.abort(tid, ts)
        } else {
            Vec::new()
        };

        // Requeue per policy.
        let delay = self.restart_delay_for(cause);
        let txn = self
            .arena
            .get_mut(term)
            .expect("terminal has no active transaction");
        if delay.is_zero() {
            txn.state = TxnState::Ready;
            self.ready.push_back(term);
        } else {
            txn.state = TxnState::RestartDelay;
            let epoch = txn.epoch;
            self.sched(now + delay, Event::Delay(term, epoch, DelayKind::Restart));
        }

        self.process_grants(&grants, now);
        grants.clear();
        self.grant_buf = grants;
        self.process_tso_wakeups(tso_woken, now);
        self.try_admit(now);
    }

    /// The delay to apply before re-queueing a restarted transaction.
    fn restart_delay_for(&mut self, cause: AbortCause) -> SimDuration {
        let applies = match self.cfg.algorithm {
            // No-waiting is immediate-restart *without* the delay — that is
            // its defining difference, so the Fig. 11 flag does not apply.
            CcAlgorithm::NoWaiting => false,
            CcAlgorithm::ImmediateRestart => true,
            _ => self.cfg.restart_delay_for_all,
        };
        let mut delay = if applies {
            match self.cfg.params.restart_delay {
                RestartDelayPolicy::None => SimDuration::ZERO,
                RestartDelayPolicy::Adaptive => {
                    sample_exponential(self.resp_avg.value(), &mut self.delay_rng)
                }
                RestartDelayPolicy::Fixed(m) => sample_exponential(m, &mut self.delay_rng),
            }
        } else {
            SimDuration::ZERO
        };
        // A denial- or die-restarted transaction whose conflicting lock is
        // its *first* request would otherwise retry at the same simulated
        // instant against the same holder, forever (an empty ready queue
        // readmits it immediately; lock requests cost no simulated time).
        // The paper notes the delay exists precisely so "the same lock
        // conflict will not re-occur repeatedly"; we floor the delay at an
        // exponential draw with mean one object-access time — the cheapest
        // physically meaningful, desynchronizing gap — to rule the
        // zero-time livelock out for the no-delay variants too.
        if delay.is_zero()
            && matches!(
                cause,
                AbortCause::Denial | AbortCause::Died | AbortCause::TsRejected
            )
        {
            let floor_mean = self
                .cfg
                .params
                .obj_io
                .saturating_add(self.cfg.params.obj_cpu);
            delay = sample_exponential(floor_mean, &mut self.delay_rng)
                .max(SimDuration::from_micros(1));
        }
        delay
    }

    fn commit(&mut self, term: usize, now: SimTime) {
        let txn = self.arena.get_mut(term).expect("committing live txn");
        debug_assert_eq!(txn.state, TxnState::Running);
        let tid = txn.id;
        let response = now.since(txn.arrival);
        let usage = txn.usage;
        let class = txn.class;
        let attempt_start = txn.attempt_start;
        let publish_at = txn.publish_at;
        txn.state = TxnState::AtTerminal;

        if let Some(history) = self.history.as_mut() {
            history.push(CommittedTxn {
                id: tid,
                start: attempt_start,
                reads: self
                    .arena
                    .reads(term)
                    .iter()
                    .copied()
                    .zip(self.arena.read_times(term).iter().copied())
                    .collect(),
                writes: self.arena.write_objs(term).to_vec(),
                commit_at: publish_at.unwrap_or(now),
            });
        }

        self.emit(now, TraceEvent::Commit(tid));
        if self.cfg.algorithm == CcAlgorithm::MvccSi {
            // The versions were installed at validation; announcing them at
            // the commit event gives the auditor a conservation obligation
            // to discharge (every MVCC commit accounts for its writes).
            let installed = self.arena.write_objs(term).len() as u32;
            self.emit(now, TraceEvent::VersionInstalled(tid, installed));
        }
        self.resp_avg.observe(response);
        self.metrics
            .on_commit(class, response, usage.cpu_us, usage.io_us);

        self.active -= 1;
        self.metrics.on_active_change(now, self.active);

        // Strict 2PL: locks released after the deferred updates, i.e. here.
        let leak = self.take_lock_leak();
        let mut grants = std::mem::take(&mut self.grant_buf);
        if self.cfg.algorithm.uses_locks() && !leak {
            let held = self.lockmgr.locks_held(tid) as u32;
            self.lockmgr.release_all_into(tid, &mut grants);
            self.emit(now, TraceEvent::LocksReleased(tid, held));
        }
        let tso_woken = if self.cfg.algorithm == CcAlgorithm::BasicTO {
            let ts = (
                self.arena
                    .get(term)
                    .expect("terminal has no active transaction")
                    .attempt_start,
                tid,
            );
            let (woken, applied) = self.tso.commit(tid, ts);
            // The Thomas write rule may have skipped stale writes: only the
            // applied ones were published (fix the history record).
            if let Some(history) = self.history.as_mut() {
                if let Some(last) = history.txns().last() {
                    debug_assert_eq!(last.id, tid);
                }
                history.amend_last_writes(&applied);
            }
            woken
        } else {
            Vec::new()
        };

        // The terminal starts thinking about its next transaction.
        self.prof.switch(Stage::Variate);
        let think = self.sample_ext_think();
        self.prof.switch(Stage::Dispatch);
        self.sched(now + think, Event::Arrive(term));

        self.process_grants(&grants, now);
        grants.clear();
        self.grant_buf = grants;
        self.process_tso_wakeups(tso_woken, now);
        self.try_admit(now);
    }

    /// Resume transactions whose queued lock requests were just granted.
    fn process_grants(&mut self, grants: &[Grant], now: SimTime) {
        for &g in grants {
            let term = self.term_of(g.txn);
            let Some(txn) = self.arena.get_mut(term) else {
                continue;
            };
            if txn.id != g.txn {
                continue;
            }
            debug_assert_eq!(txn.state, TxnState::Blocked);
            debug_assert!(matches!(
                txn.step(),
                Step::PreclaimLock(_) | Step::LockRead(_) | Step::LockWrite(_)
            ));
            txn.state = TxnState::Running;
            self.arena.advance(term);
            self.emit(now, TraceEvent::Grant(g.txn, g.obj, g.mode));
            self.enqueue_dispatch(term);
        }
    }

    // ------------------------------------------------------------------
    // Resource access
    // ------------------------------------------------------------------

    fn submit_cpu(
        &mut self,
        term: usize,
        dur: SimDuration,
        prio: Priority,
        epoch: u32,
        now: SimTime,
    ) {
        match &mut self.cpus {
            None => {
                self.inf_cpu_busy_us += dur.as_micros();
                self.sched(now + dur, Event::InfDone(term, epoch, ServiceKind::Cpu));
            }
            Some(pool) => {
                // Uncontended fast path: an idle server means the request
                // starts now with identical accounting, so the completion
                // can carry the payload itself and the pool stores none.
                if self.cfg.elide_uncontended {
                    if let Some(s) = pool.try_submit_direct(now, dur) {
                        self.elided_cpu += 1;
                        self.sched(
                            s.completes_at,
                            Event::CpuDoneFast {
                                server: s.server as u32,
                                term: term as u32,
                                epoch,
                            },
                        );
                        return;
                    }
                }
                if let Some(s) = pool.submit(
                    now,
                    Request {
                        payload: (term, epoch),
                        duration: dur,
                        priority: prio,
                    },
                ) {
                    self.sched(s.completes_at, Event::CpuDone(s.server));
                }
            }
        }
    }

    fn submit_io(&mut self, term: usize, obj: ObjId, epoch: u32, now: SimTime) {
        let _ = obj;
        let dur = self.cfg.params.obj_io;
        match &mut self.disks {
            None => {
                self.inf_io_busy_us += dur.as_micros();
                self.sched(now + dur, Event::InfDone(term, epoch, ServiceKind::Io));
            }
            Some(array) => {
                // The paper's I/O model: "chooses a disk (at random, with
                // all disks being equally likely)" (§3). A static
                // object→disk map is NOT equivalent here: restarted
                // transactions re-read the same objects, so a transient
                // queue on one disk attracts every retry of every
                // transaction that touches it — a self-sustaining convoy
                // the paper's model cannot form.
                let disk = self.disk_pick.sample(&mut self.disk_rng) as usize;
                if self.cfg.elide_uncontended {
                    if let Some(s) = array.try_submit_direct(now, disk, dur) {
                        self.elided_disk += 1;
                        self.sched(
                            s.completes_at,
                            Event::DiskDoneFast {
                                disk: s.disk as u32,
                                term: term as u32,
                                epoch,
                            },
                        );
                        return;
                    }
                }
                if let Some(s) = array.submit(now, disk, (term, epoch), dur) {
                    self.sched(s.completes_at, Event::DiskDone(s.disk));
                }
            }
        }
    }

    fn busy_micros(&self, now: SimTime) -> (u64, u64) {
        let cpu = self
            .cpus
            .as_ref()
            .map_or(self.inf_cpu_busy_us, |p| p.busy_micros(now));
        let io = self
            .disks
            .as_ref()
            .map_or(self.inf_io_busy_us, |d| d.busy_micros(now));
        (cpu, io)
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// Publish `event` to the trace ring and any sinks. When neither is
    /// attached (`observed` is false — the common experiment-sweep case)
    /// this is one predicted-not-taken branch; whether anything observes
    /// the run must never influence the simulation itself.
    #[inline]
    fn emit(&mut self, now: SimTime, event: TraceEvent) {
        if !self.observed {
            return;
        }
        self.emit_observed(now, event);
    }

    #[cold]
    fn emit_observed(&mut self, now: SimTime, event: TraceEvent) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(now, event);
        }
        for sink in &mut self.sinks {
            sink.on_event(now, &event);
        }
    }

    fn term_of(&self, tid: TxnId) -> usize {
        (tid.0 % self.arena.num_terms() as u64) as usize
    }

    fn timestamp_of(&self, tid: TxnId) -> (SimTime, TxnId) {
        let t = self.arena.get(self.term_of(tid)).expect("live txn");
        debug_assert_eq!(t.id, tid);
        (t.arrival, t.id)
    }

    /// Past the commit point (validation) — only deferred updates remain.
    fn is_committing(&self, term: usize) -> bool {
        let txn = self
            .arena
            .get(term)
            .expect("terminal has no active transaction");
        matches!(txn.step(), Step::UpdateIo(_) | Step::Commit)
    }

    /// Current parameters (for inspection in tests/examples).
    #[must_use]
    pub fn params(&self) -> &Params {
        &self.cfg.params
    }
}

/// Validate `cfg`, run the simulation to completion, and return the report.
///
/// # Errors
/// Returns [`RunError::InvalidConfig`] if the configuration is invalid, or
/// [`RunError::BudgetExhausted`] if the run exceeds its [`crate::RunBudget`].
pub fn run(cfg: SimConfig) -> Result<Report, RunError> {
    Simulator::new(cfg)?.run_to_completion()
}

/// Like [`run`], but enable tracing (with the given event capacity) and
/// also return the [`Trace`].
///
/// # Errors
/// Returns [`RunError`] if the configuration is invalid or the run exceeds
/// its budget.
pub fn run_with_trace(mut cfg: SimConfig, capacity: usize) -> Result<(Report, Trace), RunError> {
    cfg.trace_capacity = capacity.max(1);
    let mut sim = Simulator::new(cfg)?;
    sim.run_loop()?;
    let report = sim.finish();
    let trace = sim.trace.take().expect("tracing was enabled");
    Ok((report, trace))
}

/// Like [`run`], but force history recording on and also return the
/// committed-transaction [`History`] for serializability checking.
///
/// # Errors
/// Returns [`RunError`] if the configuration is invalid or the run exceeds
/// its budget.
pub fn run_with_history(mut cfg: SimConfig) -> Result<(Report, History), RunError> {
    cfg.record_history = true;
    let mut sim = Simulator::new(cfg)?;
    sim.run_loop()?;
    let report = sim.finish();
    let history = sim.history.take().expect("history recording was enabled");
    Ok((report, history))
}

/// Like [`run`], but also return the engine's [`PerfStats`] (events
/// handled, wall-clock time, peak calendar / lock-table occupancy). The
/// counters are passive: the report is identical to what [`run`] returns.
///
/// # Errors
/// Returns [`RunError`] if the configuration is invalid or the run exceeds
/// its budget.
pub fn run_with_perf(cfg: SimConfig) -> Result<(Report, PerfStats), RunError> {
    let mut sim = Simulator::new(cfg)?;
    sim.run_loop()?;
    let report = sim.finish();
    Ok((report, sim.perf_stats()))
}

/// Everything a budget-tolerant run salvages (see
/// [`Simulator::run_collecting`]).
#[derive(Debug)]
pub struct RunOutcome {
    /// Metrics over whatever window completed (partial when `stopped`).
    pub report: Report,
    /// `Some` when the run was stopped by its [`crate::RunBudget`] rather
    /// than finishing its configured batches.
    pub stopped: Option<RunError>,
    /// Engine perf counters up to the stopping point.
    pub perf: PerfStats,
    /// Streaming response quantiles up to the stopping point.
    pub quantiles: crate::metrics::StreamingQuantiles,
    /// Per-stage wall-time breakdown (`stage-profiler` builds only).
    pub stages: Option<StageProfile>,
}

/// Like [`run`], but budget exhaustion salvages the partial run instead of
/// discarding it: the [`RunOutcome`] always carries a report, perf
/// counters, and streaming quantiles.
///
/// # Errors
/// Returns [`RunError::InvalidConfig`] if the configuration is invalid
/// (budget stops are *not* errors here — see [`RunOutcome::stopped`]).
pub fn run_collecting(cfg: SimConfig) -> Result<RunOutcome, RunError> {
    Ok(Simulator::new(cfg)?.run_collecting())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetricsConfig;

    fn quick_cfg(algo: CcAlgorithm) -> SimConfig {
        SimConfig::new(algo)
            .with_metrics(MetricsConfig {
                warmup_batches: 1,
                batches: 4,
                batch_time: SimDuration::from_secs(30),
                confidence: ccsim_stats::Confidence::Ninety,
            })
            .with_seed(1234)
    }

    #[test]
    fn every_algorithm_commits_transactions() {
        for algo in CcAlgorithm::ALL {
            let report = run(quick_cfg(algo)).expect("valid config");
            assert!(
                report.commits > 50,
                "{algo} committed only {} transactions",
                report.commits
            );
            assert!(report.throughput.mean > 0.0, "{algo} zero throughput");
            assert!(
                report.response_time_mean > 0.4,
                "{algo} impossibly fast responses: {}",
                report.response_time_mean
            );
        }
    }

    #[test]
    fn identical_seeds_replay_identically() {
        for algo in [CcAlgorithm::Blocking, CcAlgorithm::Optimistic] {
            let a = run(quick_cfg(algo)).unwrap();
            let b = run(quick_cfg(algo)).unwrap();
            assert_eq!(a, b, "{algo} runs diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(quick_cfg(CcAlgorithm::Blocking)).unwrap();
        let b = run(quick_cfg(CcAlgorithm::Blocking).with_seed(4321)).unwrap();
        assert_ne!(a.commits, b.commits);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = quick_cfg(CcAlgorithm::Blocking);
        cfg.params.mpl = 0;
        assert!(matches!(run(cfg), Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn event_budget_exhausts_deterministically() {
        let budget = crate::RunBudget::unlimited().with_max_events(500);
        let exhaust = || run(quick_cfg(CcAlgorithm::Blocking).with_budget(budget));
        let (a, b) = (exhaust(), exhaust());
        let Err(RunError::BudgetExhausted {
            exceeded,
            events,
            sim_time,
            ..
        }) = a
        else {
            panic!("expected budget exhaustion, got {a:?}");
        };
        assert_eq!(exceeded, BudgetKind::Events);
        assert_eq!(events, 501, "stops on the first event past the cap");
        // The twin run stops at the same event and instant (wall clock is
        // the one nondeterministic field).
        let Err(RunError::BudgetExhausted {
            events: events_b,
            sim_time: sim_time_b,
            ..
        }) = b
        else {
            panic!("expected budget exhaustion, got {b:?}");
        };
        assert_eq!((events, sim_time), (events_b, sim_time_b));
    }

    #[test]
    fn sim_time_budget_exhausts() {
        let budget = crate::RunBudget::unlimited().with_max_sim_time(SimDuration::from_secs(5));
        let res = run(quick_cfg(CcAlgorithm::Optimistic).with_budget(budget));
        let Err(RunError::BudgetExhausted {
            exceeded, sim_time, ..
        }) = res
        else {
            panic!("expected budget exhaustion, got {res:?}");
        };
        assert_eq!(exceeded, BudgetKind::SimTime);
        assert!(sim_time.since(SimTime::ZERO) > SimDuration::from_secs(5));
    }

    #[test]
    fn zero_wall_clock_budget_trips_on_first_check() {
        let budget = crate::RunBudget::unlimited().with_max_wall_clock(std::time::Duration::ZERO);
        let res = run(quick_cfg(CcAlgorithm::Blocking).with_budget(budget));
        assert!(
            matches!(
                res,
                Err(RunError::BudgetExhausted {
                    exceeded: BudgetKind::WallClock,
                    ..
                })
            ),
            "got {res:?}"
        );
    }

    #[test]
    fn default_budget_does_not_perturb_reports() {
        let capped = run(quick_cfg(CcAlgorithm::Blocking)).unwrap();
        let uncapped =
            run(quick_cfg(CcAlgorithm::Blocking).with_budget(crate::RunBudget::unlimited()))
                .unwrap();
        assert_eq!(capped, uncapped);
    }

    #[test]
    fn event_pool_accounting_is_exact_and_non_perturbing() {
        let plain = run(quick_cfg(CcAlgorithm::Blocking)).unwrap();
        let pool = crate::EventPool::unlimited();
        let pooled = run(quick_cfg(CcAlgorithm::Blocking).with_event_pool(pool.clone())).unwrap();
        // Attaching a pool must not change the simulation...
        assert_eq!(plain, pooled);
        // ...and after settlement the pool has been charged exactly the
        // number of events the run processed.
        let expected = {
            let sim = Simulator::new(quick_cfg(CcAlgorithm::Blocking)).unwrap();
            sim.run_collecting().perf.events
        };
        assert_eq!(pool.consumed(), expected);
        assert!(expected > 0);
    }

    #[test]
    fn depleted_event_pool_stops_the_run_with_a_typed_error() {
        // One block is granted at event 1; the second block (event 8193)
        // cannot be charged, so the run stops there deterministically.
        let pool = crate::EventPool::new(crate::EventPool::BLOCK + 10);
        let res = run(quick_cfg(CcAlgorithm::Blocking).with_event_pool(pool.clone()));
        let Err(RunError::BudgetExhausted {
            exceeded, events, ..
        }) = res
        else {
            panic!("expected pool exhaustion, got {res:?}");
        };
        assert_eq!(exceeded, BudgetKind::Pool);
        assert_eq!(events, crate::EventPool::BLOCK);
        // Settlement: exactly the processed events were consumed.
        assert_eq!(pool.consumed(), crate::EventPool::BLOCK);
        assert_eq!(pool.remaining(), 10);
        // A second run on the same pool fails at its first block charge
        // having processed nothing.
        let res = run(quick_cfg(CcAlgorithm::Blocking).with_event_pool(pool.clone()));
        let Err(RunError::BudgetExhausted { events, .. }) = res else {
            panic!("expected pool exhaustion, got {res:?}");
        };
        assert_eq!(events, 0);
    }

    #[test]
    fn low_conflict_algorithms_agree_roughly() {
        // Experiment 1's premise: with rare conflicts the algorithm barely
        // matters. Use the low-conflict database and compare throughputs.
        let mut reports = Vec::new();
        for algo in CcAlgorithm::PAPER_TRIO {
            let cfg = quick_cfg(algo).with_params(Params::low_conflict().with_mpl(10));
            reports.push(run(cfg).unwrap());
        }
        let tps: Vec<f64> = reports.iter().map(|r| r.throughput.mean).collect();
        let max = tps.iter().cloned().fold(f64::MIN, f64::max);
        let min = tps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - min) / max < 0.15,
            "low-conflict spread too wide: {tps:?}"
        );
    }

    #[test]
    fn disk_bound_throughput_is_capped_by_disk_capacity() {
        // 1 CPU / 2 disks, avg 350 ms of disk time per transaction:
        // the disks cannot push more than 2 / 0.35 ≈ 5.7 tps.
        let cfg =
            quick_cfg(CcAlgorithm::Blocking).with_params(Params::paper_baseline().with_mpl(25));
        let r = run(cfg).unwrap();
        assert!(
            r.throughput.mean < 5.8,
            "throughput {} exceeds disk capacity",
            r.throughput.mean
        );
        assert!(r.throughput.mean > 2.0, "throughput {}", r.throughput.mean);
        assert!(r.disk_util_total.mean > 0.5, "disks should be busy");
        assert!(r.disk_util_useful.mean <= r.disk_util_total.mean + 1e-9);
    }

    #[test]
    fn infinite_resources_scale_with_mpl_at_low_conflict() {
        let lo = run(quick_cfg(CcAlgorithm::Optimistic).with_params(
            Params::low_conflict()
                .with_mpl(5)
                .with_resources(ResourceSpec::Infinite),
        ))
        .unwrap();
        let hi = run(quick_cfg(CcAlgorithm::Optimistic).with_params(
            Params::low_conflict()
                .with_mpl(50)
                .with_resources(ResourceSpec::Infinite),
        ))
        .unwrap();
        assert!(
            hi.throughput.mean > lo.throughput.mean * 2.0,
            "mpl 50 ({}) should far outrun mpl 5 ({})",
            hi.throughput.mean,
            lo.throughput.mean
        );
    }

    #[test]
    fn avg_active_never_exceeds_mpl() {
        for algo in CcAlgorithm::PAPER_TRIO {
            let cfg = quick_cfg(algo).with_params(Params::paper_baseline().with_mpl(10));
            let r = run(cfg).unwrap();
            assert!(
                r.avg_active <= 10.0 + 1e-9,
                "{algo} avg_active {} exceeds mpl",
                r.avg_active
            );
            assert!(r.avg_active > 0.5, "{algo} avg_active {}", r.avg_active);
        }
    }

    #[test]
    fn blocking_blocks_and_restart_algorithms_restart() {
        let b = run(quick_cfg(CcAlgorithm::Blocking)).unwrap();
        assert!(b.block_ratio > 0.0, "blocking at db=1000 must block");
        let o = run(quick_cfg(CcAlgorithm::Optimistic)).unwrap();
        assert_eq!(o.block_ratio, 0.0, "optimistic never blocks");
        let ir = run(quick_cfg(CcAlgorithm::ImmediateRestart)).unwrap();
        assert_eq!(ir.block_ratio, 0.0, "immediate-restart never blocks");
        assert!(ir.restart_ratio > 0.0);
    }

    #[test]
    fn deadlock_prevention_schemes_never_deadlock() {
        for algo in [
            CcAlgorithm::WaitDie,
            CcAlgorithm::WoundWait,
            CcAlgorithm::NoWaiting,
        ] {
            let r = run(quick_cfg(algo)).unwrap();
            assert_eq!(r.deadlocks, 0, "{algo} reported deadlocks");
        }
    }

    #[test]
    fn interactive_think_time_slows_responses() {
        // Unsaturated system (infinite resources, mpl = terminals) so that
        // response time reflects service + internal think, not ready-queue
        // waiting.
        let unsat = Params::low_conflict()
            .with_mpl(200)
            .with_resources(ResourceSpec::Infinite);
        let base = run(quick_cfg(CcAlgorithm::Optimistic).with_params(unsat.clone())).unwrap();
        let think = run(quick_cfg(CcAlgorithm::Optimistic).with_params(
            unsat.with_think_times(SimDuration::from_secs(3), SimDuration::from_secs(1)),
        ))
        .unwrap();
        assert!(
            (base.response_time_mean - 0.5).abs() < 0.1,
            "base response {} should be ~0.5 s",
            base.response_time_mean
        );
        assert!(
            (think.response_time_mean - 1.5).abs() < 0.2,
            "with a 1 s internal think, response {} should be ~1.5 s",
            think.response_time_mean
        );
    }

    #[test]
    fn cc_cpu_charge_is_accounted() {
        let mut params = Params::paper_baseline().with_mpl(5);
        params.cc_cpu = SimDuration::from_millis(5);
        let with_charge = run(quick_cfg(CcAlgorithm::Blocking).with_params(params)).unwrap();
        let without =
            run(quick_cfg(CcAlgorithm::Blocking).with_params(Params::paper_baseline().with_mpl(5)))
                .unwrap();
        assert!(
            with_charge.cpu_util_total.mean > without.cpu_util_total.mean,
            "cc_cpu should raise CPU utilization ({} vs {})",
            with_charge.cpu_util_total.mean,
            without.cpu_util_total.mean
        );
    }

    #[test]
    fn mpl_larger_than_terminals_is_harmless() {
        // The mpl caps *active* transactions; with mpl > num_terms it never
        // binds and throughput equals the uncapped closed-loop rate.
        let mut params = Params::paper_baseline().with_mpl(1000);
        params.num_terms = 20;
        let r = run(quick_cfg(CcAlgorithm::Blocking).with_params(params)).unwrap();
        assert!(r.commits > 100);
        assert!(r.avg_active <= 20.0 + 1e-9);
    }

    #[test]
    fn zero_external_think_time_saturates_the_system() {
        let mut params = Params::paper_baseline().with_mpl(10);
        params.ext_think_time = SimDuration::ZERO;
        let r = run(quick_cfg(CcAlgorithm::Blocking).with_params(params)).unwrap();
        // Terminals resubmit instantly, so the active set stays pinned.
        assert!(r.avg_active > 9.5, "avg_active {}", r.avg_active);
        assert!(r.commits > 100);
    }

    #[test]
    fn deterministic_transaction_sizes() {
        let mut params = Params::paper_baseline().with_mpl(5);
        params.min_size = 6;
        params.max_size = 6;
        let r = run(quick_cfg(CcAlgorithm::Optimistic).with_params(params)).unwrap();
        assert!(r.commits > 100);
    }

    #[test]
    fn whole_database_transactions_make_progress() {
        // Every transaction reads the entire (tiny) database and writes all
        // of it: maximal conflict, upgrade deadlocks guaranteed. Progress
        // must still happen via victim selection.
        let mut params = Params::paper_baseline().with_mpl(5);
        params.db_size = 8;
        params.min_size = 8;
        params.max_size = 8;
        params.write_prob = 1.0;
        let r = run(quick_cfg(CcAlgorithm::Blocking).with_params(params)).unwrap();
        assert!(r.commits > 50, "only {} commits", r.commits);
        assert!(r.deadlocks > 0, "upgrade deadlocks were expected");
    }

    #[test]
    fn no_cc_baseline_outruns_safe_algorithms_under_contention() {
        let nocc = run(quick_cfg(CcAlgorithm::NoCc)).unwrap();
        let blocking = run(quick_cfg(CcAlgorithm::Blocking)).unwrap();
        assert_eq!(nocc.restarts, 0);
        assert_eq!(nocc.blocks, 0);
        assert!(nocc.throughput.mean >= blocking.throughput.mean * 0.99);
    }

    #[test]
    fn response_percentiles_are_ordered() {
        let r = run(quick_cfg(CcAlgorithm::Blocking)).unwrap();
        assert!(r.response_time_p50 > 0.0);
        assert!(r.response_time_p50 <= r.response_time_p95);
        assert!(r.response_time_p95 <= r.response_time_p99);
        assert!(r.response_time_p99 <= r.response_time_max * 1.06);
        // The median of a right-skewed latency distribution sits below the
        // mean.
        assert!(r.response_time_p50 <= r.response_time_mean * 1.1);
    }

    #[test]
    fn static_locking_never_restarts() {
        // Preclaiming in a global order is deadlock-free, and the blocking
        // discipline never denies — so static locking commits every
        // transaction on its first attempt.
        let r = run(quick_cfg(CcAlgorithm::StaticLocking)).unwrap();
        assert!(r.commits > 100);
        assert_eq!(r.restarts, 0, "static locking restarted");
        assert_eq!(r.deadlocks, 0, "static locking deadlocked");
        assert!(r.block_ratio > 0.0, "contention should cause waits");
    }

    #[test]
    fn static_locking_trails_dynamic_at_moderate_contention() {
        // Preclaiming holds every lock for the whole transaction, so at the
        // baseline contention level dynamic 2PL should be at least as good.
        let dynamic = run(
            quick_cfg(CcAlgorithm::Blocking).with_params(Params::paper_baseline().with_mpl(25))
        )
        .unwrap();
        let static_ = run(quick_cfg(CcAlgorithm::StaticLocking)
            .with_params(Params::paper_baseline().with_mpl(25)))
        .unwrap();
        assert!(
            dynamic.throughput.mean >= static_.throughput.mean * 0.95,
            "dynamic {} vs static {}",
            dynamic.throughput.mean,
            static_.throughput.mean
        );
    }

    #[test]
    fn trace_captures_transaction_lifecycles() {
        let (report, trace) =
            super::run_with_trace(quick_cfg(CcAlgorithm::Blocking), 100_000).expect("valid config");
        assert!(!trace.is_empty());
        // Every lifecycle event kind should appear under contention.
        let mut commits = 0u64;
        let mut blocks = 0u64;
        let mut restarts = 0u64;
        let mut deadlocks = 0u64;
        for (_, e) in trace.events() {
            match e {
                crate::trace::TraceEvent::Commit(_) => commits += 1,
                crate::trace::TraceEvent::Block(_, _) => blocks += 1,
                crate::trace::TraceEvent::Restart(_) => restarts += 1,
                crate::trace::TraceEvent::Deadlock { .. } => deadlocks += 1,
                _ => {}
            }
        }
        // Trace counts include warmup; metrics exclude it.
        assert!(commits >= report.commits, "{commits} vs {}", report.commits);
        assert!(blocks >= report.blocks);
        assert!(restarts >= report.restarts);
        assert!(deadlocks >= report.deadlocks);
        // Timestamps are nondecreasing.
        let mut last = SimTime::ZERO;
        for &(at, _) in trace.events() {
            assert!(at >= last);
            last = at;
        }
        let text = trace.render();
        assert!(text.contains("commits"));
    }

    #[test]
    fn trace_capacity_never_perturbs_results() {
        // Recording is pure observation: a disabled ring (capacity 0), a
        // tiny evicting ring, and a lossless one must all report the same
        // simulation.
        let mk = |capacity| {
            let mut cfg = quick_cfg(CcAlgorithm::Blocking);
            cfg.trace_capacity = capacity;
            run(cfg).expect("valid config")
        };
        let silent = mk(0);
        assert_eq!(silent, mk(8), "small evicting ring changed the run");
        assert_eq!(silent, mk(100_000), "lossless ring changed the run");
    }

    #[test]
    fn basic_to_commits_and_never_deadlocks() {
        let r = run(quick_cfg(CcAlgorithm::BasicTO)).unwrap();
        assert!(r.commits > 100, "{} commits", r.commits);
        assert_eq!(r.deadlocks, 0, "basic T/O is deadlock-free");
        assert!(r.restarts > 0, "timestamp rejections were expected");
    }

    #[test]
    fn basic_to_readers_wait_on_pending_prewrites() {
        // Under high write contention some reads must park on pending
        // prewrites of older transactions.
        let mut params = Params::paper_baseline().with_mpl(50);
        params.write_prob = 0.75;
        let r = run(quick_cfg(CcAlgorithm::BasicTO).with_params(params)).unwrap();
        assert!(r.blocks > 0, "expected reader waits, saw none");
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn victim_policies_all_resolve_deadlocks() {
        for victim in VictimPolicy::ALL {
            let mut cfg =
                quick_cfg(CcAlgorithm::Blocking).with_params(Params::paper_baseline().with_mpl(50));
            cfg.victim = victim;
            let r = run(cfg).unwrap();
            assert!(r.commits > 100, "{:?}: {} commits", victim, r.commits);
            assert!(
                r.deadlocks > 0,
                "{:?}: expected deadlocks at mpl 50",
                victim
            );
        }
    }

    #[test]
    fn victim_policy_changes_outcomes() {
        let mut young =
            quick_cfg(CcAlgorithm::Blocking).with_params(Params::paper_baseline().with_mpl(75));
        young.victim = VictimPolicy::Youngest;
        let mut old = young.clone();
        old.victim = VictimPolicy::Oldest;
        let a = run(young).unwrap();
        let b = run(old).unwrap();
        assert_ne!(
            a.commits, b.commits,
            "different victim policies should diverge"
        );
    }

    #[test]
    fn fixed_restart_delay_policy_is_honored() {
        // A very long fixed delay should depress immediate-restart
        // throughput relative to the adaptive policy (the paper's
        // sensitivity result).
        let adaptive = run(quick_cfg(CcAlgorithm::ImmediateRestart).with_params(
            Params::paper_baseline()
                .with_mpl(100)
                .with_resources(ResourceSpec::Infinite),
        ))
        .unwrap();
        let long_delay = run(quick_cfg(CcAlgorithm::ImmediateRestart).with_params(
            Params::paper_baseline()
                .with_mpl(100)
                .with_resources(ResourceSpec::Infinite)
                .with_restart_delay(RestartDelayPolicy::Fixed(SimDuration::from_secs(30))),
        ))
        .unwrap();
        assert!(
            long_delay.throughput.mean < adaptive.throughput.mean * 0.8,
            "30s delays ({}) should hurt vs adaptive ({})",
            long_delay.throughput.mean,
            adaptive.throughput.mean
        );
    }

    #[test]
    fn optimistic_trace_records_validation_failures() {
        let (report, trace) =
            super::run_with_trace(quick_cfg(CcAlgorithm::Optimistic), 200_000).unwrap();
        assert!(report.restarts > 0);
        let failures = trace
            .events()
            .filter(|(_, e)| matches!(e, crate::trace::TraceEvent::ValidationFailure(_, _)))
            .count();
        assert!(failures > 0, "expected validation-failure trace events");
    }

    #[test]
    fn useful_utilization_equals_total_when_no_restarts() {
        // Low conflict + blocking: restarts are rare, so wasted work ~ 0
        // and useful ≈ total.
        let cfg = quick_cfg(CcAlgorithm::Blocking).with_params(Params::low_conflict().with_mpl(10));
        let r = run(cfg).unwrap();
        assert!(
            (r.disk_util_total.mean - r.disk_util_useful.mean).abs() < 0.02,
            "total {} vs useful {}",
            r.disk_util_total.mean,
            r.disk_util_useful.mean
        );
    }
}
