//! Transaction step programs and per-attempt bookkeeping types.
//!
//! A transaction's behaviour is a fixed sequence of *steps* derived from its
//! [`TxnSpec`](ccsim_workload::TxnSpec) and the concurrency control algorithm
//! (paper §3):
//!
//! * locking algorithms interleave lock requests with object accesses:
//!   `lock(o) → io(o) → cpu(o)` per read, an optional internal think, then
//!   `upgrade(o) → cpu(o)` per write, then deferred-update I/Os, then commit;
//! * the optimistic algorithm performs the same accesses with no lock steps
//!   and a single validation step at its commit point.
//!
//! The step sequence is addressed by a flat program counter so that the
//! engine can advance a transaction with one integer increment. The
//! per-terminal runtime records themselves live in
//! [`TxnArena`](crate::arena::TxnArena).

use ccsim_des::SimDuration;

/// One step of a transaction program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Acquire the `k`-th lock of the preclaim plan (static locking: all
    /// locks, in canonical object order and final mode, before any access).
    PreclaimLock(usize),
    /// Acquire a read lock on the `i`-th read object (dynamic locking).
    LockRead(usize),
    /// Read I/O for the `i`-th read object.
    ReadIo(usize),
    /// Read CPU for the `i`-th read object.
    ReadCpu(usize),
    /// The intra-transaction think pause between reads and writes.
    IntThink,
    /// Upgrade the lock on the `j`-th *written* object to write mode.
    LockWrite(usize),
    /// CPU for the `j`-th write request (the I/O is deferred).
    WriteCpu(usize),
    /// The commit-point concurrency-control request: optimistic validation,
    /// a no-op for locking algorithms.
    Validate,
    /// Deferred-update I/O for the `j`-th written object.
    UpdateIo(usize),
    /// Commit: release locks, record statistics, return to the terminal.
    Commit,
}

/// How an algorithm family interleaves concurrency control with accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramShape {
    /// Dynamic two-phase locking: a lock step before each read, an upgrade
    /// step before each write (the paper's locking algorithms).
    Dynamic2pl,
    /// Static (conservative) locking: every lock acquired up front, in
    /// canonical object order and final mode, before the first access
    /// (the discipline of the paper's ancestor model, Ries/Stonebraker).
    Static2pl,
    /// No per-access concurrency control steps (optimistic, no-cc).
    LockFree,
}

/// The program shape for one spec under one algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Program {
    shape: ProgramShape,
    thinks: bool,
    reads: usize,
    writes: usize,
}

impl Program {
    /// Build the program shape for a transaction that reads `reads` objects
    /// and writes `writes` of them.
    #[must_use]
    pub fn new(shape: ProgramShape, thinks: bool, reads: usize, writes: usize) -> Self {
        Program {
            shape,
            thinks,
            reads,
            writes,
        }
    }

    fn per_read(&self) -> usize {
        match self.shape {
            ProgramShape::Dynamic2pl => 3,
            ProgramShape::Static2pl | ProgramShape::LockFree => 2,
        }
    }

    fn per_write(&self) -> usize {
        match self.shape {
            ProgramShape::Dynamic2pl => 2,
            ProgramShape::Static2pl | ProgramShape::LockFree => 1,
        }
    }

    fn preclaims(&self) -> usize {
        match self.shape {
            ProgramShape::Static2pl => self.reads,
            _ => 0,
        }
    }

    /// Total number of steps (the commit step is `len() - 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        let think = usize::from(self.thinks);
        self.preclaims() + self.per_read() * self.reads + think
            + self.per_write() * self.writes + 1 /* validate */
            + self.writes /* update IOs */ + 1 /* commit */
    }

    /// Whether the program has zero steps (never: there is always a commit).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of objects the program reads.
    #[must_use]
    pub fn num_reads(&self) -> usize {
        self.reads
    }

    /// Number of objects the program writes.
    #[must_use]
    pub fn num_writes(&self) -> usize {
        self.writes
    }

    /// Decode program counter `pc` into a [`Step`].
    ///
    /// # Panics
    /// Panics if `pc` is past the commit step.
    #[must_use]
    pub fn step_at(&self, pc: usize) -> Step {
        if pc < self.preclaims() {
            return Step::PreclaimLock(pc);
        }
        let pc = pc - self.preclaims();
        let per_read = self.per_read();
        let per_write = self.per_write();
        let dynamic = self.shape == ProgramShape::Dynamic2pl;
        let read_end = per_read * self.reads;
        if pc < read_end {
            let i = pc / per_read;
            return match (dynamic, pc % per_read) {
                (true, 0) => Step::LockRead(i),
                (true, 1) | (false, 0) => Step::ReadIo(i),
                _ => Step::ReadCpu(i),
            };
        }
        let mut off = pc - read_end;
        if self.thinks {
            if off == 0 {
                return Step::IntThink;
            }
            off -= 1;
        }
        let write_end = per_write * self.writes;
        if off < write_end {
            let j = off / per_write;
            return match (dynamic, off % per_write) {
                (true, 0) => Step::LockWrite(j),
                _ => Step::WriteCpu(j),
            };
        }
        off -= write_end;
        if off == 0 {
            return Step::Validate;
        }
        off -= 1;
        if off < self.writes {
            return Step::UpdateIo(off);
        }
        assert_eq!(off, self.writes, "program counter past commit");
        Step::Commit
    }
}

/// Where a transaction is in its lifecycle (paper Figure 1's queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// At the terminal, between transactions (external think).
    AtTerminal,
    /// In the ready queue, waiting for a multiprogramming slot.
    Ready,
    /// Active: in a cc/object/update queue or receiving service.
    Running,
    /// Active: blocked on a lock.
    Blocked,
    /// Active: in the intra-transaction think pause (holding locks).
    Thinking,
    /// Inactive: serving its restart delay.
    RestartDelay,
}

impl TxnState {
    /// Counts toward the multiprogramming level?
    #[must_use]
    pub fn is_active(self) -> bool {
        matches!(
            self,
            TxnState::Running | TxnState::Blocked | TxnState::Thinking
        )
    }
}

/// Per-attempt resource usage, for the useful/wasted split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptUsage {
    /// CPU microseconds consumed by this attempt.
    pub cpu_us: u64,
    /// Disk microseconds consumed by this attempt.
    pub io_us: u64,
}

impl AttemptUsage {
    /// Accrue a completed service.
    pub fn add_cpu(&mut self, d: SimDuration) {
        self.cpu_us += d.as_micros();
    }
    /// Accrue a completed I/O.
    pub fn add_io(&mut self, d: SimDuration) {
        self.io_us += d.as_micros();
    }
    /// Reset for a fresh attempt.
    pub fn reset(&mut self) {
        *self = AttemptUsage::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(program: Program) -> Vec<Step> {
        (0..program.len()).map(|pc| program.step_at(pc)).collect()
    }

    #[test]
    fn locking_program_shape() {
        let p = Program::new(ProgramShape::Dynamic2pl, false, 2, 1);
        assert_eq!(
            collect(p),
            vec![
                Step::LockRead(0),
                Step::ReadIo(0),
                Step::ReadCpu(0),
                Step::LockRead(1),
                Step::ReadIo(1),
                Step::ReadCpu(1),
                Step::LockWrite(0),
                Step::WriteCpu(0),
                Step::Validate,
                Step::UpdateIo(0),
                Step::Commit,
            ]
        );
    }

    #[test]
    fn optimistic_program_shape() {
        let p = Program::new(ProgramShape::LockFree, false, 2, 1);
        assert_eq!(
            collect(p),
            vec![
                Step::ReadIo(0),
                Step::ReadCpu(0),
                Step::ReadIo(1),
                Step::ReadCpu(1),
                Step::WriteCpu(0),
                Step::Validate,
                Step::UpdateIo(0),
                Step::Commit,
            ]
        );
    }

    #[test]
    fn think_step_sits_between_reads_and_writes() {
        let p = Program::new(ProgramShape::Dynamic2pl, true, 1, 1);
        assert_eq!(
            collect(p),
            vec![
                Step::LockRead(0),
                Step::ReadIo(0),
                Step::ReadCpu(0),
                Step::IntThink,
                Step::LockWrite(0),
                Step::WriteCpu(0),
                Step::Validate,
                Step::UpdateIo(0),
                Step::Commit,
            ]
        );
    }

    #[test]
    fn read_only_program_ends_with_validate_commit() {
        let p = Program::new(ProgramShape::LockFree, false, 3, 0);
        let steps = collect(p);
        assert_eq!(steps.len(), 3 * 2 + 2);
        assert_eq!(steps[steps.len() - 2], Step::Validate);
        assert_eq!(steps[steps.len() - 1], Step::Commit);
    }

    #[test]
    fn program_len_matches_enumeration() {
        for shape in [
            ProgramShape::Dynamic2pl,
            ProgramShape::Static2pl,
            ProgramShape::LockFree,
        ] {
            for thinks in [false, true] {
                for reads in 1..6 {
                    for writes in 0..=reads {
                        let p = Program::new(shape, thinks, reads, writes);
                        let steps = collect(p);
                        assert_eq!(steps.len(), p.len());
                        assert_eq!(*steps.last().unwrap(), Step::Commit);
                        assert!(!p.is_empty());
                        // Exactly one validate and one commit.
                        assert_eq!(steps.iter().filter(|s| **s == Step::Validate).count(), 1);
                        assert_eq!(steps.iter().filter(|s| **s == Step::Commit).count(), 1);
                        // Think appears iff requested.
                        assert_eq!(
                            steps.iter().filter(|s| **s == Step::IntThink).count(),
                            usize::from(thinks)
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "past commit")]
    fn pc_past_commit_panics() {
        let p = Program::new(ProgramShape::Dynamic2pl, false, 1, 0);
        let _ = p.step_at(p.len());
    }

    #[test]
    fn state_activity() {
        assert!(TxnState::Running.is_active());
        assert!(TxnState::Blocked.is_active());
        assert!(TxnState::Thinking.is_active());
        assert!(!TxnState::Ready.is_active());
        assert!(!TxnState::AtTerminal.is_active());
        assert!(!TxnState::RestartDelay.is_active());
    }
}
