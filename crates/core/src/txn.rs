//! Transaction runtime state: the step program and per-attempt bookkeeping.
//!
//! A transaction's behaviour is a fixed sequence of *steps* derived from its
//! [`TxnSpec`] and the concurrency control algorithm (paper §3):
//!
//! * locking algorithms interleave lock requests with object accesses:
//!   `lock(o) → io(o) → cpu(o)` per read, an optional internal think, then
//!   `upgrade(o) → cpu(o)` per write, then deferred-update I/Os, then commit;
//! * the optimistic algorithm performs the same accesses with no lock steps
//!   and a single validation step at its commit point.
//!
//! The step sequence is addressed by a flat program counter so that the
//! engine can advance a transaction with one integer increment.

use ccsim_des::{SimDuration, SimTime};
use ccsim_workload::{ObjId, TxnId, TxnSpec};

/// One step of a transaction program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Acquire the `k`-th lock of the preclaim plan (static locking: all
    /// locks, in canonical object order and final mode, before any access).
    PreclaimLock(usize),
    /// Acquire a read lock on the `i`-th read object (dynamic locking).
    LockRead(usize),
    /// Read I/O for the `i`-th read object.
    ReadIo(usize),
    /// Read CPU for the `i`-th read object.
    ReadCpu(usize),
    /// The intra-transaction think pause between reads and writes.
    IntThink,
    /// Upgrade the lock on the `j`-th *written* object to write mode.
    LockWrite(usize),
    /// CPU for the `j`-th write request (the I/O is deferred).
    WriteCpu(usize),
    /// The commit-point concurrency-control request: optimistic validation,
    /// a no-op for locking algorithms.
    Validate,
    /// Deferred-update I/O for the `j`-th written object.
    UpdateIo(usize),
    /// Commit: release locks, record statistics, return to the terminal.
    Commit,
}

/// How an algorithm family interleaves concurrency control with accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramShape {
    /// Dynamic two-phase locking: a lock step before each read, an upgrade
    /// step before each write (the paper's locking algorithms).
    Dynamic2pl,
    /// Static (conservative) locking: every lock acquired up front, in
    /// canonical object order and final mode, before the first access
    /// (the discipline of the paper's ancestor model, Ries/Stonebraker).
    Static2pl,
    /// No per-access concurrency control steps (optimistic, no-cc).
    LockFree,
}

/// The program shape for one spec under one algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Program {
    shape: ProgramShape,
    thinks: bool,
    reads: usize,
    writes: usize,
}

impl Program {
    /// Build the program shape.
    #[must_use]
    pub fn new(shape: ProgramShape, thinks: bool, spec: &TxnSpec) -> Self {
        Program {
            shape,
            thinks,
            reads: spec.num_reads(),
            writes: spec.num_writes(),
        }
    }

    fn per_read(&self) -> usize {
        match self.shape {
            ProgramShape::Dynamic2pl => 3,
            ProgramShape::Static2pl | ProgramShape::LockFree => 2,
        }
    }

    fn per_write(&self) -> usize {
        match self.shape {
            ProgramShape::Dynamic2pl => 2,
            ProgramShape::Static2pl | ProgramShape::LockFree => 1,
        }
    }

    fn preclaims(&self) -> usize {
        match self.shape {
            ProgramShape::Static2pl => self.reads,
            _ => 0,
        }
    }

    /// Total number of steps (the commit step is `len() - 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        let think = usize::from(self.thinks);
        self.preclaims() + self.per_read() * self.reads + think
            + self.per_write() * self.writes + 1 /* validate */
            + self.writes /* update IOs */ + 1 /* commit */
    }

    /// Whether the program has zero steps (never: there is always a commit).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decode program counter `pc` into a [`Step`].
    ///
    /// # Panics
    /// Panics if `pc` is past the commit step.
    #[must_use]
    pub fn step_at(&self, pc: usize) -> Step {
        if pc < self.preclaims() {
            return Step::PreclaimLock(pc);
        }
        let pc = pc - self.preclaims();
        let per_read = self.per_read();
        let per_write = self.per_write();
        let dynamic = self.shape == ProgramShape::Dynamic2pl;
        let read_end = per_read * self.reads;
        if pc < read_end {
            let i = pc / per_read;
            return match (dynamic, pc % per_read) {
                (true, 0) => Step::LockRead(i),
                (true, 1) | (false, 0) => Step::ReadIo(i),
                _ => Step::ReadCpu(i),
            };
        }
        let mut off = pc - read_end;
        if self.thinks {
            if off == 0 {
                return Step::IntThink;
            }
            off -= 1;
        }
        let write_end = per_write * self.writes;
        if off < write_end {
            let j = off / per_write;
            return match (dynamic, off % per_write) {
                (true, 0) => Step::LockWrite(j),
                _ => Step::WriteCpu(j),
            };
        }
        off -= write_end;
        if off == 0 {
            return Step::Validate;
        }
        off -= 1;
        if off < self.writes {
            return Step::UpdateIo(off);
        }
        assert_eq!(off, self.writes, "program counter past commit");
        Step::Commit
    }
}

/// Where a transaction is in its lifecycle (paper Figure 1's queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// At the terminal, between transactions (external think).
    AtTerminal,
    /// In the ready queue, waiting for a multiprogramming slot.
    Ready,
    /// Active: in a cc/object/update queue or receiving service.
    Running,
    /// Active: blocked on a lock.
    Blocked,
    /// Active: in the intra-transaction think pause (holding locks).
    Thinking,
    /// Inactive: serving its restart delay.
    RestartDelay,
}

impl TxnState {
    /// Counts toward the multiprogramming level?
    #[must_use]
    pub fn is_active(self) -> bool {
        matches!(
            self,
            TxnState::Running | TxnState::Blocked | TxnState::Thinking
        )
    }
}

/// Per-attempt resource usage, for the useful/wasted split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptUsage {
    /// CPU microseconds consumed by this attempt.
    pub cpu_us: u64,
    /// Disk microseconds consumed by this attempt.
    pub io_us: u64,
}

impl AttemptUsage {
    /// Accrue a completed service.
    pub fn add_cpu(&mut self, d: SimDuration) {
        self.cpu_us += d.as_micros();
    }
    /// Accrue a completed I/O.
    pub fn add_io(&mut self, d: SimDuration) {
        self.io_us += d.as_micros();
    }
    /// Reset for a fresh attempt.
    pub fn reset(&mut self) {
        *self = AttemptUsage::default();
    }
}

/// Recyclable backing buffers of a retired [`Txn`], recovered with
/// [`Txn::into_parts`] and reused by [`Txn::new_reusing`].
#[derive(Debug, Default)]
pub struct TxnBufs {
    /// Backing store for [`Txn::write_objs`].
    pub write_objs: Vec<ObjId>,
    /// Backing store for [`Txn::lock_plan`].
    pub lock_plan: Vec<(ObjId, bool)>,
    /// Backing store for [`Txn::read_times`].
    pub read_times: Vec<SimTime>,
}

/// The runtime record of one terminal's current transaction.
#[derive(Debug)]
pub struct Txn {
    /// Globally unique id of the current transaction (not reused across
    /// transactions; preserved across restarts of the same transaction).
    pub id: TxnId,
    /// The access program (kept across restarts — paper footnote 1).
    pub spec: TxnSpec,
    /// Objects written, in write order (cached from the spec).
    pub write_objs: Vec<ObjId>,
    /// The preclaim plan for static locking: `(object, final mode as
    /// write?)` in ascending object order (a global acquisition order makes
    /// static locking deadlock-free). Empty for other shapes.
    pub lock_plan: Vec<(ObjId, bool)>,
    /// Program shape.
    pub program: Program,
    /// Program counter into [`Program::step_at`].
    pub pc: usize,
    /// The decoded step at `pc`, kept in sync by [`Txn::advance`] and
    /// [`Txn::begin_attempt`] so the hot path decodes each step once.
    cur: Step,
    /// Lifecycle state.
    pub state: TxnState,
    /// When this transaction first entered the ready queue (response time
    /// origin; also the timestamp used by youngest-victim, wait-die and
    /// wound-wait).
    pub arrival: SimTime,
    /// When the current attempt was admitted (the optimistic start time).
    pub attempt_start: SimTime,
    /// Attempt epoch, bumped on every restart; stale events are dropped by
    /// comparing epochs.
    pub epoch: u32,
    /// Resource usage of the current attempt.
    pub usage: AttemptUsage,
    /// Times this transaction blocked (across all attempts).
    pub blocks: u32,
    /// Times this transaction restarted.
    pub restarts: u32,
    /// True while a concurrency-control CPU charge is in flight for the
    /// current step (only when `cc_cpu > 0`).
    pub cc_charged: bool,
    /// Read-completion times of the current attempt, parallel to
    /// `spec.reads()` (filled only when history recording is enabled).
    pub read_times: Vec<SimTime>,
    /// When this attempt's writes were (will be) published: the validation
    /// instant for optimistic CC, the commit event otherwise.
    pub publish_at: Option<SimTime>,
    /// Workload class index (0 = the primary Table-1 class).
    pub class: usize,
}

impl Txn {
    /// Create the record for a freshly submitted transaction. `epoch` must
    /// be strictly greater than any epoch the same terminal has used before
    /// (stale-event filtering relies on it; the engine passes a per-terminal
    /// monotone counter).
    #[must_use]
    pub fn new(
        id: TxnId,
        spec: TxnSpec,
        shape: ProgramShape,
        thinks: bool,
        arrival: SimTime,
        epoch: u32,
    ) -> Self {
        Txn::new_reusing(id, spec, shape, thinks, arrival, epoch, TxnBufs::default())
    }

    /// As [`Txn::new`], rebuilding the record inside recycled buffers
    /// (cleared first) so the engine's per-transaction turnover is
    /// allocation-free in the steady state.
    #[must_use]
    pub fn new_reusing(
        id: TxnId,
        spec: TxnSpec,
        shape: ProgramShape,
        thinks: bool,
        arrival: SimTime,
        epoch: u32,
        bufs: TxnBufs,
    ) -> Self {
        let TxnBufs {
            mut write_objs,
            mut lock_plan,
            mut read_times,
        } = bufs;
        write_objs.clear();
        write_objs.extend(spec.write_objs());
        lock_plan.clear();
        if shape == ProgramShape::Static2pl {
            lock_plan.extend(
                spec.reads()
                    .iter()
                    .enumerate()
                    .map(|(i, &obj)| (obj, spec.writes_at(i))),
            );
            lock_plan.sort_unstable_by_key(|&(obj, _)| obj);
        }
        read_times.clear();
        let program = Program::new(shape, thinks, &spec);
        Txn {
            id,
            spec,
            write_objs,
            lock_plan,
            program,
            pc: 0,
            cur: program.step_at(0),
            state: TxnState::Ready,
            arrival,
            attempt_start: arrival,
            epoch,
            usage: AttemptUsage::default(),
            blocks: 0,
            restarts: 0,
            cc_charged: false,
            read_times,
            publish_at: None,
            class: 0,
        }
    }

    /// Tear a retired transaction down into its spec and recyclable
    /// buffers (see [`Txn::new_reusing`]).
    #[must_use]
    pub fn into_parts(self) -> (TxnSpec, TxnBufs) {
        (
            self.spec,
            TxnBufs {
                write_objs: self.write_objs,
                lock_plan: self.lock_plan,
                read_times: self.read_times,
            },
        )
    }

    /// The step the transaction is currently at.
    #[must_use]
    pub fn step(&self) -> Step {
        self.cur
    }

    /// Advance to the next step.
    pub fn advance(&mut self) {
        self.pc += 1;
        self.cur = self.program.step_at(self.pc);
        self.cc_charged = false;
    }

    /// Rewind for a fresh attempt after a restart.
    pub fn begin_attempt(&mut self, now: SimTime) {
        self.pc = 0;
        self.cur = self.program.step_at(0);
        self.cc_charged = false;
        self.attempt_start = now;
        self.usage.reset();
        self.read_times.clear();
        self.publish_at = None;
    }

    /// Bump the epoch (called at restart so stale events are ignored).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_workload::ObjId;

    fn spec(reads: usize, write_ixs: &[usize]) -> TxnSpec {
        let objs: Vec<ObjId> = (0..reads as u64).map(ObjId).collect();
        let writes: Vec<bool> = (0..reads).map(|i| write_ixs.contains(&i)).collect();
        TxnSpec::new(objs, writes)
    }

    fn collect(program: Program) -> Vec<Step> {
        (0..program.len()).map(|pc| program.step_at(pc)).collect()
    }

    #[test]
    fn locking_program_shape() {
        let s = spec(2, &[1]);
        let p = Program::new(ProgramShape::Dynamic2pl, false, &s);
        assert_eq!(
            collect(p),
            vec![
                Step::LockRead(0),
                Step::ReadIo(0),
                Step::ReadCpu(0),
                Step::LockRead(1),
                Step::ReadIo(1),
                Step::ReadCpu(1),
                Step::LockWrite(0),
                Step::WriteCpu(0),
                Step::Validate,
                Step::UpdateIo(0),
                Step::Commit,
            ]
        );
    }

    #[test]
    fn optimistic_program_shape() {
        let s = spec(2, &[0]);
        let p = Program::new(ProgramShape::LockFree, false, &s);
        assert_eq!(
            collect(p),
            vec![
                Step::ReadIo(0),
                Step::ReadCpu(0),
                Step::ReadIo(1),
                Step::ReadCpu(1),
                Step::WriteCpu(0),
                Step::Validate,
                Step::UpdateIo(0),
                Step::Commit,
            ]
        );
    }

    #[test]
    fn think_step_sits_between_reads_and_writes() {
        let s = spec(1, &[0]);
        let p = Program::new(ProgramShape::Dynamic2pl, true, &s);
        assert_eq!(
            collect(p),
            vec![
                Step::LockRead(0),
                Step::ReadIo(0),
                Step::ReadCpu(0),
                Step::IntThink,
                Step::LockWrite(0),
                Step::WriteCpu(0),
                Step::Validate,
                Step::UpdateIo(0),
                Step::Commit,
            ]
        );
    }

    #[test]
    fn read_only_program_ends_with_validate_commit() {
        let s = spec(3, &[]);
        let p = Program::new(ProgramShape::LockFree, false, &s);
        let steps = collect(p);
        assert_eq!(steps.len(), 3 * 2 + 2);
        assert_eq!(steps[steps.len() - 2], Step::Validate);
        assert_eq!(steps[steps.len() - 1], Step::Commit);
    }

    #[test]
    fn program_len_matches_enumeration() {
        for shape in [
            ProgramShape::Dynamic2pl,
            ProgramShape::Static2pl,
            ProgramShape::LockFree,
        ] {
            for thinks in [false, true] {
                for reads in 1..6 {
                    for writes in 0..=reads {
                        let wixs: Vec<usize> = (0..writes).collect();
                        let s = spec(reads, &wixs);
                        let p = Program::new(shape, thinks, &s);
                        let steps = collect(p);
                        assert_eq!(steps.len(), p.len());
                        assert_eq!(*steps.last().unwrap(), Step::Commit);
                        assert!(!p.is_empty());
                        // Exactly one validate and one commit.
                        assert_eq!(steps.iter().filter(|s| **s == Step::Validate).count(), 1);
                        assert_eq!(steps.iter().filter(|s| **s == Step::Commit).count(), 1);
                        // Think appears iff requested.
                        assert_eq!(
                            steps.iter().filter(|s| **s == Step::IntThink).count(),
                            usize::from(thinks)
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "past commit")]
    fn pc_past_commit_panics() {
        let s = spec(1, &[]);
        let p = Program::new(ProgramShape::Dynamic2pl, false, &s);
        let _ = p.step_at(p.len());
    }

    #[test]
    fn txn_lifecycle_helpers() {
        let s = spec(2, &[1]);
        let mut t = Txn::new(
            TxnId(7),
            s,
            ProgramShape::Dynamic2pl,
            false,
            SimTime::from_secs(1),
            0,
        );
        assert_eq!(t.step(), Step::LockRead(0));
        assert_eq!(t.write_objs, vec![ObjId(1)]);
        t.advance();
        assert_eq!(t.step(), Step::ReadIo(0));
        t.usage.add_cpu(SimDuration::from_millis(15));
        t.usage.add_io(SimDuration::from_millis(35));
        assert_eq!(t.usage.cpu_us, 15_000);
        t.bump_epoch();
        t.begin_attempt(SimTime::from_secs(5));
        assert_eq!(t.pc, 0);
        assert_eq!(t.epoch, 1);
        assert_eq!(t.usage, AttemptUsage::default());
        assert_eq!(t.attempt_start, SimTime::from_secs(5));
        assert_eq!(t.arrival, SimTime::from_secs(1), "arrival survives restart");
    }

    #[test]
    fn state_activity() {
        assert!(TxnState::Running.is_active());
        assert!(TxnState::Blocked.is_active());
        assert!(TxnState::Thinking.is_active());
        assert!(!TxnState::Ready.is_active());
        assert!(!TxnState::AtTerminal.is_active());
        assert!(!TxnState::RestartDelay.is_active());
    }
}
